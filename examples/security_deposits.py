#!/usr/bin/env python3
"""Security deposits: making honesty-enforcement profitable (§IV).

The paper notes that when reveal() is heavy, the honest participant who
pays for dispute resolution should "receive compensation from dishonest
participants" via mandatory security deposits.  This example runs the
same dishonest game twice — without and with deposits — and prints the
honest challenger's net position.

Run:  python examples/security_deposits.py
"""

from repro.apps.betting import BETTING_SOURCE, reference_reveal
from repro.chain import ETHER, EthereumSimulator
from repro.core import OnOffChainProtocol, Participant, SplitSpec, Strategy

SEED, ROUNDS = 42, 600  # heavy reveal(): disputes are expensive


def run_game(deposit_wei: int) -> None:
    sim = EthereumSimulator()
    alice = Participant(account=sim.accounts[0], name="alice",
                        strategy=Strategy.LIES_ABOUT_RESULT)
    bob = Participant(account=sim.accounts[1], name="bob")

    spec = SplitSpec(
        participants_var="participant",
        result_function="reveal",
        settle_function="reassign",
        challenge_period=3_600,
        security_deposit=deposit_wei,
    )
    protocol = OnOffChainProtocol(
        simulator=sim, whole_source=BETTING_SOURCE,
        contract_name="Betting", spec=spec, participants=[alice, bob],
    )
    protocol.split_generate()
    base = sim.current_timestamp
    protocol.deploy(
        alice,
        constructor_args={
            "a": alice.address, "b": bob.address,
            "t1": base + 7_200, "t2": base + 14_400, "t3": base + 21_600,
            "stakeAmount": 1 * ETHER, "seed": SEED, "rounds": ROUNDS,
        },
        offchain_state={"secretSeed": SEED, "secretRounds": ROUNDS},
    )
    protocol.collect_signatures()
    protocol.call_onchain(alice, "deposit", value=1 * ETHER)
    protocol.call_onchain(bob, "deposit", value=1 * ETHER)

    bob_before = sim.get_balance(bob.account)
    if deposit_wei:
        protocol.pay_security_deposits()
        print(f"  both escrowed a {deposit_wei / ETHER} ETH "
              "security deposit (amountMet now satisfied)")

    sim.advance_time_to(base + 14_401)
    protocol.submit_result(alice)
    print("  alice (liar) submitted:",
          protocol.onchain.call("proposedResult"),
          "— truth is", reference_reveal(SEED, ROUNDS))

    dispute = protocol.run_challenge_window().value
    print(f"  bob challenged: {dispute.total_gas:,} gas for the "
          "dispute path")
    if deposit_wei:
        events = protocol.onchain.decode_events(
            dispute.resolve_receipt, "ChallengerCompensated")
        __, amount = events[0]
        print(f"  alice's deposit forfeited to bob: "
              f"{amount / ETHER} ETH")
        withdrawals = protocol.withdraw_security_deposits()
        print(f"  deposit withdrawals: {withdrawals}")

    truth = reference_reveal(SEED, ROUNDS)
    pot_won = 2 * ETHER if truth else 0
    net_policing = sim.get_balance(bob.account) - bob_before - pot_won
    print(f"  bob's net from POLICING alone (excl. pot): "
          f"{net_policing:+,} wei "
          f"({'profit' if net_policing > 0 else 'loss'})")


def main() -> None:
    print("Without security deposits — policing costs the honest party:")
    run_game(0)
    print("\nWith 1-ETH security deposits — the liar pays for it:")
    run_game(1 * ETHER)


if __name__ == "__main__":
    main()
