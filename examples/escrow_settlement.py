#!/usr/bin/env python3
"""Escrow with a private acceptance policy — both outcomes.

A buyer escrows payment; acceptance of the delivered artefact is
decided by a private fingerprint-matching policy that runs off-chain.
The script shows an accepting delivery (seller paid) and a rejected
one (buyer refunded), both settled through the Submit/Challenge path
without ever exposing the acceptance policy on-chain.

Run:  python examples/escrow_settlement.py
"""

from repro.apps.escrow import (
    deploy_escrow,
    make_escrow_protocol,
    reference_accepts,
)
from repro.chain import ETHER, EthereumSimulator
from repro.core import Participant


def settle(delivered: int, expected: int) -> None:
    sim = EthereumSimulator()
    buyer = Participant(account=sim.accounts[0], name="buyer")
    seller = Participant(account=sim.accounts[1], name="seller")
    protocol = make_escrow_protocol(
        sim, buyer, seller, delivered=delivered, expected=expected,
        tolerance=4_096,
    )
    deploy_escrow(protocol, buyer)
    protocol.collect_signatures()
    price = protocol.escrow_plan["price"]
    protocol.call_onchain(buyer, "fund", value=price)

    truth = reference_accepts(delivered, expected, 4_096)
    run = protocol.execute_off_chain(buyer)
    print(f"  fingerprints {delivered} vs {expected}: "
          f"accepts={run.result} (reference={truth})")
    assert run.result == truth

    seller_before = sim.get_balance(seller.account)
    buyer_before = sim.get_balance(buyer.account)

    protocol.submit_result(seller)
    assert not protocol.run_challenge_window().disputed
    protocol.finalize(buyer)

    if truth:
        gained = sim.get_balance(seller.account) - seller_before
        print(f"  -> delivery ACCEPTED: seller received "
              f"{gained / ETHER:+.4f} ETH")
    else:
        refunded = sim.get_balance(buyer.account) - buyer_before
        print(f"  -> delivery REJECTED: buyer refunded "
              f"{refunded / ETHER:+.4f} ETH")
    print(f"  escrow empty: {protocol.onchain.balance == 0}")
    print(f"  acceptance policy on-chain: "
          f"{'accepts' in protocol.split.onchain_source}")


def main() -> None:
    print("Case 1 — matching delivery:")
    settle(delivered=123_456, expected=123_456)
    print("\nCase 2 — wrong delivery:")
    settle(delivered=999, expected=123_456)


if __name__ == "__main__":
    main()
