#!/usr/bin/env python3
"""The paper's betting example (Table I), including the dispute (rule 5).

Plays the full timeline twice:

* Game 1 — both honest: the loser calls reassign() voluntarily;
* Game 2 — the loser goes silent: after T3 the winner reveals the
  signed copy, ``deployVerifiedInstance()`` verifies both signatures
  and CREATEs the verified instance, and
  ``returnDisputeResolution()`` → ``enforceDisputeResolution()``
  forces the payout (Algorithms 2-6).

Run:  python examples/betting_dispute.py
"""

from repro.apps.betting import (
    deploy_betting,
    make_betting_protocol,
    reference_reveal,
)
from repro.chain import ETHER, EthereumSimulator
from repro.core import Participant

SEED, ROUNDS = 42, 25


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def play(dispute_mode: bool) -> None:
    sim = EthereumSimulator()
    alice = Participant(account=sim.accounts[0], name="alice")
    bob = Participant(account=sim.accounts[1], name="bob")
    protocol = make_betting_protocol(sim, alice, bob, seed=SEED,
                                     rounds=ROUNDS)
    plan = protocol.betting_plan

    banner("Rule 1: deploy on-chain contract, exchange signed copies")
    deploy_betting(protocol, alice)
    copy = protocol.collect_signatures().value
    print(f"onChain at {protocol.onchain.address.checksum}")
    print(f"off-chain bytecode: {len(copy.bytecode)} bytes; "
          f"keccak256 = 0x{copy.bytecode_hash.hex()[:16]}…")
    print(f"signatures (v,r,s) from: "
          f"{[p.name for p in protocol.participants]}")

    banner("Rule 2: both deposit 1 ether before T1")
    protocol.call_onchain(alice, "deposit", value=plan["stake"])
    protocol.call_onchain(bob, "deposit", value=plan["stake"])
    print(f"escrowed: {protocol.onchain.balance / ETHER} ETH")

    banner("Rule 4: after T2 the result becomes computable off-chain")
    sim.advance_time_to(plan["timeline"].t2 + 1)
    result = protocol.reach_unanimous_agreement()
    winner = bob if result else alice
    loser = alice if result else bob
    print(f"reveal() = {result} (reference: "
          f"{reference_reveal(SEED, ROUNDS)}) -> {winner.name} wins")

    winner_before = sim.get_balance(winner.account)

    if not dispute_mode:
        print(f"{loser.name} honestly calls reassign({result})")
        protocol.call_onchain(loser, "reassign", result)
    else:
        banner("Rule 5: the loser refuses — dispute after T3")
        sim.advance_time_to(plan["timeline"].t3 + 1)
        print(f"{winner.name} submits the signed copy on-chain…")
        dispute = protocol.dispute(winner).value
        print(f"deployVerifiedInstance(): "
              f"{dispute.deploy_receipt.gas_used:,} gas "
              f"(paper: 225,082 + reveal())")
        print(f"verified instance at "
              f"{dispute.instance_address.checksum}")
        print(f"returnDisputeResolution(): "
              f"{dispute.resolve_receipt.gas_used:,} gas "
              f"(paper: 37,745)")
        print(f"enforced outcome: {dispute.outcome}")

    gained = sim.get_balance(winner.account) - winner_before
    print(f"\n{winner.name} net gain: {gained / ETHER:+.4f} ETH "
          f"(2 ETH pot minus any gas paid)")
    print(f"contract drained: {protocol.onchain.balance == 0}")
    print(f"gas by stage: {protocol.ledger.by_stage()}")


def main() -> None:
    banner("GAME 1 — honest settlement")
    play(dispute_mode=False)
    banner("GAME 2 — loser refuses, winner enforces")
    play(dispute_mode=True)


if __name__ == "__main__":
    main()
