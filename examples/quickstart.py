#!/usr/bin/env python3
"""Quickstart: split a contract, run the protocol, settle honestly.

This walks the public API end to end in ~60 lines:

1. write a *whole* contract in Solis (a Solidity subset);
2. split it into the on/off-chain pair (Split/Generate);
3. deploy + exchange signed copies (Deploy/Sign);
4. execute privately, submit, finalize (Submit/Challenge).

Run:  python examples/quickstart.py
"""

from repro.chain import ETHER, EthereumSimulator
from repro.core import OnOffChainProtocol, Participant, SplitSpec

WHOLE_CONTRACT = """
contract Wager {
    address[2] public participant;
    uint public stake;
    uint public secretNumber;
    mapping(address => uint) public deposits;

    modifier participantOnly {
        require(msg.sender == participant[0] ||
                msg.sender == participant[1]);
        _;
    }

    constructor(address a, address b, uint stakeWei, uint secret) public {
        participant[0] = a;
        participant[1] = b;
        stake = stakeWei;
        secretNumber = secret;
    }

    function deposit() payable public participantOnly {
        require(msg.value == stake);
        deposits[msg.sender] = msg.value;
    }

    // Heavy/private: the wager logic stays off-chain.
    function isEven() private view returns (bool) {
        uint acc = secretNumber;
        for (uint i = 0; i < 100; i++) {
            acc = (acc * 31 + 7) % 1000003;
        }
        return acc % 2 == 0;
    }

    // Light/public: applies the result (true => participant[1] wins).
    function payout(bool secondWins) public participantOnly {
        uint pot = deposits[participant[0]] + deposits[participant[1]];
        deposits[participant[0]] = 0;
        deposits[participant[1]] = 0;
        if (secondWins) {
            participant[1].transfer(pot);
        } else {
            participant[0].transfer(pot);
        }
    }
}
"""


def main() -> None:
    # A local in-memory Ethereum with funded accounts (the role Kovan
    # plays in the paper).
    sim = EthereumSimulator()
    alice = Participant(account=sim.accounts[0], name="alice")
    bob = Participant(account=sim.accounts[1], name="bob")

    spec = SplitSpec(
        participants_var="participant",
        result_function="isEven",
        settle_function="payout",
        challenge_period=3_600,
    )
    protocol = OnOffChainProtocol(
        simulator=sim, whole_source=WHOLE_CONTRACT,
        contract_name="Wager", spec=spec, participants=[alice, bob],
    )

    # Stage 1 — Split/Generate.
    split = protocol.split_generate().value
    print(f"light/public  -> on-chain : {split.onchain_functions}")
    print(f"heavy/private -> off-chain: {split.offchain_functions}")

    # Stage 2 — Deploy/Sign.
    stake = 1 * ETHER
    secret = 1_234_567
    protocol.deploy(
        alice,
        constructor_args={"a": alice.address, "b": bob.address,
                          "stakeWei": stake, "secret": secret},
        offchain_state={"secretNumber": secret},
    )
    copy = protocol.collect_signatures().value
    print(f"signed copy: {len(copy.bytecode)} bytes, "
          f"{len(copy.signatures)} signatures — exchanged over Whisper")

    protocol.call_onchain(alice, "deposit", value=stake)
    protocol.call_onchain(bob, "deposit", value=stake)

    # Stage 3 — Submit/Challenge (everyone honest here).
    result = protocol.reach_unanimous_agreement()
    print(f"off-chain result (computed privately by both): {result}")
    protocol.submit_result(bob)
    assert not protocol.run_challenge_window().disputed, "no dispute expected"
    protocol.finalize(alice)

    outcome = protocol.outcome()
    print(f"settled via {outcome.via}: secondWins={outcome.outcome}")
    print(f"on-chain gas by stage: {protocol.ledger.by_stage()}")
    print(f"miner never saw isEven(): "
          f"{'isEven' not in split.onchain_source}")


if __name__ == "__main__":
    main()
