#!/usr/bin/env python3
"""Private tender: three parties, secret quotes, a lying buyer.

The buyer escrows a budget; two contractors' quotes and the scoring
formula are private (they live only in the signed off-chain contract).
The buyer submits a *false* winner on-chain; the honest contractor
challenges within the window and the verified instance enforces the
true scoring result.

Run:  python examples/sealed_tender.py
"""

from repro.apps.tender import (
    deploy_tender,
    make_tender_protocol,
    reference_select_winner,
)
from repro.chain import ETHER, EthereumSimulator
from repro.core import Participant, Strategy


def main() -> None:
    sim = EthereumSimulator()
    buyer = Participant(account=sim.accounts[0], name="buyer",
                        strategy=Strategy.LIES_ABOUT_RESULT)
    contractor_a = Participant(account=sim.accounts[1], name="alpha")
    contractor_b = Participant(account=sim.accounts[2], name="beta")

    quote_a, quote_b = 9 * ETHER, 8 * ETHER
    quality_a, quality_b, weight = 80, 60, 10 ** 16

    protocol = make_tender_protocol(
        sim, buyer, contractor_a, contractor_b,
        quote_a=quote_a, quote_b=quote_b,
        quality_a=quality_a, quality_b=quality_b,
        quality_weight=weight,
    )
    print("on-chain functions :", protocol.split.onchain_functions)
    print("off-chain functions:", protocol.split.offchain_functions)
    assert "selectWinner" not in protocol.split.onchain_source
    print("quotes appear on-chain:",
          str(quote_a) in protocol.split.onchain_source)

    deploy_tender(protocol, buyer)
    protocol.collect_signatures()
    budget = protocol.tender_plan["budget"]
    protocol.call_onchain(buyer, "fund", value=budget)
    print(f"\nbudget escrowed: {budget / ETHER} ETH")

    truth = reference_select_winner(quote_a, quote_b, quality_a,
                                    quality_b, weight)
    winner = contractor_a if truth == 1 else contractor_b
    print(f"private scoring says contractor #{truth} ({winner.name}) wins")

    print("\nbuyer submits a falsified winner on-chain…")
    protocol.submit_result(buyer)
    print("on-chain proposal:", protocol.onchain.call("proposedResult"))

    print("honest contractors police the challenge window…")
    dispute = protocol.run_challenge_window().value
    assert dispute is not None
    print(f"dispute fired: instance at "
          f"{dispute.instance_address.checksum}")
    print(f"dispute gas: {dispute.total_gas:,}")

    outcome = protocol.outcome()
    print(f"\nenforced winner: contractor #{outcome.outcome} "
          f"(truth: #{truth}) via {outcome.via}")
    paid = sim.get_balance(winner.account) - 1_000 * ETHER
    print(f"{winner.name} received ≈ {paid / ETHER:+.2f} ETH")
    assert outcome.outcome == truth


if __name__ == "__main__":
    main()
