"""Setup shim — lets `pip install -e .` work without the wheel package.

The offline environment lacks `wheel`, so modern PEP-660 editable
installs fail with `invalid command 'bdist_wheel'`.  Keeping a setup.py
enables the legacy `setup.py develop` path.
"""

from setuptools import setup

setup()
