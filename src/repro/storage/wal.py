"""Append-only write-ahead log with CRC-framed binary records.

The WAL is the durability primitive under :class:`~repro.storage.kv.KVStore`.
Records are grouped into **transactions**: every :meth:`append` buffers a
data record and :meth:`commit` seals the group with a commit-marker
record, flushes it to the OS and (subject to fsync batching) forces it
to stable media.  Recovery replays only complete, committed
transactions: a tail torn anywhere — half a frame, a corrupt CRC, data
records with no trailing marker — is discarded and physically truncated
away, so a process SIGKILLed at any byte offset leaves a log that
reopens cleanly.

Frame layout (little-endian)::

    +----------+-----------+----------------------+
    | length:4 | crc32:4   | payload (length B)   |
    +----------+-----------+----------------------+

where ``payload[0]`` is the record kind (``D`` data / ``C`` commit) and
``payload[1:]`` is the caller's opaque body.  The file starts with the
8-byte magic ``REPROWAL``.

Durability contract (documented in ``docs/persistence.md``): after
``commit()`` returns, the transaction survives process death (the data
reached the OS page cache); it additionally survives power loss once
the batched ``fsync`` has run — every ``fsync_batch`` commits, and
always on :meth:`sync`/:meth:`close`.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from repro.exceptions import ReproError

MAGIC = b"REPROWAL"
_FRAME = struct.Struct("<II")
_KIND_DATA = b"D"
_KIND_COMMIT = b"C"

#: Upper bound on one record's payload; anything larger in a frame
#: header is treated as tail corruption rather than allocated blindly.
MAX_RECORD_BYTES = 64 * 1024 * 1024


class StorageError(ReproError, RuntimeError):
    """Raised for storage-layer misuse or unrecoverable corruption."""


class WriteAheadLog:
    """One append-only CRC-checked log file with transactional commits."""

    def __init__(self, path: str | Path, *, fsync_batch: int = 1) -> None:
        if fsync_batch < 1:
            raise StorageError("fsync_batch must be >= 1")
        self.path = Path(path)
        self.fsync_batch = fsync_batch
        self.records_written = 0
        self.commits = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self._unsynced_commits = 0
        self._pending_records = 0
        committed, valid_end = self._scan()
        self._committed = committed
        self._open_for_append(valid_end)

    # -- recovery ----------------------------------------------------------

    def _scan(self) -> tuple[list[list[bytes]], int]:
        """Read committed transactions; return them + last valid offset.

        Stops at the first short frame, oversized length, or CRC
        mismatch: everything from the last commit marker onward is an
        uncommitted (or torn) tail and is ignored.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return [], len(MAGIC)
        transactions: list[list[bytes]] = []
        current: list[bytes] = []
        with open(self.path, "rb") as fh:
            if fh.read(len(MAGIC)) != MAGIC:
                raise StorageError(f"{self.path} is not a repro WAL")
            valid_end = fh.tell()
            while True:
                head = fh.read(_FRAME.size)
                if len(head) < _FRAME.size:
                    break
                length, crc = _FRAME.unpack(head)
                if length < 1 or length > MAX_RECORD_BYTES:
                    break
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    break
                kind, body = payload[:1], payload[1:]
                if kind == _KIND_COMMIT:
                    transactions.append(current)
                    current = []
                    valid_end = fh.tell()
                elif kind == _KIND_DATA:
                    current.append(body)
                else:  # unknown kind: same treatment as corruption
                    break
        return transactions, valid_end

    def _open_for_append(self, valid_end: int) -> None:
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        if not fresh and self.path.stat().st_size > valid_end:
            # Physically drop the torn/uncommitted tail so new records
            # never land after garbage.
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)
        self._fh = open(self.path, "ab")
        if fresh:
            self._fh.write(MAGIC)
            self._fh.flush()
            self._fsync()

    def committed_transactions(self) -> list[list[bytes]]:
        """The committed transactions found when the log was opened."""
        return [list(txn) for txn in self._committed]

    # -- writing -----------------------------------------------------------

    def _write_record(self, kind: bytes, body: bytes) -> None:
        payload = kind + body
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        self._fh.write(frame + payload)
        self.bytes_written += len(frame) + len(payload)

    def append(self, body: bytes) -> None:
        """Buffer one data record into the open transaction."""
        self._write_record(_KIND_DATA, body)
        self.records_written += 1
        self._pending_records += 1

    def commit(self) -> None:
        """Seal the open transaction: marker + flush + batched fsync."""
        self._write_record(_KIND_COMMIT, b"")
        self._fh.flush()
        self.commits += 1
        self._pending_records = 0
        self._unsynced_commits += 1
        if self._unsynced_commits >= self.fsync_batch:
            self._fsync()

    def flush(self) -> None:
        """Push buffered bytes to the OS without sealing a transaction.

        Used by the crash harness to stage a deliberately torn tail:
        the flushed-but-uncommitted records must be discarded on the
        next open.
        """
        self._fh.flush()

    def sync(self) -> None:
        """Force an fsync regardless of the batching schedule."""
        self._fh.flush()
        self._fsync()

    def _fsync(self) -> None:
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self._unsynced_commits = 0

    @property
    def pending_records(self) -> int:
        """Data records appended since the last commit marker."""
        return self._pending_records

    def size(self) -> int:
        """Current on-disk size in bytes (buffered bytes included)."""
        self._fh.flush()
        return self.path.stat().st_size

    def truncate(self) -> None:
        """Reset the log to empty (called after snapshot compaction)."""
        self._fh.close()
        with open(self.path, "wb") as fh:
            fh.write(MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
        self.fsyncs += 1
        self._committed = []
        self._pending_records = 0
        self._unsynced_commits = 0
        self._fh = open(self.path, "ab")

    def close(self) -> None:
        """Flush, fsync and close the file handle."""
        if self._fh.closed:
            return
        self._fh.flush()
        self._fsync()
        self._fh.close()
