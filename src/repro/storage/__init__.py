"""Durable storage: WAL-backed key-value store and chain persistence.

ROADMAP item 2.  The package layers as::

    WriteAheadLog      CRC-framed append-only log, transactional commits
        KVStore        namespaced bytes->bytes maps, snapshot compaction
            StorableDict / StorableValue   Diem-reference-style wrappers
            codec       RLP codecs for Account / Receipt / Block

``KVStore`` is a *durability* layer, not an out-of-core database: every
namespace lives in memory and committed writes additionally survive
process death.  The engine-facing recovery logic (what gets persisted
when, and how a ``repro engine --store=... --resume`` run is
reconstructed) lives in :mod:`repro.core.recovery`; the full design is
documented in ``docs/persistence.md``.
"""

from repro.storage.codec import (
    decode_account,
    decode_block,
    decode_receipt,
    encode_account,
    encode_block,
    encode_receipt,
)
from repro.storage.kv import DEFAULT_COMPACT_BYTES, KVStore
from repro.storage.storable import StorableDict, StorableValue
from repro.storage.wal import MAX_RECORD_BYTES, StorageError, WriteAheadLog

__all__ = [
    "DEFAULT_COMPACT_BYTES",
    "KVStore",
    "MAX_RECORD_BYTES",
    "StorableDict",
    "StorableValue",
    "StorageError",
    "WriteAheadLog",
    "decode_account",
    "decode_block",
    "decode_receipt",
    "encode_account",
    "encode_block",
    "encode_receipt",
]
