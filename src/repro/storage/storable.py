"""Diem-style ``StorableDict`` / ``StorableValue`` wrappers.

The off-chain reference implementations keep their durable session
state behind two small abstractions: a dict whose writes go straight
through to a write-ahead-logged backend, and a single named value with
``get``/``set``.  These are the same shapes, bound to one
:class:`~repro.storage.kv.KVStore` namespace each, with pluggable
``encode``/``decode`` codecs (identity on ``bytes`` by default).

Writes stage into the store's open WAL transaction; they become
durable at the store's next ``commit()``.  Reads always see the staged
(in-memory) state.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.storage.kv import KVStore

_IDENTITY = lambda value: value  # noqa: E731 - the default bytes codec


class StorableDict:
    """A dict-like view over one :class:`KVStore` namespace."""

    def __init__(self, store: KVStore, namespace: bytes, *,
                 encode: Callable[[Any], bytes] = _IDENTITY,
                 decode: Callable[[bytes], Any] = _IDENTITY) -> None:
        self.store = store
        self.namespace = namespace
        self._encode = encode
        self._decode = decode

    def __setitem__(self, key: bytes, value: Any) -> None:
        self.store.put(self.namespace, key, self._encode(value))

    def __getitem__(self, key: bytes) -> Any:
        raw = self.store.get(self.namespace, key)
        if raw is None:
            raise KeyError(key)
        return self._decode(raw)

    def __delitem__(self, key: bytes) -> None:
        if (self.namespace, key) not in self.store:
            raise KeyError(key)
        self.store.delete(self.namespace, key)

    def __contains__(self, key: bytes) -> bool:
        return (self.namespace, key) in self.store

    def __len__(self) -> int:
        return self.store.count(self.namespace)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self.store.keys(self.namespace))

    def get(self, key: bytes, default: Any = None) -> Any:
        """The decoded value under ``key``, or ``default``."""
        raw = self.store.get(self.namespace, key)
        return default if raw is None else self._decode(raw)

    def items(self) -> list[tuple[bytes, Any]]:
        """All (key, decoded value) pairs, key-sorted."""
        return [(key, self._decode(raw))
                for key, raw in self.store.items(self.namespace)]

    def keys(self) -> list[bytes]:
        """All keys, sorted."""
        return self.store.keys(self.namespace)


class StorableValue:
    """One named durable value inside a :class:`KVStore` namespace."""

    def __init__(self, store: KVStore, namespace: bytes, key: bytes, *,
                 encode: Callable[[Any], bytes] = _IDENTITY,
                 decode: Callable[[bytes], Any] = _IDENTITY) -> None:
        self.store = store
        self.namespace = namespace
        self.key = key
        self._encode = encode
        self._decode = decode

    def exists(self) -> bool:
        """True when the value has ever been set."""
        return (self.namespace, self.key) in self.store

    def get(self, default: Any = None) -> Any:
        """The decoded value, or ``default`` when never set."""
        raw = self.store.get(self.namespace, self.key)
        return default if raw is None else self._decode(raw)

    def set(self, value: Any) -> None:
        """Stage a new value into the store's open transaction."""
        self.store.put(self.namespace, self.key, self._encode(value))
