"""Durable namespaced key-value store over a WAL + snapshot pair.

A :class:`KVStore` keeps every namespace as an ordinary in-memory
``dict[bytes, bytes]`` — this layer buys *durability* (any committed
write survives process death), not out-of-core capacity; the full key
set must still fit in RAM.  Two files under the store directory carry
the persistent state:

``snapshot.bin``
    A CRC-checked RLP dump of every namespace, rewritten atomically
    (write-temp, fsync, rename) by :meth:`compact`.
``wal.bin``
    The :class:`~repro.storage.wal.WriteAheadLog` of put/delete
    operations since the snapshot, grouped into transactions.

Writes stage into the open WAL transaction and apply to the in-memory
maps immediately; :meth:`commit` makes the transaction durable.  A
crash between commits loses exactly the uncommitted tail — reopening
the directory yields the state as of the last ``commit()``.  Replay of
WAL operations over a snapshot is idempotent (put/delete are upserts),
which is what makes the compaction rename→truncate window crash-safe.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from repro import obs
from repro.crypto import rlp
from repro.storage.wal import MAX_RECORD_BYTES, StorageError, WriteAheadLog

SNAPSHOT_MAGIC = b"REPROSNP"
_FRAME = struct.Struct("<II")
_OP_PUT = b"P"
_OP_DELETE = b"D"

#: Default WAL size that triggers auto-compaction at the next commit.
DEFAULT_COMPACT_BYTES = 16 * 1024 * 1024


class KVStore:
    """Namespaced bytes→bytes store with WAL durability + snapshots."""

    def __init__(self, directory: str | Path, *, fsync_batch: int = 1,
                 compact_bytes: int = DEFAULT_COMPACT_BYTES,
                 auto_compact: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / "snapshot.bin"
        self.wal_path = self.directory / "wal.bin"
        self.compact_bytes = compact_bytes
        self.auto_compact = auto_compact
        self.compactions = 0
        self.replayed_ops = 0
        self._maps: dict[bytes, dict[bytes, bytes]] = {}
        self._load_snapshot()
        self.wal = WriteAheadLog(self.wal_path, fsync_batch=fsync_batch)
        for transaction in self.wal.committed_transactions():
            for op in transaction:
                self._apply(op)
                self.replayed_ops += 1

    # -- recovery ----------------------------------------------------------

    def _load_snapshot(self) -> None:
        if not self.snapshot_path.exists():
            return
        raw = self.snapshot_path.read_bytes()
        head = len(SNAPSHOT_MAGIC) + _FRAME.size
        if len(raw) < head or raw[:len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
            raise StorageError(f"{self.snapshot_path} is not a snapshot")
        length, crc = _FRAME.unpack(raw[len(SNAPSHOT_MAGIC):head])
        payload = raw[head:head + length]
        # Snapshots are written atomically (temp + fsync + rename), so
        # unlike the WAL tail a damaged snapshot is genuine corruption.
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise StorageError(f"{self.snapshot_path} failed its CRC check")
        for namespace, pairs in rlp.decode(payload):
            self._maps[namespace] = {key: value for key, value in pairs}

    def _apply(self, op: bytes) -> None:
        kind, namespace, key, value = rlp.decode(op)
        table = self._maps.setdefault(namespace, {})
        if kind == _OP_PUT:
            table[key] = value
        elif kind == _OP_DELETE:
            table.pop(key, None)
        else:
            raise StorageError(f"unknown WAL operation {kind!r}")

    # -- reads -------------------------------------------------------------

    def get(self, namespace: bytes, key: bytes,
            default: bytes | None = None) -> bytes | None:
        """The value under ``namespace``/``key``, or ``default``."""
        return self._maps.get(namespace, {}).get(key, default)

    def __contains__(self, pair: tuple[bytes, bytes]) -> bool:
        namespace, key = pair
        return key in self._maps.get(namespace, {})

    def items(self, namespace: bytes) -> list[tuple[bytes, bytes]]:
        """All (key, value) pairs of one namespace, key-sorted."""
        return sorted(self._maps.get(namespace, {}).items())

    def keys(self, namespace: bytes) -> list[bytes]:
        """All keys of one namespace, sorted."""
        return sorted(self._maps.get(namespace, {}))

    def count(self, namespace: bytes) -> int:
        """Number of keys in one namespace."""
        return len(self._maps.get(namespace, {}))

    # -- writes ------------------------------------------------------------

    def put(self, namespace: bytes, key: bytes, value: bytes) -> None:
        """Stage an upsert into the open transaction."""
        if len(value) >= MAX_RECORD_BYTES:
            raise StorageError("value exceeds the WAL record limit")
        self.wal.append(rlp.encode([_OP_PUT, namespace, key, value]))
        self._maps.setdefault(namespace, {})[key] = value

    def delete(self, namespace: bytes, key: bytes) -> None:
        """Stage a delete into the open transaction."""
        self.wal.append(rlp.encode([_OP_DELETE, namespace, key, b""]))
        self._maps.get(namespace, {}).pop(key, None)

    def commit(self) -> None:
        """Durably seal the staged operations (no-op when none)."""
        if self.wal.pending_records == 0:
            return
        with obs.span(obs.names.SPAN_STORAGE_COMMIT,
                      records=self.wal.pending_records):
            staged = self.wal.pending_records
            self.wal.commit()
            if obs.enabled():
                obs.inc(obs.names.METRIC_STORAGE_WAL_COMMITS)
                obs.inc(obs.names.METRIC_STORAGE_WAL_RECORDS, staged)
        if self.auto_compact and self.wal.size() > self.compact_bytes:
            self.compact()

    def flush_uncommitted(self) -> None:
        """Push staged records to the OS *without* a commit marker.

        Only the crash harness uses this: it manufactures the torn-tail
        shape that recovery must discard.
        """
        self.wal.flush()

    # -- compaction --------------------------------------------------------

    def compact(self) -> None:
        """Fold the WAL into a fresh snapshot and truncate the log.

        Crash-safe: the snapshot is written to a temp file, fsync'd and
        renamed over the old one before the WAL is truncated.  A crash
        between rename and truncate merely replays (idempotent) WAL
        operations over the already-updated snapshot.
        """
        if self.wal.pending_records:
            raise StorageError("commit the open transaction before compact()")
        with obs.span(obs.names.SPAN_STORAGE_COMPACT):
            payload = rlp.encode([
                [namespace, [[key, value]
                             for key, value in sorted(table.items())]]
                for namespace, table in sorted(self._maps.items())
            ])
            frame = _FRAME.pack(len(payload), zlib.crc32(payload))
            temp = self.snapshot_path.with_suffix(".tmp")
            with open(temp, "wb") as fh:
                fh.write(SNAPSHOT_MAGIC + frame + payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(temp, self.snapshot_path)
            self._fsync_directory()
            self.wal.truncate()
            self.compactions += 1
            if obs.enabled():
                obs.inc(obs.names.METRIC_STORAGE_COMPACTIONS)

    def _fsync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- lifecycle ---------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Operational counters for benchmarks and the CLI."""
        return {
            "wal_records": self.wal.records_written,
            "wal_commits": self.wal.commits,
            "wal_fsyncs": self.wal.fsyncs,
            "wal_bytes": self.wal.bytes_written,
            "replayed_ops": self.replayed_ops,
            "compactions": self.compactions,
            "namespaces": len(self._maps),
            "keys": sum(len(t) for t in self._maps.values()),
        }

    def close(self) -> None:
        """Flush and close the underlying WAL."""
        self.wal.close()
