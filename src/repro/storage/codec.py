"""RLP codecs for the chain objects the durable store persists.

Transactions already carry their canonical wire form
(:meth:`~repro.chain.transaction.Transaction.encode`); this module adds
the symmetric encoders for :class:`~repro.chain.account.Account`,
:class:`~repro.chain.receipt.Receipt` (logs included) and
:class:`~repro.chain.block.Block`.  Every codec is a pure function of
its value — round-tripping is exercised property-style in
``tests/storage/``.

Optional :class:`~repro.crypto.keys.Address` fields are encoded as the
empty string (a real address is always exactly 20 bytes); the optional
``error`` string carries a presence byte so an empty revert reason
stays distinguishable from "no error".
"""

from __future__ import annotations

from typing import Optional

from repro.chain.account import Account
from repro.chain.block import Block, BlockHeader
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction
from repro.crypto import rlp
from repro.crypto.keys import Address
from repro.evm.vm import Log


def _encode_address(address: Optional[Address]) -> bytes:
    return address.value if address is not None else b""


def _decode_address(raw: bytes) -> Optional[Address]:
    return Address(raw) if raw else None


def encode_account(account: Account) -> bytes:
    """RLP: ``[nonce, balance, code, [[slot, value], ...]]``."""
    return rlp.encode([
        account.nonce,
        account.balance,
        account.code,
        [[slot, value] for slot, value in sorted(account.storage.items())],
    ])


def decode_account(raw: bytes) -> Account:
    """Inverse of :func:`encode_account`."""
    nonce, balance, code, storage = rlp.decode(raw)
    return Account(
        nonce=rlp.decode_int(nonce),
        balance=rlp.decode_int(balance),
        code=code,
        storage={rlp.decode_int(slot): rlp.decode_int(value)
                 for slot, value in storage},
    )


def _encode_log(log: Log) -> list:
    return [log.address.value, list(log.topics), log.data]


def _decode_log(item: list) -> Log:
    address, topics, data = item
    return Log(address=Address(address),
               topics=tuple(rlp.decode_int(topic) for topic in topics),
               data=data)


def encode_receipt(receipt: Receipt) -> bytes:
    """RLP-encode a receipt, logs and optional fields included."""
    error = (b"" if receipt.error is None
             else b"\x01" + receipt.error.encode("utf-8"))
    return rlp.encode([
        receipt.transaction_hash,
        receipt.transaction_index,
        receipt.block_number,
        receipt.sender.value,
        _encode_address(receipt.to),
        int(receipt.status),
        receipt.gas_used,
        receipt.cumulative_gas_used,
        _encode_address(receipt.contract_address),
        [_encode_log(log) for log in receipt.logs],
        error,
    ])


def decode_receipt(raw: bytes) -> Receipt:
    """Inverse of :func:`encode_receipt`."""
    (tx_hash, index, number, sender, to, status, gas_used,
     cumulative, contract, logs, error) = rlp.decode(raw)
    return Receipt(
        transaction_hash=tx_hash,
        transaction_index=rlp.decode_int(index),
        block_number=rlp.decode_int(number),
        sender=Address(sender),
        to=_decode_address(to),
        status=bool(rlp.decode_int(status)),
        gas_used=rlp.decode_int(gas_used),
        cumulative_gas_used=rlp.decode_int(cumulative),
        contract_address=_decode_address(contract),
        logs=tuple(_decode_log(item) for item in logs),
        error=None if not error else error[1:].decode("utf-8"),
    )


def encode_block(block: Block) -> bytes:
    """RLP: ``[header fields, [tx...], [receipt...]]``."""
    header = block.header
    return rlp.encode([
        [
            header.number,
            header.parent_hash,
            header.state_root,
            header.timestamp,
            header.miner.value,
            header.gas_limit,
            header.gas_used,
            header.transactions_root,
        ],
        [tx.encode() for tx in block.transactions],
        [encode_receipt(receipt) for receipt in block.receipts],
    ])


def decode_block(raw: bytes) -> Block:
    """Inverse of :func:`encode_block`."""
    header_fields, transactions, receipts = rlp.decode(raw)
    (number, parent_hash, state_root, timestamp, miner,
     gas_limit, gas_used, transactions_root) = header_fields
    header = BlockHeader(
        number=rlp.decode_int(number),
        parent_hash=parent_hash,
        state_root=state_root,
        timestamp=rlp.decode_int(timestamp),
        miner=Address(miner),
        gas_limit=rlp.decode_int(gas_limit),
        gas_used=rlp.decode_int(gas_used),
        transactions_root=transactions_root,
    )
    return Block(
        header=header,
        transactions=tuple(Transaction.decode(tx) for tx in transactions),
        receipts=tuple(decode_receipt(item) for item in receipts),
    )
