"""The paper's betting example (Table I, Algorithms 1-6).

Alice and Bob bet on a private topic.  The whole contract below is what
a developer would write *before* applying the paper's technique: four
light cryptocurrency-transfer functions (``deposit``,
``refundRoundOne``, ``refundRoundTwo``, ``reassign``) and one
heavy/private function (``reveal``) holding the customised betting
rules.  ``reveal`` runs a tunable iteration loop over constructor-set
secret parameters, standing in for "details of the customized betting
rules that are private to the participants and may involve an arbitrary
amount of computational cost" (§II-B).

``reveal() == true`` means participant[1] (Bob) wins the pot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.simulator import ETHER, EthereumSimulator
from repro.core.annotations import SplitSpec
from repro.core.participants import Participant
from repro.core.protocol import OnOffChainProtocol

BETTING_SOURCE = """
pragma solis ^0.1.0;

contract Betting {
    address[2] public participant;
    mapping(address => uint) public accountBalance;
    uint public T1;
    uint public T2;
    uint public T3;
    uint public stake;
    uint public secretSeed;
    uint public secretRounds;

    event Deposited(address who, uint amount);
    event Refunded(address who, uint amount);
    event Reassigned(bool winner, uint amount);

    modifier beforeT1 { require(block.timestamp < T1); _; }
    modifier T1toT2 {
        require(block.timestamp >= T1 && block.timestamp < T2);
        _;
    }
    modifier T2toT3 {
        require(block.timestamp >= T2 && block.timestamp < T3);
        _;
    }
    modifier participantOnly {
        require(msg.sender == participant[0] ||
                msg.sender == participant[1]);
        _;
    }
    modifier amountNotMet {
        require(accountBalance[participant[0]] != stake ||
                accountBalance[participant[1]] != stake);
        _;
    }

    constructor(address a, address b, uint t1, uint t2, uint t3,
                uint stakeAmount, uint seed, uint rounds) public {
        participant[0] = a;
        participant[1] = b;
        T1 = t1;
        T2 = t2;
        T3 = t3;
        stake = stakeAmount;
        secretSeed = seed;
        secretRounds = rounds;
    }

    function deposit() payable public beforeT1 participantOnly {
        require(msg.value == stake);
        require(accountBalance[msg.sender] == 0);
        accountBalance[msg.sender] = msg.value;
        emit Deposited(msg.sender, msg.value);
    }

    function refundRoundOne() public beforeT1 participantOnly {
        uint amount = accountBalance[msg.sender];
        require(amount > 0);
        accountBalance[msg.sender] = 0;
        msg.sender.transfer(amount);
        emit Refunded(msg.sender, amount);
    }

    function refundRoundTwo() public T1toT2 participantOnly amountNotMet {
        uint amount = accountBalance[msg.sender];
        require(amount > 0);
        accountBalance[msg.sender] = 0;
        msg.sender.transfer(amount);
        emit Refunded(msg.sender, amount);
    }

    function reveal() private view returns (bool) {
        uint acc = secretSeed;
        for (uint i = 0; i < secretRounds; i = i + 1) {
            acc = (acc * 1103515245 + 12345) % 2147483648;
        }
        return acc % 2 == 1;
    }

    function reassign(bool winner) public T2toT3 participantOnly {
        uint total = accountBalance[participant[0]] +
                     accountBalance[participant[1]];
        require(total > 0);
        accountBalance[participant[0]] = 0;
        accountBalance[participant[1]] = 0;
        if (winner) {
            participant[1].transfer(total);
        } else {
            participant[0].transfer(total);
        }
        emit Reassigned(winner, total);
    }
}
"""

BETTING_SPEC = SplitSpec(
    participants_var="participant",
    result_function="reveal",
    settle_function="reassign",
    challenge_period=3_600,
)

DEFAULT_STAKE = 1 * ETHER


def reference_reveal(seed: int, rounds: int) -> bool:
    """Python reference implementation of the private betting rule."""
    acc = seed
    for __ in range(rounds):
        acc = (acc * 1103515245 + 12345) % 2147483648
    return acc % 2 == 1


@dataclass
class BettingTimeline:
    """The T0..T3 deadlines of Table I (absolute timestamps)."""

    t1: int
    t2: int
    t3: int

    @classmethod
    def starting_now(cls, simulator: EthereumSimulator,
                     round_seconds: int = 7_200) -> "BettingTimeline":
        """A three-round timeline anchored at the chain's clock."""
        base = simulator.current_timestamp
        return cls(
            t1=base + round_seconds,
            t2=base + 2 * round_seconds,
            t3=base + 3 * round_seconds,
        )


def make_betting_protocol(simulator: EthereumSimulator,
                          alice: Participant, bob: Participant,
                          timeline: BettingTimeline | None = None,
                          stake: int = DEFAULT_STAKE,
                          seed: int = 42, rounds: int = 25,
                          challenge_period: int = 3_600,
                          security_deposit: int = 0
                          ) -> OnOffChainProtocol:
    """Build and generate the betting protocol for Alice and Bob.

    Returns the protocol already past Split/Generate, ready to deploy
    (rule 1 of Table I).  A non-zero ``security_deposit`` renders the
    §IV compensation machinery into the on-chain half (deposits gate
    the dispute path and a lying proposer forfeits to the challenger).
    """
    timeline = timeline or BettingTimeline.starting_now(simulator)
    spec = SplitSpec(
        participants_var=BETTING_SPEC.participants_var,
        result_function=BETTING_SPEC.result_function,
        settle_function=BETTING_SPEC.settle_function,
        challenge_period=challenge_period,
        security_deposit=security_deposit,
    )
    protocol = OnOffChainProtocol(
        simulator=simulator,
        whole_source=BETTING_SOURCE,
        contract_name="Betting",
        spec=spec,
        participants=[alice, bob],
    )
    protocol.split_generate()
    # Stash the deployment plan on the protocol for convenience.
    protocol.betting_plan = {
        "constructor_args": {
            "a": alice.address, "b": bob.address,
            "t1": timeline.t1, "t2": timeline.t2, "t3": timeline.t3,
            "stakeAmount": stake, "seed": seed, "rounds": rounds,
        },
        "offchain_state": {"secretSeed": seed, "secretRounds": rounds},
        "timeline": timeline,
        "stake": stake,
        "seed": seed,
        "rounds": rounds,
    }
    return protocol


def deploy_betting(protocol: OnOffChainProtocol,
                   deployer: Participant):
    """Deploy using the plan created by :func:`make_betting_protocol`."""
    plan = protocol.betting_plan
    return protocol.deploy(
        deployer,
        constructor_args=plan["constructor_args"],
        offchain_state=plan["offchain_state"],
    )
