"""Escrow-with-private-acceptance application (2-party).

A buyer escrows payment for a digital deliverable; acceptance is
decided by a *private* checksum policy over the delivered artefact
(e.g. fingerprints of the agreed specification).  Publishing the
acceptance policy on-chain would reveal the commercial terms, so it
runs off-chain; the ``release`` settle function moves the escrow.

Exercises the protocol with a bool result and a keccak-based heavy
function (hashing inside the off-chain contract).
"""

from __future__ import annotations

from repro.chain.simulator import ETHER, EthereumSimulator
from repro.core.annotations import SplitSpec
from repro.core.classify import FunctionCategory
from repro.core.participants import Participant
from repro.core.protocol import OnOffChainProtocol
from repro.crypto.keccak import keccak256

ESCROW_SOURCE = """
pragma solis ^0.1.0;

contract Escrow {
    address[2] public participant;
    uint public price;
    bool public funded;
    uint public deliveredFingerprint;
    uint public expectedFingerprint;
    uint public tolerance;

    event Funded(uint amount);
    event Released(bool accepted, uint amount);

    modifier buyerOnly { require(msg.sender == participant[0]); _; }
    modifier participantOnly {
        require(msg.sender == participant[0] ||
                msg.sender == participant[1]);
        _;
    }

    constructor(address buyer, address seller, uint amount,
                uint delivered, uint expected, uint tol) public {
        participant[0] = buyer;
        participant[1] = seller;
        price = amount;
        deliveredFingerprint = delivered;
        expectedFingerprint = expected;
        tolerance = tol;
    }

    function fund() payable public buyerOnly {
        require(!funded);
        require(msg.value == price);
        funded = true;
        emit Funded(msg.value);
    }

    function accepts() private view returns (bool) {
        // Private acceptance policy: iterated keccak chaining of the
        // two fingerprints must converge within the agreed tolerance.
        uint a = deliveredFingerprint;
        uint b = expectedFingerprint;
        uint distance = 0;
        for (uint i = 0; i < 16; i = i + 1) {
            a = uint(keccak256(bytes32(a)));
            b = uint(keccak256(bytes32(b)));
            if (a % 1024 > b % 1024) {
                distance = distance + (a % 1024 - b % 1024);
            } else {
                distance = distance + (b % 1024 - a % 1024);
            }
        }
        return distance <= tolerance;
    }

    function release(bool accepted) public participantOnly {
        require(funded);
        funded = false;
        if (accepted) {
            participant[1].transfer(price);
        } else {
            participant[0].transfer(price);
        }
        emit Released(accepted, price);
    }
}
"""

ESCROW_SPEC = SplitSpec(
    participants_var="participant",
    result_function="accepts",
    settle_function="release",
    challenge_period=3_600,
    annotations={"accepts": FunctionCategory.HEAVY_PRIVATE},
)

DEFAULT_PRICE = 5 * ETHER


def reference_accepts(delivered: int, expected: int, tolerance: int) -> bool:
    """Python reference of the private acceptance policy."""
    a, b = delivered, expected
    distance = 0
    for __ in range(16):
        a = int.from_bytes(keccak256(a.to_bytes(32, "big")), "big")
        b = int.from_bytes(keccak256(b.to_bytes(32, "big")), "big")
        distance += abs(a % 1024 - b % 1024)
    return distance <= tolerance


def make_escrow_protocol(simulator: EthereumSimulator, buyer: Participant,
                         seller: Participant,
                         price: int = DEFAULT_PRICE,
                         delivered: int = 123_456, expected: int = 123_456,
                         tolerance: int = 4_096) -> OnOffChainProtocol:
    """Build the escrow protocol, already split and compiled."""
    protocol = OnOffChainProtocol(
        simulator=simulator,
        whole_source=ESCROW_SOURCE,
        contract_name="Escrow",
        spec=ESCROW_SPEC,
        participants=[buyer, seller],
    )
    protocol.split_generate()
    protocol.escrow_plan = {
        "constructor_args": {
            "buyer": buyer.address, "seller": seller.address,
            "amount": price, "delivered": delivered,
            "expected": expected, "tol": tolerance,
        },
        "offchain_state": {
            "deliveredFingerprint": delivered,
            "expectedFingerprint": expected,
            "tolerance": tolerance,
        },
        "price": price,
    }
    return protocol


def deploy_escrow(protocol: OnOffChainProtocol, deployer: Participant):
    """Deploy using the plan from :func:`make_escrow_protocol`."""
    plan = protocol.escrow_plan
    return protocol.deploy(
        deployer,
        constructor_args=plan["constructor_args"],
        offchain_state=plan["offchain_state"],
    )
