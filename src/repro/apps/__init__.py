"""Example applications built on the on/off-chain protocol."""

from repro.apps.betting import (
    BETTING_SOURCE,
    BETTING_SPEC,
    BettingTimeline,
    deploy_betting,
    make_betting_protocol,
    reference_reveal,
)
from repro.apps.escrow import (
    ESCROW_SOURCE,
    ESCROW_SPEC,
    deploy_escrow,
    make_escrow_protocol,
    reference_accepts,
)
from repro.apps.tender import (
    TENDER_SOURCE,
    TENDER_SPEC,
    deploy_tender,
    make_tender_protocol,
    reference_select_winner,
)

__all__ = [
    "BETTING_SOURCE",
    "BETTING_SPEC",
    "BettingTimeline",
    "deploy_betting",
    "make_betting_protocol",
    "reference_reveal",
    "ESCROW_SOURCE",
    "ESCROW_SPEC",
    "deploy_escrow",
    "make_escrow_protocol",
    "reference_accepts",
    "TENDER_SOURCE",
    "TENDER_SPEC",
    "deploy_tender",
    "make_tender_protocol",
    "reference_select_winner",
]
