"""Private-tender application (a 3-party scenario).

A buyer escrows a budget; two contractors hold *secret quotes* and a
private scoring formula decides the winner.  Publishing quotes or the
scoring weights on-chain would leak competitive information — exactly
the "distinguishable logic that may reveal private information" the
paper's hybrid model moves off-chain.  The result type here is ``uint``
(the winning contractor's participant index), exercising a non-boolean
result through the whole protocol.
"""

from __future__ import annotations

from repro.chain.simulator import ETHER, EthereumSimulator
from repro.core.annotations import SplitSpec
from repro.core.classify import FunctionCategory
from repro.core.participants import Participant
from repro.core.protocol import OnOffChainProtocol

TENDER_SOURCE = """
pragma solis ^0.1.0;

contract Tender {
    address[3] public participant;
    uint public budget;
    uint public quoteA;
    uint public quoteB;
    uint public qualityA;
    uint public qualityB;
    uint public qualityWeight;
    bool public funded;

    event Funded(uint amount);
    event Awarded(uint winner, uint amount);

    modifier buyerOnly { require(msg.sender == participant[0]); _; }
    modifier participantOnly {
        require(msg.sender == participant[0] ||
                msg.sender == participant[1] ||
                msg.sender == participant[2]);
        _;
    }

    constructor(address buyer, address contractorA, address contractorB,
                uint amount, uint qa, uint qb, uint wq, uint quoA,
                uint quoB) public {
        participant[0] = buyer;
        participant[1] = contractorA;
        participant[2] = contractorB;
        budget = amount;
        qualityA = qa;
        qualityB = qb;
        qualityWeight = wq;
        quoteA = quoA;
        quoteB = quoB;
    }

    function fund() payable public buyerOnly {
        require(!funded);
        require(msg.value == budget);
        funded = true;
        emit Funded(msg.value);
    }

    function selectWinner() private view returns (uint) {
        // Private scoring: lower effective cost wins; quality discounts
        // the quote.  Iterative smoothing makes the computation heavy.
        uint scoreA = quoteA;
        uint scoreB = quoteB;
        for (uint i = 0; i < 40; i = i + 1) {
            scoreA = (scoreA * 99 + quoteA) / 100;
            scoreB = (scoreB * 99 + quoteB) / 100;
        }
        scoreA = scoreA - (qualityA * qualityWeight);
        scoreB = scoreB - (qualityB * qualityWeight);
        if (scoreA <= scoreB) {
            return 1;
        }
        return 2;
    }

    function award(uint winner) public participantOnly {
        require(funded);
        require(winner == 1 || winner == 2);
        funded = false;
        if (winner == 1) {
            participant[1].transfer(budget);
        } else {
            participant[2].transfer(budget);
        }
        emit Awarded(winner, budget);
    }
}
"""

TENDER_SPEC = SplitSpec(
    participants_var="participant",
    result_function="selectWinner",
    settle_function="award",
    challenge_period=3_600,
    annotations={"selectWinner": FunctionCategory.HEAVY_PRIVATE},
)

DEFAULT_BUDGET = 10 * ETHER


def reference_select_winner(quote_a: int, quote_b: int, quality_a: int,
                            quality_b: int, weight: int) -> int:
    """Python reference of the private scoring formula."""
    score_a, score_b = quote_a, quote_b
    for __ in range(40):
        score_a = (score_a * 99 + quote_a) // 100
        score_b = (score_b * 99 + quote_b) // 100
    score_a -= quality_a * weight
    score_b -= quality_b * weight
    return 1 if score_a <= score_b else 2


def make_tender_protocol(simulator: EthereumSimulator, buyer: Participant,
                         contractor_a: Participant,
                         contractor_b: Participant,
                         budget: int = DEFAULT_BUDGET,
                         quote_a: int = 9 * ETHER,
                         quote_b: int = 8 * ETHER,
                         quality_a: int = 80, quality_b: int = 60,
                         quality_weight: int = 10 ** 16
                         ) -> OnOffChainProtocol:
    """Build the tender protocol, already split and compiled."""
    protocol = OnOffChainProtocol(
        simulator=simulator,
        whole_source=TENDER_SOURCE,
        contract_name="Tender",
        spec=TENDER_SPEC,
        participants=[buyer, contractor_a, contractor_b],
    )
    protocol.split_generate()
    protocol.tender_plan = {
        "constructor_args": {
            "buyer": buyer.address,
            "contractorA": contractor_a.address,
            "contractorB": contractor_b.address,
            "amount": budget,
            "qa": quality_a, "qb": quality_b, "wq": quality_weight,
            "quoA": quote_a, "quoB": quote_b,
        },
        "offchain_state": {
            "budget": budget,
            "quoteA": quote_a, "quoteB": quote_b,
            "qualityA": quality_a, "qualityB": quality_b,
            "qualityWeight": quality_weight,
        },
        "budget": budget,
    }
    return protocol


def deploy_tender(protocol: OnOffChainProtocol, deployer: Participant):
    """Deploy using the plan from :func:`make_tender_protocol`."""
    plan = protocol.tender_plan
    return protocol.deploy(
        deployer,
        constructor_args=plan["constructor_args"],
        offchain_state=plan["offchain_state"],
    )
