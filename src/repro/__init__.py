"""repro — Scalable and Privacy-preserving On/Off-chain Smart Contracts.

A from-scratch Python reproduction of Li, Palanisamy & Xu (ICDE 2019):
an Ethereum-compatible substrate (Keccak-256, secp256k1 ECDSA with
recovery, RLP/ABI codecs, a Constantinople-gas EVM, a deterministic
blockchain simulator, and the Solis Solidity-subset compiler) plus the
paper's contribution on top — contract splitting, dispute padding, and
the four-stage Split/Generate → Deploy/Sign → Submit/Challenge →
Dispute/Resolve protocol.

Quickstart::

    from repro.chain import EthereumSimulator
    from repro.core import Participant
    from repro.apps.betting import make_betting_protocol, deploy_betting

    sim = EthereumSimulator()
    alice = Participant(account=sim.accounts[0], name="alice")
    bob = Participant(account=sim.accounts[1], name="bob")
    protocol = make_betting_protocol(sim, alice, bob)
    deploy_betting(protocol, alice)
    protocol.collect_signatures()
"""

from repro.core import (
    EngineMetrics,
    OnOffChainProtocol,
    Participant,
    SessionEngine,
    SplitSpec,
    Stage,
    StageResult,
    Strategy,
    spawn_fleet,
    split_contract,
)
from repro.chain import ETHER, EthereumSimulator, SimulatorConfig
from repro.exceptions import ReproError
from repro.lang import compile_contract, compile_source

__version__ = "1.1.0"

__all__ = [
    "EngineMetrics",
    "OnOffChainProtocol",
    "Participant",
    "ReproError",
    "SessionEngine",
    "SimulatorConfig",
    "SplitSpec",
    "Stage",
    "StageResult",
    "Strategy",
    "spawn_fleet",
    "split_contract",
    "ETHER",
    "EthereumSimulator",
    "compile_contract",
    "compile_source",
    "__version__",
]
