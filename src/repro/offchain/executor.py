"""Local (off-chain) execution of the off-chain contract.

"When all the participants are honest, they can execute computation of
the off-chain contract by themselves" (§III).  The executor gives each
participant exactly that: it deploys the agreed bytecode on a private,
throwaway EVM — no miners, no gas fees paid to anyone — and evaluates
the padded ``computeResult()`` view, returning the result plus the gas
the *miners would have spent* had the computation run on-chain (the
quantity the paper's Fig. 1 argues is saved).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.contract import ContractABI
from repro.chain.state import WorldState
from repro.crypto.keys import Address, PrivateKey
from repro.evm.vm import EVM, BlockContext, Message
from repro.exceptions import ReproError


class OffchainExecutionError(ReproError, RuntimeError):
    """The off-chain contract failed to deploy or execute locally."""


@dataclass
class OffchainRun:
    """Result of one local execution."""

    result: object
    gas_equivalent: int      # gas miners would have burned on-chain
    deploy_gas_equivalent: int
    instance_address: Address


_LOCAL_CALLER = PrivateKey.from_seed("offchain-local-caller").address
_LOCAL_GAS = 50_000_000


class OffchainExecutor:
    """Runs off-chain bytecode on a private single-use EVM."""

    def __init__(self, timestamp: int = 1_550_000_000,
                 block_number: int = 1) -> None:
        self._block = BlockContext(
            coinbase=Address.from_int(0xFEE),
            timestamp=timestamp,
            number=block_number,
        )

    def execute(self, bytecode: bytes, abi: ContractABI,
                caller: Address | None = None) -> OffchainRun:
        """Deploy ``bytecode`` locally and call ``computeResult()``."""
        state = WorldState()
        sender = caller or _LOCAL_CALLER
        state.add_balance(sender, 10 ** 24)
        evm = EVM(state, self._block)

        deploy_result = evm.execute(Message(
            sender=sender, to=None, value=0, data=bytecode,
            gas=_LOCAL_GAS, origin=sender,
        ))
        if not deploy_result.success:
            raise OffchainExecutionError(
                f"local deployment failed: {deploy_result.error}"
            )
        instance = deploy_result.created_address

        fn = abi.function("computeResult")
        call_result = evm.execute(Message(
            sender=sender, to=instance, value=0,
            data=fn.encode_call([]), gas=_LOCAL_GAS, origin=sender,
        ))
        if not call_result.success:
            raise OffchainExecutionError(
                f"local computeResult() failed: {call_result.error}"
            )
        return OffchainRun(
            result=fn.decode_output(call_result.return_data),
            gas_equivalent=call_result.gas_used,
            deploy_gas_equivalent=deploy_result.gas_used,
            instance_address=instance,
        )
