"""Off-chain substrate: Whisper-like messaging, signing, local execution."""

from repro.offchain.envelope import Envelope
from repro.offchain.executor import (
    OffchainExecutionError,
    OffchainExecutor,
    OffchainRun,
)
from repro.offchain.signing import (
    SignedCopy,
    assemble_signed_copy,
    sign_bytecode,
)
from repro.offchain.whisper import WhisperBus, WhisperError

__all__ = [
    "Envelope",
    "OffchainExecutionError",
    "OffchainExecutor",
    "OffchainRun",
    "SignedCopy",
    "assemble_signed_copy",
    "sign_bytecode",
    "WhisperBus",
    "WhisperError",
]
