"""A simulated Whisper message bus.

The paper suggests Whisper for exchanging signed copies of the
off-chain contract ("the procedure of generating signed copies may
easily be implemented through off-chain communication approaches, such
as Whisper").  This module provides the piece the protocol needs:
topic-based asynchronous delivery that never touches the chain, with
TTL expiry and per-subscriber cursors.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.offchain.envelope import Envelope
from repro.exceptions import ReproError


class WhisperError(ReproError, RuntimeError):
    """Raised for malformed bus operations."""


@dataclass
class _Subscription:
    subscriber: str
    topic: str
    cursor: int = 0


class WhisperBus:
    """In-memory topic bus shared by a set of participants."""

    def __init__(self) -> None:
        self._messages: dict[str, list[Envelope]] = defaultdict(list)
        self._subscriptions: dict[tuple[str, str], _Subscription] = {}
        self._clock = 0
        self.bytes_transferred = 0

    def advance_time(self, seconds: int) -> None:
        """Move the bus clock; expired envelopes are pruned lazily.

        A clock tick is O(1): nothing is scanned here.  Each topic
        drops its expired envelopes the next time it is touched
        (:meth:`post`, :meth:`poll` or :meth:`peek_all`), so a bus
        carrying many idle topics never pays for all of them on every
        tick.
        """
        if seconds < 0:
            raise WhisperError("time can only move forward")
        self._clock += seconds

    @property
    def now(self) -> int:
        """The transport's current clock reading."""
        return self._clock

    def _prune(self, topic: str) -> None:
        """Drop expired envelopes from one topic's backlog.

        Subscriber cursors are shifted down by the number of removed
        envelopes that sat below them, so pruning is invisible to
        :meth:`poll` — and ``bytes_transferred`` is a cumulative
        transfer counter, never decreased by pruning.
        """
        messages = self._messages.get(topic)
        if not messages:
            return
        removed_below = 0
        removed_positions: list[int] = []
        survivors: list[Envelope] = []
        for index, envelope in enumerate(messages):
            if envelope.expires_at > self._clock:
                survivors.append(envelope)
            else:
                removed_positions.append(index)
        if not removed_positions:
            return
        self._messages[topic] = survivors
        for subscription in self._subscriptions.values():
            if subscription.topic != topic:
                continue
            removed_below = sum(
                1 for position in removed_positions
                if position < subscription.cursor
            )
            subscription.cursor -= removed_below

    def post(self, topic: str, payload: bytes, sender: str = "",
             ttl: int = 3_600) -> Envelope:
        """Publish a payload under a topic.

        ``ttl`` must be positive: an envelope with ``ttl <= 0`` would
        be expired at birth (``expires_at <= posted_at``) — it could
        never be polled yet would still count toward
        ``bytes_transferred``, so it is rejected outright.
        """
        if not topic:
            raise WhisperError("topic must be non-empty")
        if ttl <= 0:
            raise WhisperError(
                f"ttl must be positive, got {ttl}: a non-positive TTL "
                "mints an envelope already expired at birth")
        self._prune(topic)
        envelope = Envelope(
            topic=topic, payload=payload, sender=sender,
            posted_at=self._clock, ttl=ttl,
        )
        self._messages[topic].append(envelope)
        self.bytes_transferred += envelope.padded_size
        return envelope

    def subscribe(self, subscriber: str, topic: str,
                  resubscribe: bool = False) -> None:
        """Register a subscriber cursor starting at the current head.

        Real Whisper delivers a topic's traffic from the moment of
        subscription — a late subscriber does not replay history.
        Use :meth:`peek_all` for the bootstrap pattern that *does*
        need the still-unexpired backlog (e.g. a crash-restarted
        participant recovering its signed copy).

        Subscribing again under the same ``(subscriber, topic)`` key
        keeps the existing cursor by default: a crash-restarted
        participant that re-subscribes resumes exactly where it left
        off instead of silently skipping the messages posted while it
        was down.  Pass ``resubscribe=True`` to explicitly reset the
        cursor to the current head (drop-history semantics, as if
        subscribing for the first time now).
        """
        key = (subscriber, topic)
        if resubscribe or key not in self._subscriptions:
            self._subscriptions[key] = _Subscription(
                subscriber=subscriber, topic=topic,
                cursor=len(self._messages.get(topic, [])),
            )

    def poll(self, subscriber: str, topic: str) -> list[Envelope]:
        """Fetch unseen, unexpired envelopes for a subscriber.

        Pruning happens here (access time): expired envelopes are
        dropped and the cursor is shifted with them, so the freshness
        filter below and the backlog agree on the boundary — an
        envelope with ``expires_at == now`` is already expired.
        """
        key = (subscriber, topic)
        subscription = self._subscriptions.get(key)
        if subscription is None:
            raise WhisperError(
                f"{subscriber!r} is not subscribed to {topic!r}"
            )
        self._prune(topic)
        messages = self._messages.get(topic, [])
        fresh = [
            env for env in messages[subscription.cursor:]
            if env.expires_at > self._clock
        ]
        subscription.cursor = len(messages)
        return fresh

    def peek_all(self, topic: str) -> list[Envelope]:
        """All unexpired envelopes on a topic (no cursor movement).

        Like :meth:`poll` this is an access point, so the topic is
        pruned first; the survivors are exactly the envelopes with
        ``expires_at > now``.
        """
        self._prune(topic)
        return [
            env for env in self._messages.get(topic, [])
            if env.expires_at > self._clock
        ]
