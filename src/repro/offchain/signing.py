"""Signed copies of the off-chain contract (Algorithm 4).

A *signed copy* is the off-chain contract's deployable bytecode (init
code with constructor arguments appended) together with one ECDSA
``(v, r, s)`` signature per participant over ``keccak256(bytecode)``.
Each participant must hold a fully signed copy before interacting with
the deployed on-chain contract — it is their insurance for the
Dispute/Resolve stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import SigningError
from repro.crypto import rlp
from repro.crypto.ecdsa import Signature, SignatureError
from repro.crypto.keccak import keccak256
from repro.crypto.keys import Address, PrivateKey, recover_address


def sign_bytecode(key: PrivateKey, bytecode: bytes) -> Signature:
    """Produce this participant's (v, r, s) over keccak256(bytecode)."""
    return key.sign(keccak256(bytecode))


@dataclass(frozen=True)
class SignedCopy:
    """Bytecode + one signature per participant, in participant order."""

    bytecode: bytes
    signatures: tuple[Signature, ...]

    @property
    def bytecode_hash(self) -> bytes:
        """keccak256 of init code plus constructor arguments."""
        return keccak256(self.bytecode)

    def verify(self, participants: list[Address]) -> bool:
        """True iff signature *i* recovers to participant *i*."""
        if len(self.signatures) != len(participants):
            return False
        digest = self.bytecode_hash
        for signature, expected in zip(self.signatures, participants):
            try:
                recovered = recover_address(digest, signature)
            except (SignatureError, ValueError):
                return False
            if recovered != expected:
                return False
        return True

    def require_valid(self, participants: list[Address]) -> None:
        """Raise :class:`SigningError` unless :meth:`verify` passes."""
        if not self.verify(participants):
            raise SigningError(
                "signed copy failed verification against the participant "
                "list — wrong signer order, missing signature, or "
                "tampered bytecode"
            )

    def vrs_arguments(self) -> list:
        """Flatten to [v0, r0, s0, v1, ...] for deployVerifiedInstance."""
        flat: list = []
        for signature in self.signatures:
            flat.append(signature.v)
            flat.append(signature.r.to_bytes(32, "big"))
            flat.append(signature.s.to_bytes(32, "big"))
        return flat

    # -- wire format (what travels over Whisper) ---------------------------

    def to_wire(self) -> bytes:
        """RLP encoding: [bytecode, [sig65, sig65, ...]]."""
        return rlp.encode([
            self.bytecode,
            [signature.to_bytes() for signature in self.signatures],
        ])

    @classmethod
    def from_wire(cls, raw: bytes) -> "SignedCopy":
        """Rebuild a signature record from its wire tuple.

        Only EIP-2 canonical (low-s) signatures are accepted: the
        high-s twin of a valid signature still recovers to the same
        signer, but it changes the wire bytes — a malleated copy would
        verify yet hash differently from the one everybody signed,
        so it is rejected at the trust boundary.
        """
        try:
            decoded = rlp.decode(raw)
            bytecode, sig_blobs = decoded
            signatures = tuple(
                Signature.from_bytes(blob) for blob in sig_blobs
            )
        except (ValueError, TypeError) as exc:
            raise SigningError(f"malformed signed copy: {exc}") from exc
        for index, signature in enumerate(signatures):
            if not signature.is_low_s:
                raise SigningError(
                    f"signature {index} of the signed copy is "
                    "non-canonical (high-s): refusing the malleated "
                    "wire form"
                )
        return cls(bytecode=bytecode, signatures=signatures)


def assemble_signed_copy(bytecode: bytes,
                         signatures_by_address: dict[Address, Signature],
                         participants: list[Address]) -> SignedCopy:
    """Order collected signatures by the canonical participant list."""
    ordered: list[Signature] = []
    for address in participants:
        signature = signatures_by_address.get(address)
        if signature is None:
            raise SigningError(
                f"missing signature from participant {address.checksum}"
            )
        ordered.append(signature)
    copy = SignedCopy(bytecode=bytecode, signatures=tuple(ordered))
    copy.require_valid(participants)
    return copy
