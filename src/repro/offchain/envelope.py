"""Whisper-style message envelopes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keccak import keccak256


@dataclass(frozen=True)
class Envelope:
    """One message on the off-chain bus.

    Mirrors the shape of an Ethereum Whisper envelope: a topic for
    routing, an opaque payload, a TTL, and a posted-at timestamp.  The
    payload is padded to a fixed size bucket like Whisper does, so the
    message length leaks less about its content.
    """

    topic: str
    payload: bytes
    sender: str = ""
    posted_at: int = 0
    ttl: int = 3_600
    pad_to: int = 256

    @property
    def padded_size(self) -> int:
        """Wire size after padding to the next ``pad_to`` bucket."""
        if self.pad_to <= 0:
            return len(self.payload)
        buckets = (len(self.payload) + self.pad_to - 1) // self.pad_to
        return max(1, buckets) * self.pad_to

    @property
    def expires_at(self) -> int:
        """Absolute expiry timestamp of this envelope."""
        return self.posted_at + self.ttl

    @property
    def envelope_hash(self) -> bytes:
        """keccak256 over the canonical envelope encoding."""
        return keccak256(
            self.topic.encode("utf-8") + b"\x00" + self.payload
        )
