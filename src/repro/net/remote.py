"""Client-side mirrors of the simulator and Whisper bus surfaces.

:class:`RemoteSimulator` lets an unmodified
:class:`~repro.core.engine.SessionEngine` (and the protocol/apps
behind it) run in one OS process while the chain lives in another: it
implements the simulator methods the engine path uses —
``create_account``, pool-aware ``send_transaction``, ``mine``,
``pending``, ``get_receipt``, time warping, ``eth_call`` — by signing
locally and shipping raw transactions over a
:class:`~repro.net.client.ChannelClient`.  Private keys are derived
and kept on this side; the node only ever sees addresses and
pre-signed transactions.

:class:`RemoteWhisperTransport` is the same idea for the off-chain
bus: it implements the :class:`~repro.offchain.whisper.WhisperBus`
interface (``subscribe``/``post``/``poll``/``peek_all``/
``advance_time``/``now``) against the node's shared bus, so the
protocol's signature exchange crosses the wire without knowing it.

Both mirrors are deliberately *thin*: every consequential decision
(nonce allocation against the pending pool, expiry boundaries,
receipt contents) is made node-side by the same code the in-process
path runs, which is what makes gas ledgers bit-identical across the
two topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.chain.blockchain import ChainError
from repro.chain.contract import DeployedContract
from repro.chain.receipt import Receipt
from repro.chain.simulator import (
    DEFAULT_FUNDING,
    CallFailed,
    SimAccount,
    SimulatorConfig,
)
from repro.chain.transaction import Transaction
from repro.crypto.keys import Address, PrivateKey
from repro.net.client import ChannelClient
from repro.net.wire import NetError, from_hex, to_hex
from repro.offchain.envelope import Envelope


@dataclass(frozen=True)
class RemoteBlock:
    """A mined block as seen over the wire (hashes, not bodies)."""

    number: int
    timestamp: int
    transactions: tuple[str, ...]


@dataclass
class _RemoteParallelStats:
    """Placeholder stats: remote mining parallelism is node-side."""

    lanes: int = 0
    speculative_commits: int = 0
    conflicts: int = 0
    reexecutions: int = 0


class RemoteChain:
    """The slice of :class:`Blockchain` the engine touches, by RPC."""

    def __init__(self, client: ChannelClient) -> None:
        self._client = client
        #: Accepted and ignored: block execution parallelism is the
        #: node's decision, not the remote engine's.
        self.workers = 1
        self.parallel_stats = _RemoteParallelStats()

    @property
    def latest_block(self) -> RemoteBlock:
        """Header of the node's latest block."""
        result = self._client.call("chain.latest")
        return RemoteBlock(number=result["number"],
                           timestamp=result["timestamp"],
                           transactions=())

    def next_timestamp(self) -> int:
        """The timestamp the next mined block will carry."""
        return self._client.call("chain.next_timestamp")["timestamp"]

    def attach_store(self, store: Any) -> None:
        """Durable stores live node-side; always an error here."""
        raise ChainError(
            "--store is not supported over the net transport: the "
            "durable chain store belongs to the node process")


class RemoteSimulator:
    """The engine-facing simulator surface, served by a chain node."""

    def __init__(self, client: ChannelClient,
                 config: Optional[SimulatorConfig] = None) -> None:
        self.client = client
        #: Local knobs (settlement policy, batch size) the engine
        #: reads off ``simulator.config``; chain-level fields describe
        #: the node and must match its genesis for identical ledgers.
        self.config = config or SimulatorConfig(num_accounts=2,
                                                auto_mine=False)
        self.auto_mine = False
        self.chain = RemoteChain(client)
        #: Mirrors of the node's pre-funded genesis accounts — same
        #: deterministic seeds, so the same keys on both sides.
        self.accounts = [
            SimAccount(
                key=PrivateKey.from_seed(f"simulator-account-{i}"),
                name=f"account{i}")
            for i in range(self.config.num_accounts)
        ]

    # -- accounts ---------------------------------------------------------

    def create_account(self, seed: str,
                       funding: int = DEFAULT_FUNDING,
                       name: str = "") -> SimAccount:
        """Derive a key locally; ask the node to fund its address."""
        account = SimAccount(key=PrivateKey.from_seed(seed),
                             name=name or seed)
        self.client.call("chain.fund",
                         {"address": account.address.hex,
                          "amount": funding})
        return account

    def get_balance(self, who: Address | SimAccount) -> int:
        """Current wei balance, read from the node."""
        address = who.address if isinstance(who, SimAccount) else who
        return self.client.call("chain.balance",
                                {"address": address.hex})["balance"]

    def get_nonce(self, who: Address | SimAccount) -> int:
        """Current (mined-state) nonce, read from the node."""
        address = who.address if isinstance(who, SimAccount) else who
        return self.client.call("chain.nonce",
                                {"address": address.hex})["nonce"]

    # -- time -------------------------------------------------------------

    @property
    def current_timestamp(self) -> int:
        """The node chain's current timestamp."""
        return self.chain.latest_block.timestamp

    def advance_time_to(self, timestamp: int) -> None:
        """Warp the node so the next block is at/after ``timestamp``."""
        self.client.call("chain.advance_time_to",
                         {"timestamp": timestamp})

    # -- transactions -----------------------------------------------------

    def send_transaction(self, sender: SimAccount,
                         to: Optional[Address], data: bytes = b"",
                         value: int = 0, gas_limit: int = 3_000_000,
                         gas_price: int = 1) -> bytes:
        """Sign locally, queue on the node; returns the tx hash.

        The pool-aware nonce comes from the node (`chain.next_nonce`
        counts that sender's mempool entries exactly like the
        in-process simulator does), so interleaved multi-tx batches
        produce identical transactions in both topologies.
        """
        nonce = self.client.call(
            "chain.next_nonce",
            {"address": sender.address.hex})["nonce"]
        transaction = Transaction.create_signed(
            private_key=sender.key, nonce=nonce, to=to, value=value,
            data=data, gas_limit=gas_limit, gas_price=gas_price)
        result = self.client.call(
            "chain.send_raw", {"tx": to_hex(transaction.encode())})
        return from_hex(result["hash"])

    def send_signed_transaction(self, transaction: Transaction) -> bytes:
        """Queue one pre-signed transaction on the node.

        The engine's pipelined rounds allocate nonces locally and sign
        in worker processes; the node's admission (sender recovery and
        all) is the same as for :meth:`send_transaction`.
        """
        result = self.client.call(
            "chain.send_raw", {"tx": to_hex(transaction.encode())})
        return from_hex(result["hash"])

    def mine(self, blocks: int = 1,
             gas_limit: Optional[int] = None) -> list[RemoteBlock]:
        """Mine on the node; returns header-level block views."""
        mined = []
        for __ in range(blocks):
            result = self.client.call("chain.mine",
                                      {"gas_limit": gas_limit})
            mined.append(RemoteBlock(
                number=result["number"],
                timestamp=result["timestamp"],
                transactions=tuple(result["tx_hashes"])))
        return mined

    def pending(self) -> Sequence[int]:
        """A sized stand-in for the node's mempool content."""
        count = self.client.call("chain.pending")["count"]
        return range(count)

    def get_receipt(self, tx_hash: bytes) -> Receipt:
        """Fetch and rebuild a mined transaction's receipt."""
        from repro.net.node import decode_receipt

        result = self.client.call("chain.receipt",
                                  {"hash": to_hex(tx_hash)})
        return decode_receipt(result["receipt"])

    def transact(self, *args: Any, **kwargs: Any) -> Receipt:
        """Sync transact needs auto-mining; never available remotely."""
        raise ChainError(
            "auto_mine is off: use send_transaction() + mine() and "
            "fetch the receipt manually")

    # -- read-only execution ----------------------------------------------

    def call(self, to: Address, data: bytes = b"",
             sender: Optional[SimAccount] = None, value: int = 0,
             gas_limit: int = 8_000_000) -> bytes:
        """eth_call on the node; raises :class:`CallFailed` on revert."""
        try:
            result = self.client.call(
                "chain.call",
                {"to": to.hex, "data": to_hex(data), "value": value})
        except NetError as exc:
            message = str(exc)
            if "CallFailed" in message:
                raise CallFailed(
                    message.split("CallFailed: ", 1)[-1]) from exc
            raise
        return from_hex(result["data"])

    def contract_at(self, address: Address,
                    abi: Any) -> DeployedContract:
        """Bind an ABI to a node-side deployed address."""
        return DeployedContract(address=address, abi=abi,
                                simulator=self)


class RemoteWhisperTransport:
    """The WhisperBus interface, backed by the node's shared bus."""

    def __init__(self, client: ChannelClient) -> None:
        self._client = client

    @property
    def now(self) -> int:
        """The node bus's current clock reading."""
        return self._client.call("bus.now")["now"]

    @property
    def bytes_transferred(self) -> int:
        """Cumulative padded bytes posted through the node bus."""
        return self._client.call(
            "bus.stats")["bytes_transferred"]

    def advance_time(self, seconds: int) -> None:
        """Advance the node bus clock (lazy pruning, as locally)."""
        self._client.call("bus.advance", {"seconds": seconds})

    def subscribe(self, subscriber: str, topic: str,
                  resubscribe: bool = False) -> None:
        """Register/keep a cursor on the node bus."""
        self._client.call("bus.subscribe",
                          {"subscriber": subscriber, "topic": topic,
                           "resubscribe": resubscribe})

    def post(self, topic: str, payload: bytes, sender: str = "",
             ttl: int = 3_600) -> Envelope:
        """Publish through the node; returns the equivalent envelope."""
        result = self._client.call(
            "bus.post", {"topic": topic, "payload": to_hex(payload),
                         "sender": sender, "ttl": ttl})
        return Envelope(topic=topic, payload=payload, sender=sender,
                        posted_at=result["posted_at"], ttl=ttl)

    def poll(self, subscriber: str, topic: str) -> list[Envelope]:
        """Unseen, unexpired envelopes for a subscriber."""
        result = self._client.call(
            "bus.poll", {"subscriber": subscriber, "topic": topic})
        return [self._decode(obj) for obj in result["envelopes"]]

    def peek_all(self, topic: str) -> list[Envelope]:
        """All unexpired envelopes on a topic (no cursor movement)."""
        result = self._client.call("bus.peek", {"topic": topic})
        return [self._decode(obj) for obj in result["envelopes"]]

    @staticmethod
    def _decode(obj: dict[str, Any]) -> Envelope:
        return Envelope(topic=obj["topic"],
                        payload=from_hex(obj["payload"]),
                        sender=obj["sender"],
                        posted_at=obj["posted_at"], ttl=obj["ttl"])
