"""The networked off-chain layer: protocol commands over asyncio.

This package promotes the in-process :class:`~repro.offchain.whisper.
WhisperBus` + :class:`~repro.core.engine.SessionEngine` pairing into
real participant *nodes*: a length-prefixed JSON wire protocol
(:mod:`repro.net.wire`) carrying ECDSA-signed commands with
per-channel monotonic sequence numbers (:mod:`repro.net.channel`),
exponential-backoff retries with idempotent redelivery
(:mod:`repro.net.client` / :mod:`repro.net.server`), and the service
layer that lets betting/escrow/tender fleets run as separate OS
processes against one shared chain node (:mod:`repro.net.node`,
:mod:`repro.net.remote`, :mod:`repro.net.participant`).

The design follows the two-party channel shape of the Diem off-chain
API (``CommandProcessor``/``VASPPairChannel``): every command names a
channel, carries the channel's next sequence number, and is signed by
its sender; the receiving side executes a sequence number exactly
once, caching the response so a retransmission is *acked, not
re-executed*.
"""

from repro.net.wire import Command, NetError, MAX_FRAME
from repro.net.channel import SequenceGate
from repro.net.faults import FaultPolicy
from repro.net.server import ChannelServer, ServerHandle
from repro.net.client import ChannelClient
from repro.net.node import NodeService, run_node
from repro.net.remote import (
    RemoteSimulator,
    RemoteWhisperTransport,
)
from repro.net.participant import ParticipantNode

__all__ = [
    "Command",
    "NetError",
    "MAX_FRAME",
    "SequenceGate",
    "FaultPolicy",
    "ChannelServer",
    "ServerHandle",
    "ChannelClient",
    "NodeService",
    "run_node",
    "RemoteSimulator",
    "RemoteWhisperTransport",
    "ParticipantNode",
]
