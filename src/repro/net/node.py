"""The shared chain node: one simulator + bus served over the wire.

:class:`NodeService` owns the process-wide :class:`EthereumSimulator`
and :class:`WhisperBus` and maps wire command kinds onto them —
``bus.*`` for the Whisper surface, ``chain.*`` for the chain surface
(funding, raw-transaction admission, mining, receipts, time and
``eth_call``), ``node.*`` for liveness and stats.  Because the
:class:`~repro.net.server.ChannelServer` serializes every command
through one event loop, the simulator needs no locking: the node *is*
the total order of the deployment.

Keys never reach the node.  Clients derive their own accounts and
sign their own transactions; the node only ever sees addresses, raw
signed transactions, and signed wire commands.

``run_node`` is the process entry point behind ``repro node``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro import obs
from repro.chain.receipt import Receipt
from repro.chain.simulator import EthereumSimulator, SimulatorConfig
from repro.chain.transaction import Transaction
from repro.crypto.keys import Address
from repro.evm.vm import Log
from repro.exceptions import ReproError
from repro.net.server import ChannelServer
from repro.net.wire import NetError, from_hex, to_hex
from repro.offchain.whisper import WhisperBus


def _encode_envelope(envelope: Any) -> dict[str, Any]:
    return {
        "topic": envelope.topic,
        "payload": to_hex(envelope.payload),
        "sender": envelope.sender,
        "posted_at": envelope.posted_at,
        "ttl": envelope.ttl,
    }


def _encode_receipt(receipt: Receipt) -> dict[str, Any]:
    return {
        "transaction_hash": to_hex(receipt.transaction_hash),
        "transaction_index": receipt.transaction_index,
        "block_number": receipt.block_number,
        "sender": receipt.sender.hex,
        "to": receipt.to.hex if receipt.to is not None else None,
        "status": receipt.status,
        "gas_used": receipt.gas_used,
        "cumulative_gas_used": receipt.cumulative_gas_used,
        "contract_address": (receipt.contract_address.hex
                             if receipt.contract_address is not None
                             else None),
        "logs": [
            {"address": log.address.hex,
             "topics": [hex(topic) for topic in log.topics],
             "data": to_hex(log.data)}
            for log in receipt.logs
        ],
        "error": receipt.error,
    }


def decode_receipt(obj: dict[str, Any]) -> Receipt:
    """Rebuild a :class:`Receipt` from its wire encoding."""
    return Receipt(
        transaction_hash=from_hex(obj["transaction_hash"]),
        transaction_index=obj["transaction_index"],
        block_number=obj["block_number"],
        sender=Address.from_hex(obj["sender"]),
        to=(Address.from_hex(obj["to"])
            if obj["to"] is not None else None),
        status=obj["status"],
        gas_used=obj["gas_used"],
        cumulative_gas_used=obj["cumulative_gas_used"],
        contract_address=(Address.from_hex(obj["contract_address"])
                          if obj["contract_address"] is not None
                          else None),
        logs=tuple(
            Log(address=Address.from_hex(log["address"]),
                topics=tuple(int(topic, 16)
                             for topic in log["topics"]),
                data=from_hex(log["data"]))
            for log in obj["logs"]
        ),
        error=obj["error"],
    )


class NodeService:
    """Dispatch wire commands onto one simulator + Whisper bus."""

    def __init__(self, simulator: Optional[EthereumSimulator] = None,
                 bus: Optional[WhisperBus] = None) -> None:
        self.simulator = simulator or EthereumSimulator(
            config=SimulatorConfig(num_accounts=2, auto_mine=False))
        self.bus = bus or WhisperBus()
        self.shutdown_requested = asyncio.Event()

    def dispatch(self, kind: str, payload: dict[str, Any],
                 sender: str) -> dict[str, Any]:
        """Execute one verified command; the server's handler."""
        method = getattr(self, "_op_" + kind.replace(".", "_"), None)
        if method is None:
            raise NetError(f"unknown command kind {kind!r}")
        with obs.span(obs.names.SPAN_NET_NODE_SERVE, kind=kind):
            obs.inc(obs.names.METRIC_NET_COMMANDS)
            return method(payload)

    # -- bus.* ------------------------------------------------------------

    def _op_bus_post(self, p: dict[str, Any]) -> dict[str, Any]:
        envelope = self.bus.post(
            p["topic"], from_hex(p["payload"]),
            sender=p.get("sender", ""), ttl=p.get("ttl", 3_600))
        return {"posted_at": envelope.posted_at}

    def _op_bus_subscribe(self, p: dict[str, Any]) -> dict[str, Any]:
        self.bus.subscribe(p["subscriber"], p["topic"],
                           resubscribe=p.get("resubscribe", False))
        return {}

    def _op_bus_poll(self, p: dict[str, Any]) -> dict[str, Any]:
        envelopes = self.bus.poll(p["subscriber"], p["topic"])
        return {"envelopes": [_encode_envelope(env)
                              for env in envelopes]}

    def _op_bus_peek(self, p: dict[str, Any]) -> dict[str, Any]:
        envelopes = self.bus.peek_all(p["topic"])
        return {"envelopes": [_encode_envelope(env)
                              for env in envelopes]}

    def _op_bus_advance(self, p: dict[str, Any]) -> dict[str, Any]:
        self.bus.advance_time(p["seconds"])
        return {"now": self.bus.now}

    def _op_bus_now(self, p: dict[str, Any]) -> dict[str, Any]:
        return {"now": self.bus.now}

    def _op_bus_stats(self, p: dict[str, Any]) -> dict[str, Any]:
        return {"bytes_transferred": self.bus.bytes_transferred}

    # -- chain.* ----------------------------------------------------------

    def _op_chain_fund(self, p: dict[str, Any]) -> dict[str, Any]:
        state = self.simulator.chain.state
        state.add_balance(Address.from_hex(p["address"]), p["amount"])
        state.clear_journal()
        return {}

    def _op_chain_next_nonce(self,
                             p: dict[str, Any]) -> dict[str, Any]:
        address = Address.from_hex(p["address"])
        pending_same_sender = sum(
            1 for tx in self.simulator.chain.mempool.pending()
            if tx.sender == address)
        return {"nonce": (self.simulator.get_nonce(address)
                          + pending_same_sender)}

    def _op_chain_send_raw(self, p: dict[str, Any]) -> dict[str, Any]:
        transaction = Transaction.decode(from_hex(p["tx"]))
        tx_hash = self.simulator.chain.send_transaction(transaction)
        return {"hash": to_hex(tx_hash)}

    def _op_chain_mine(self, p: dict[str, Any]) -> dict[str, Any]:
        gas_limit = p.get("gas_limit")
        block = self.simulator.chain.mine_block(gas_limit=gas_limit)
        return {
            "number": block.number,
            "timestamp": block.timestamp,
            "tx_hashes": [to_hex(tx.hash)
                          for tx in block.transactions],
        }

    def _op_chain_pending(self, p: dict[str, Any]) -> dict[str, Any]:
        pending = self.simulator.pending()
        return {"count": len(pending)}

    def _op_chain_receipt(self, p: dict[str, Any]) -> dict[str, Any]:
        receipt = self.simulator.get_receipt(from_hex(p["hash"]))
        return {"receipt": _encode_receipt(receipt)}

    def _op_chain_latest(self, p: dict[str, Any]) -> dict[str, Any]:
        block = self.simulator.chain.latest_block
        return {"number": block.number, "timestamp": block.timestamp}

    def _op_chain_next_timestamp(self,
                                 p: dict[str, Any]) -> dict[str, Any]:
        return {"timestamp": self.simulator.chain.next_timestamp()}

    def _op_chain_advance_time_to(self,
                                  p: dict[str, Any]) -> dict[str, Any]:
        self.simulator.advance_time_to(p["timestamp"])
        return {}

    def _op_chain_call(self, p: dict[str, Any]) -> dict[str, Any]:
        data = self.simulator.call(
            Address.from_hex(p["to"]), from_hex(p.get("data", "")),
            value=p.get("value", 0))
        return {"data": to_hex(data)}

    def _op_chain_balance(self, p: dict[str, Any]) -> dict[str, Any]:
        return {"balance": self.simulator.get_balance(
            Address.from_hex(p["address"]))}

    def _op_chain_nonce(self, p: dict[str, Any]) -> dict[str, Any]:
        return {"nonce": self.simulator.get_nonce(
            Address.from_hex(p["address"]))}

    # -- node.* -----------------------------------------------------------

    def _op_node_ping(self, p: dict[str, Any]) -> dict[str, Any]:
        return {"pong": True}

    def _op_node_shutdown(self, p: dict[str, Any]) -> dict[str, Any]:
        self.shutdown_requested.set()
        return {}


async def _serve(service: NodeService, host: str, port: int) -> int:
    server = ChannelServer(service.dispatch, host=host, port=port)
    await server.start()
    # The flush makes the port line immediately visible to a parent
    # process parsing our stdout to discover where we bound.
    print(f"repro-node listening on {host}:{server.port}",
          flush=True)
    serve_task = asyncio.ensure_future(server.serve_forever())
    await service.shutdown_requested.wait()
    serve_task.cancel()
    try:
        await serve_task
    except asyncio.CancelledError:
        pass
    await server.stop()
    print(f"repro-node served {server.commands} commands "
          f"({server.redeliveries} redeliveries)", flush=True)
    return 0


def run_node(host: str = "127.0.0.1", port: int = 0,
             service: Optional[NodeService] = None) -> int:
    """Run a chain node until a ``node.shutdown`` command arrives.

    The event loop runs on the calling thread, so every command —
    including telemetry emitted inside handlers — executes on the
    main thread of the node process.
    """
    service = service or NodeService()
    try:
        return asyncio.run(_serve(service, host, port))
    except KeyboardInterrupt:
        return 0
    except ReproError as exc:
        print(f"repro-node error: {exc}", flush=True)
        return 1
