"""The remote participant process: keys here, signatures over the bus.

A :class:`ParticipantNode` owns the private keys for one or more fleet
*roles* (e.g. every session's ``bob``) and serves the Deploy/Sign
stage over the node's shared Whisper bus: the engine-side protocol
posts a sign-request naming the session topic, the off-chain bytecode
and the addresses it is waiting on; this process signs with the keys
it holds and posts each ``(address ‖ signature)`` back to the session
topic.  Keys are derived from the same deterministic fleet seeds the
engine uses (``fleet-{app}-{index}-{role}``), so both sides agree on
the addresses without ever moving a key across the wire.

Requests are read with ``peek_all`` and deduplicated by envelope
hash, so a crash-restarted participant resumes cleanly from the
still-unexpired backlog — the bootstrap path the bus API documents.
"""

from __future__ import annotations

import time

from repro.core.protocol import SIGN_REQUEST_TOPIC
from repro.crypto import rlp
from repro.crypto.keys import PrivateKey
from repro.net.client import ChannelClient
from repro.net.remote import RemoteWhisperTransport
from repro.net.wire import NetError
from repro.offchain.signing import sign_bytecode


class ParticipantNode:
    """Serve one or more roles' signatures for a networked fleet."""

    def __init__(self, client: ChannelClient, app: str,
                 sessions: int, roles: list[str]) -> None:
        self._bus = RemoteWhisperTransport(client)
        self.roles = list(roles)
        self.name = f"participant:{'+'.join(self.roles)}"
        #: address bytes -> signing key, for every session x role.
        self._keys: dict[bytes, PrivateKey] = {}
        for role in self.roles:
            for index in range(sessions):
                key = PrivateKey.from_seed(
                    f"fleet-{app}-{index}-{role}")
                self._keys[key.address.value] = key
        self.signed = 0
        self._handled: set[bytes] = set()

    def serve(self, expect: int, idle_timeout: float = 30.0,
              poll_interval: float = 0.01) -> int:
        """Sign until ``expect`` signatures are posted; returns count.

        ``idle_timeout`` bounds the wait for the *next* request —
        progress resets it — so a wedged engine fails this process
        loudly instead of hanging it forever.
        """
        deadline = time.monotonic() + idle_timeout
        while self.signed < expect:
            if self._drain() > 0:
                deadline = time.monotonic() + idle_timeout
                continue
            if time.monotonic() > deadline:
                raise NetError(
                    f"{self.name} idle for {idle_timeout:.0f}s with "
                    f"{self.signed}/{expect} signatures served")
            time.sleep(poll_interval)
        return self.signed

    def _drain(self) -> int:
        """Handle every unseen sign-request once; returns new posts."""
        posted = 0
        for envelope in self._bus.peek_all(SIGN_REQUEST_TOPIC):
            marker = envelope.envelope_hash
            if marker in self._handled:
                continue
            self._handled.add(marker)
            posted += self._answer(envelope.payload)
        return posted

    def _answer(self, request: bytes) -> int:
        """Sign one request for every address we hold a key for."""
        decoded = rlp.decode(request)
        topic = decoded[0].decode("utf-8")
        bytecode = decoded[1]
        posted = 0
        for address_raw in decoded[2:]:
            key = self._keys.get(bytes(address_raw))
            if key is None:
                continue  # another participant process's role
            signature = sign_bytecode(key, bytecode)
            payload = rlp.encode(
                [key.address.value, signature.to_bytes()])
            self._bus.post(topic, payload, sender=self.name)
            self.signed += 1
            posted += 1
        return posted
