"""The asyncio channel server: signed commands in, one response each.

:class:`ChannelServer` listens with ``asyncio.start_server``, reads
length-prefixed JSON frames, verifies each command's ECDSA signature,
and pushes it through a :class:`~repro.net.channel.SequenceGate` so
every ``(channel, seq)`` executes exactly once no matter how many
times the wire delivers it.  The supplied handler is a plain
synchronous callable ``(kind, payload, sender) -> dict``; because all
connections share one event loop, handler calls are naturally
serialized — the simulator behind it needs no locking.

:func:`ChannelServer.start_in_thread` runs the loop in a daemon
thread and returns a :class:`ServerHandle` for synchronous callers
(tests, the in-process side of a mixed deployment); a dedicated node
process instead drives :meth:`serve_forever` on its main thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Optional

from repro import obs
from repro.net.channel import SequenceGate
from repro.net.wire import (
    Command,
    NetError,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
)

Handler = Callable[[str, dict[str, Any], str], dict[str, Any]]


class ChannelServer:
    """Serve signed protocol commands over localhost TCP."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0,
                 require_signature: bool = True) -> None:
        self._handler = handler
        self._host = host
        self._requested_port = port
        self._require_signature = require_signature
        self._gate = SequenceGate()
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: int = 0

    @property
    def commands(self) -> int:
        """Commands executed fresh (first deliveries)."""
        return self._gate.commands

    @property
    def redeliveries(self) -> int:
        """Duplicate deliveries answered from the dedup window."""
        return self._gate.redeliveries

    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._serve_client, self._host, self._requested_port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener (open connections drop on loop exit)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except (asyncio.IncompleteReadError,
                        ConnectionResetError):
                    break
                response = self._handle_frame(frame)
                writer.write(encode_frame(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    def _handle_frame(self, frame: dict[str, Any]) -> dict[str, Any]:
        try:
            command = Command.from_wire(frame)
        except NetError as exc:
            return error_response("", -1, f"NetError: {exc}")
        try:
            if self._require_signature:
                command.verify()
            replayed = self._gate.redeliveries
            result = self._gate.admit(command, self._execute)
            if self._gate.redeliveries > replayed:
                obs.inc(obs.names.METRIC_NET_REDELIVERIES)
        except Exception as exc:  # noqa: BLE001 - becomes a wire error
            return error_response(
                command.channel, command.seq,
                f"{type(exc).__name__}: {exc}")
        return ok_response(command.channel, command.seq, result)

    def _execute(self, command: Command) -> dict[str, Any]:
        return self._handler(command.kind, command.payload,
                             command.sender)

    def start_in_thread(self) -> "ServerHandle":
        """Run this server on a fresh loop in a daemon thread.

        Blocks until the listener is bound, then returns a
        :class:`ServerHandle` exposing the port and a ``stop()``.
        """
        loop = asyncio.new_event_loop()
        bound = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            bound.set()
            loop.run_forever()
            # Drain cancelled tasks so the loop closes quietly.
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        thread = threading.Thread(target=_run, daemon=True,
                                  name="repro-net-server")
        thread.start()
        if not bound.wait(timeout=10.0):
            raise NetError("server failed to bind within 10s")
        return ServerHandle(server=self, loop=loop, thread=thread)


class ServerHandle:
    """A running threaded server: its port, stats and shutdown."""

    def __init__(self, server: ChannelServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self._server.port

    @property
    def commands(self) -> int:
        """Commands executed fresh by the underlying server."""
        return self._server.commands

    @property
    def redeliveries(self) -> int:
        """Duplicates answered from the dedup window."""
        return self._server.redeliveries

    def stop(self) -> None:
        """Close the listener and stop the loop thread."""
        async def _shutdown() -> None:
            await self._server.stop()

        future = asyncio.run_coroutine_threadsafe(_shutdown(),
                                                  self._loop)
        try:
            future.result(timeout=5.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
