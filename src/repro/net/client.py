"""The synchronous channel client: retries, backoff, idempotent seqs.

:class:`ChannelClient` gives blocking callers (the protocol, the
engine, participant loops) a plain ``call(kind, payload) -> dict``
over the wire.  Internally it owns a private event loop on a daemon
thread; each call allocates the channel's next sequence number, signs
the command, and retransmits it with exponential backoff until a
matching response arrives — the *same* sequence number every time, so
the server's dedup window turns retries into acks instead of
double-executions.

A :class:`~repro.net.faults.FaultPolicy` can be installed to corrupt
the delivery schedule on purpose (drop/duplicate/delay/reorder); the
retry loop must absorb every fault with latency only.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Optional

from repro import obs
from repro.crypto.keys import PrivateKey
from repro.net.faults import FaultPolicy
from repro.net.wire import (
    Command,
    NetError,
    encode_frame,
    read_frame,
)

#: First backoff sleep; doubles per retry up to :data:`BACKOFF_CAP`.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0
#: Per-attempt response timeout (seconds).
DEFAULT_TIMEOUT = 2.0
#: Retransmissions before a request is abandoned.
DEFAULT_MAX_RETRIES = 10

_CHANNEL_LOCK = threading.Lock()
_CHANNEL_COUNTER = 0


def _next_channel_id() -> int:
    global _CHANNEL_COUNTER
    with _CHANNEL_LOCK:
        _CHANNEL_COUNTER += 1
        return _CHANNEL_COUNTER


class _ResponseDropped(Exception):
    """Internal: the fault policy discarded an arrived response."""


class ChannelClient:
    """A signed, sequenced, retrying connection to one server."""

    def __init__(self, host: str, port: int, key: PrivateKey,
                 channel: str = "",
                 timeout: float = DEFAULT_TIMEOUT,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 faults: Optional[FaultPolicy] = None) -> None:
        self._host = host
        self._port = port
        self._key = key
        self._channel = channel or (
            f"{key.address.hex}/{_next_channel_id()}")
        self._timeout = timeout
        self._max_retries = max_retries
        self._faults = faults
        self._seq = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self.retries = 0
        self.requests = 0
        #: Round-trip seconds per completed request (for percentiles).
        self.rtts: list[float] = []
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, daemon=True,
            name=f"repro-net-client-{self._channel}")
        self._thread.start()

    @property
    def channel(self) -> str:
        """This client's channel name (its sequence-number space)."""
        return self._channel

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
        self._loop.close()

    def call(self, kind: str, payload: dict[str, Any] | None = None,
             ) -> dict[str, Any]:
        """Send one command and block for its result.

        Retries transparently on timeout or disconnect, re-sending
        the same sequence number; raises :class:`NetError` when the
        server reports an error or retries are exhausted.
        """
        command = Command(channel=self._channel, seq=self._seq,
                          kind=kind,
                          payload=payload or {}).signed(self._key)
        self._seq += 1
        started = time.monotonic()
        retries_before = self.retries
        with obs.span(obs.names.SPAN_NET_REQUEST, kind=kind):
            future = asyncio.run_coroutine_threadsafe(
                self._request(command), self._loop)
            result = future.result()
        elapsed = time.monotonic() - started
        self.requests += 1
        self.rtts.append(elapsed)
        obs.inc(obs.names.METRIC_NET_REQUESTS)
        retried = self.retries - retries_before
        if retried:
            obs.inc(obs.names.METRIC_NET_RETRIES, retried)
        obs.observe(obs.names.METRIC_NET_RTT, elapsed)
        return result

    def close(self) -> None:
        """Tear down the connection and stop the loop thread."""
        async def _close() -> None:
            await self._drop_connection()

        future = asyncio.run_coroutine_threadsafe(_close(),
                                                  self._loop)
        try:
            future.result(timeout=5.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Loop-thread internals
    # ------------------------------------------------------------------

    async def _request(self, command: Command) -> dict[str, Any]:
        frame = encode_frame(command.to_wire())
        delay = BACKOFF_BASE
        last_error: Exception | None = None
        for attempt in range(self._max_retries + 1):
            if attempt:
                self.retries += 1
                await asyncio.sleep(delay)
                delay = min(delay * 2, BACKOFF_CAP)
            try:
                await self._send_frame(frame)
                response = await self._await_response(command)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError, OSError,
                    _ResponseDropped) as exc:
                last_error = exc
                if not isinstance(exc, (_ResponseDropped,
                                        asyncio.TimeoutError)):
                    await self._drop_connection()
                continue
            if response.get("ok"):
                return response.get("result", {})
            raise NetError(response.get("error", "unknown error"))
        raise NetError(
            f"request {command.kind!r} seq={command.seq} abandoned "
            f"after {self._max_retries} retries "
            f"(last error: {last_error!r})")

    async def _send_frame(self, frame: bytes) -> None:
        writer = await self._ensure_connection()
        faults = self._faults
        if faults is not None and faults.should_drop_request():
            return  # simulated loss: nothing hits the wire
        writer.write(frame)
        if faults is not None and faults.should_duplicate_request():
            if faults.should_delay_duplicate():
                # Reordering: the duplicate lands after newer traffic.
                self._loop.call_later(
                    faults.delay_seconds, self._write_late, writer,
                    frame)
            else:
                writer.write(frame)
        await writer.drain()

    def _write_late(self, writer: asyncio.StreamWriter,
                    frame: bytes) -> None:
        try:
            if not writer.is_closing():
                writer.write(frame)
        except (ConnectionError, OSError):
            pass  # the stale duplicate is allowed to die with the pipe

    async def _await_response(self,
                              command: Command) -> dict[str, Any]:
        assert self._reader is not None
        deadline = self._loop.time() + self._timeout
        while True:
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError()
            response = await asyncio.wait_for(
                read_frame(self._reader), timeout=remaining)
            if (response.get("channel") == command.channel
                    and response.get("seq") == command.seq):
                faults = self._faults
                if (faults is not None
                        and faults.should_drop_response()):
                    # Lost ack: force a retransmission of this seq.
                    raise _ResponseDropped()
                return response
            # A response to an earlier seq (e.g. from a delayed
            # duplicate) — stale, discard and keep reading.

    async def _ensure_connection(self) -> asyncio.StreamWriter:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port)
        return self._writer

    async def _drop_connection(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
