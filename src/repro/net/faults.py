"""Deterministic fault injection for the wire layer.

A :class:`FaultPolicy` sits inside the client's send/receive path and
misbehaves on purpose: dropping request frames before they are sent,
duplicating them (immediately or after a delay, which reorders them
behind newer traffic), and discarding responses after they arrive
(simulating a lost ack).  Every decision comes from a seeded
``random.Random``, so a lossy run is exactly reproducible.

The point of the exercise: under any of these faults the retry loop
plus the server's :class:`~repro.net.channel.SequenceGate` must leave
session outcomes and gas ledgers bit-identical to a clean run — the
faults cost latency, never correctness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class FaultPolicy:
    """Seeded fault probabilities applied per request attempt."""

    #: Probability a request frame is silently dropped before writing.
    drop_request: float = 0.0
    #: Probability a request frame is written twice back-to-back.
    duplicate_request: float = 0.0
    #: Probability the duplicate is *delayed* instead of immediate, so
    #: it arrives after newer commands (wire reordering; exercises the
    #: gate's behind-the-cursor redelivery path).
    delay_duplicate: float = 0.0
    #: Seconds a delayed duplicate waits before being written.
    delay_seconds: float = 0.02
    #: Probability an arrived response is discarded (lost ack: the
    #: client times out and retransmits the same ``seq``).
    drop_response: float = 0.0
    #: RNG seed — same seed, same fault schedule.
    seed: int = 0

    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def should_drop_request(self) -> bool:
        """Decide whether to swallow the outgoing frame."""
        return self._roll(self.drop_request)

    def should_duplicate_request(self) -> bool:
        """Decide whether to send the frame twice."""
        return self._roll(self.duplicate_request)

    def should_delay_duplicate(self) -> bool:
        """Decide whether the duplicate is delayed (reordered)."""
        return self._roll(self.delay_duplicate)

    def should_drop_response(self) -> bool:
        """Decide whether to discard the received response."""
        return self._roll(self.drop_response)

    def _roll(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return self._rng.random() < probability


#: The default lossy profile used by tests and the adversary sweep:
#: every fault class enabled hard enough to fire many times per fleet.
LOSSY = dict(drop_request=0.15, duplicate_request=0.2,
             delay_duplicate=0.5, drop_response=0.1, seed=1_337)
