"""Frame and command encoding for the off-chain wire protocol.

The wire format is deliberately simple: every frame is a 4-byte
big-endian length prefix followed by that many bytes of UTF-8 JSON.
A frame carries either a :class:`Command` (request direction) or a
response object ``{"channel", "seq", "ok", "result" | "error"}``.

Commands are *signed*: the sender keccak-hashes the canonical JSON
encoding of ``[channel, seq, kind, payload, sender]`` and attaches a
recoverable ECDSA signature.  The receiver recovers the signing
address and rejects commands whose recovered address does not match
the claimed ``sender`` — transport-level authentication with the same
primitives the protocol already uses for signed contract copies.

Binary values (bytecode, RLP blobs, transaction encodings) travel as
hex strings inside ``payload``; helpers :func:`to_hex` / :func:`from_hex`
keep call sites terse.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.crypto import keccak256
from repro.crypto.ecdsa import Signature
from repro.crypto.keys import Address, PrivateKey, recover_address
from repro.exceptions import ReproError

#: Upper bound on a single frame; anything larger is a protocol error
#: (the largest legitimate frame is a contract deployment, well under
#: this).
MAX_FRAME = 4 * 1024 * 1024

_LENGTH_BYTES = 4


class NetError(ReproError, RuntimeError):
    """Raised for wire-protocol violations and exhausted retries."""


def to_hex(data: bytes) -> str:
    """Encode bytes for transport inside a JSON payload."""
    return data.hex()


def from_hex(text: str) -> bytes:
    """Decode a payload hex string back into bytes."""
    return bytes.fromhex(text)


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Serialize one JSON object into a length-prefixed frame."""
    body = json.dumps(obj, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise NetError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return len(body).to_bytes(_LENGTH_BYTES, "big") + body


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any]:
    """Read one length-prefixed JSON frame from a stream.

    Raises :class:`asyncio.IncompleteReadError` on EOF mid-frame and
    :class:`NetError` on an oversized or malformed frame.
    """
    header = await reader.readexactly(_LENGTH_BYTES)
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise NetError(
            f"incoming frame of {length} bytes exceeds "
            f"MAX_FRAME={MAX_FRAME}")
    body = await reader.readexactly(length)
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise NetError("frame payload must be a JSON object")
    return obj


@dataclass(frozen=True)
class Command:
    """One signed protocol command addressed to a channel.

    ``channel`` scopes the sequence-number space (one logical sender
    connection); ``seq`` is that channel's monotonic counter; ``kind``
    names the operation (``bus.post``, ``chain.send_raw``, ...);
    ``payload`` carries JSON-native arguments.  ``sender`` and
    ``signature`` authenticate the command.
    """

    channel: str
    seq: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    sender: str = ""
    signature: str = ""

    def signing_digest(self) -> bytes:
        """The keccak digest the sender signs (signature excluded)."""
        canonical = json.dumps(
            [self.channel, self.seq, self.kind, self.payload,
             self.sender],
            separators=(",", ":"), sort_keys=True,
        ).encode("utf-8")
        return keccak256(canonical)

    def signed(self, key: PrivateKey) -> "Command":
        """A copy of this command signed by ``key``.

        The claimed ``sender`` is set to the key's address, so the
        receiver's recover-and-compare check binds the two.
        """
        base = Command(channel=self.channel, seq=self.seq,
                       kind=self.kind, payload=self.payload,
                       sender=key.address.hex)
        signature = key.sign(base.signing_digest())
        return Command(channel=base.channel, seq=base.seq,
                       kind=base.kind, payload=base.payload,
                       sender=base.sender,
                       signature=to_hex(signature.to_bytes()))

    def verify(self) -> Address:
        """Recover and check the signer; returns the sender address.

        Raises :class:`NetError` when the signature is absent,
        unparseable, or recovers to a different address than the
        claimed ``sender``.
        """
        if not self.signature:
            raise NetError(
                f"unsigned command {self.kind!r} on {self.channel!r}")
        try:
            signature = Signature.from_bytes(from_hex(self.signature))
            recovered = recover_address(self.signing_digest(),
                                        signature)
        except (ReproError, ValueError) as exc:
            raise NetError(f"unverifiable signature: {exc}") from exc
        if recovered.hex != self.sender:
            raise NetError(
                f"command signer {recovered.hex} does not match "
                f"claimed sender {self.sender}")
        return recovered

    def to_wire(self) -> dict[str, Any]:
        """The JSON object sent on the wire."""
        return {
            "channel": self.channel,
            "seq": self.seq,
            "kind": self.kind,
            "payload": self.payload,
            "sender": self.sender,
            "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, obj: dict[str, Any]) -> "Command":
        """Parse a wire object; raises :class:`NetError` when malformed."""
        try:
            channel = obj["channel"]
            seq = obj["seq"]
            kind = obj["kind"]
            payload = obj.get("payload", {})
            sender = obj.get("sender", "")
            signature = obj.get("signature", "")
        except (KeyError, TypeError) as exc:
            raise NetError(f"malformed command object: {exc}") from exc
        if (not isinstance(channel, str) or not isinstance(seq, int)
                or not isinstance(kind, str)
                or not isinstance(payload, dict)):
            raise NetError("malformed command field types")
        return cls(channel=channel, seq=seq, kind=kind,
                   payload=payload, sender=sender, signature=signature)


def ok_response(channel: str, seq: int,
                result: dict[str, Any]) -> dict[str, Any]:
    """Build a success response frame object."""
    return {"channel": channel, "seq": seq, "ok": True,
            "result": result}


def error_response(channel: str, seq: int,
                   message: str) -> dict[str, Any]:
    """Build an error response frame object."""
    return {"channel": channel, "seq": seq, "ok": False,
            "error": message}
