"""Per-channel command sequencing with an idempotency dedup window.

Each client channel numbers its commands with a monotonic ``seq``.
The server-side :class:`SequenceGate` executes each ``(channel, seq)``
pair exactly once and remembers the response it produced: a retried
command (same pair, delivered again because an ack was lost or the
wire duplicated the frame) is answered from the window — *acked, not
re-executed*.  This is what makes at-least-once delivery safe for
non-idempotent commands like ``chain.send_raw`` or ``bus.post``.

The window is bounded (:data:`DEDUP_WINDOW`): responses older than the
window are forgotten, and a delivery that far behind the channel's
cursor is rejected as unrecoverably stale rather than re-executed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.net.wire import Command, NetError

#: Cached responses kept per gate; retries land long before a client
#: can issue this many newer commands on the same channel.
DEDUP_WINDOW = 1024


class SequenceGate:
    """Exactly-once execution over at-least-once delivery.

    ``execute`` is the operation to guard: it receives the command and
    returns the JSON-native result object.  The gate decides whether
    to call it (first delivery), replay the cached response
    (redelivery), or reject (stale beyond the window / seq regression
    for a never-seen number).
    """

    def __init__(self, window: int = DEDUP_WINDOW) -> None:
        self._window = window
        self._expected: dict[str, int] = {}
        self._responses: OrderedDict[tuple[str, int],
                                     dict[str, Any]] = OrderedDict()
        self.commands = 0
        self.redeliveries = 0

    def admit(self, command: Command,
              execute: Callable[[Command], dict[str, Any]],
              ) -> dict[str, Any]:
        """Run a delivered command through the gate.

        Returns the result object to send back — freshly computed for
        a first delivery, replayed from the window for a retry.
        Raises :class:`NetError` for sequence numbers that can neither
        be executed nor answered from the window.
        """
        key = (command.channel, command.seq)
        cached = self._responses.get(key)
        if cached is not None:
            self.redeliveries += 1
            return cached
        expected = self._expected.get(command.channel, 0)
        if command.seq < expected:
            # Seen before but already evicted from the window: the
            # client must have moved on long ago; re-executing now
            # would double-apply the command.
            raise NetError(
                f"stale seq {command.seq} on {command.channel!r} "
                f"(expected >= {expected}, beyond dedup window)")
        result = execute(command)
        self.commands += 1
        self._expected[command.channel] = command.seq + 1
        self._responses[key] = result
        while len(self._responses) > self._window:
            self._responses.popitem(last=False)
        return result

    def expected(self, channel: str) -> int:
        """The next sequence number this gate will execute fresh."""
        return self._expected.get(channel, 0)
