"""The EVM instruction set (Constantinople subset).

Each opcode records its mnemonic, byte value, stack arity and the flat
portion of its gas cost; dynamic costs (memory expansion, copies,
storage) are charged by the interpreter.  The table covers every
instruction the Solis compiler emits plus the general-purpose ones a
hand-written assembly program may use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evm import gas


@dataclass(frozen=True)
class Opcode:
    """Static description of one EVM instruction."""

    mnemonic: str
    value: int
    pops: int
    pushes: int
    base_gas: int

    @property
    def immediate_size(self) -> int:
        """Bytes of immediate data following the opcode (PUSHn only)."""
        if PUSH1 <= self.value <= PUSH32:
            return self.value - PUSH1 + 1
        return 0


# Byte values -------------------------------------------------------------
STOP = 0x00
ADD = 0x01
MUL = 0x02
SUB = 0x03
DIV = 0x04
SDIV = 0x05
MOD = 0x06
SMOD = 0x07
ADDMOD = 0x08
MULMOD = 0x09
EXP = 0x0A
SIGNEXTEND = 0x0B
LT = 0x10
GT = 0x11
SLT = 0x12
SGT = 0x13
EQ = 0x14
ISZERO = 0x15
AND = 0x16
OR = 0x17
XOR = 0x18
NOT = 0x19
BYTE = 0x1A
SHL = 0x1B
SHR = 0x1C
SAR = 0x1D
SHA3 = 0x20
ADDRESS = 0x30
BALANCE = 0x31
ORIGIN = 0x32
CALLER = 0x33
CALLVALUE = 0x34
CALLDATALOAD = 0x35
CALLDATASIZE = 0x36
CALLDATACOPY = 0x37
CODESIZE = 0x38
CODECOPY = 0x39
GASPRICE = 0x3A
EXTCODESIZE = 0x3B
EXTCODECOPY = 0x3C
RETURNDATASIZE = 0x3D
RETURNDATACOPY = 0x3E
BLOCKHASH = 0x40
COINBASE = 0x41
TIMESTAMP = 0x42
NUMBER = 0x43
DIFFICULTY = 0x44
GASLIMIT = 0x45
POP = 0x50
MLOAD = 0x51
MSTORE = 0x52
MSTORE8 = 0x53
SLOAD = 0x54
SSTORE = 0x55
JUMP = 0x56
JUMPI = 0x57
PC = 0x58
MSIZE = 0x59
GAS = 0x5A
JUMPDEST = 0x5B
PUSH1 = 0x60
PUSH32 = 0x7F
DUP1 = 0x80
DUP16 = 0x8F
SWAP1 = 0x90
SWAP16 = 0x9F
LOG0 = 0xA0
LOG4 = 0xA4
CREATE = 0xF0
CALL = 0xF1
CALLCODE = 0xF2
RETURN = 0xF3
DELEGATECALL = 0xF4
STATICCALL = 0xFA
REVERT = 0xFD
INVALID = 0xFE
SELFDESTRUCT = 0xFF


def _table() -> dict[int, Opcode]:
    specs = [
        ("STOP", STOP, 0, 0, gas.G_ZERO),
        ("ADD", ADD, 2, 1, gas.G_VERYLOW),
        ("MUL", MUL, 2, 1, gas.G_LOW),
        ("SUB", SUB, 2, 1, gas.G_VERYLOW),
        ("DIV", DIV, 2, 1, gas.G_LOW),
        ("SDIV", SDIV, 2, 1, gas.G_LOW),
        ("MOD", MOD, 2, 1, gas.G_LOW),
        ("SMOD", SMOD, 2, 1, gas.G_LOW),
        ("ADDMOD", ADDMOD, 3, 1, gas.G_MID),
        ("MULMOD", MULMOD, 3, 1, gas.G_MID),
        ("EXP", EXP, 2, 1, gas.G_EXP),
        ("SIGNEXTEND", SIGNEXTEND, 2, 1, gas.G_LOW),
        ("LT", LT, 2, 1, gas.G_VERYLOW),
        ("GT", GT, 2, 1, gas.G_VERYLOW),
        ("SLT", SLT, 2, 1, gas.G_VERYLOW),
        ("SGT", SGT, 2, 1, gas.G_VERYLOW),
        ("EQ", EQ, 2, 1, gas.G_VERYLOW),
        ("ISZERO", ISZERO, 1, 1, gas.G_VERYLOW),
        ("AND", AND, 2, 1, gas.G_VERYLOW),
        ("OR", OR, 2, 1, gas.G_VERYLOW),
        ("XOR", XOR, 2, 1, gas.G_VERYLOW),
        ("NOT", NOT, 1, 1, gas.G_VERYLOW),
        ("BYTE", BYTE, 2, 1, gas.G_VERYLOW),
        ("SHL", SHL, 2, 1, gas.G_VERYLOW),
        ("SHR", SHR, 2, 1, gas.G_VERYLOW),
        ("SAR", SAR, 2, 1, gas.G_VERYLOW),
        ("SHA3", SHA3, 2, 1, gas.G_SHA3),
        ("ADDRESS", ADDRESS, 0, 1, gas.G_BASE),
        ("BALANCE", BALANCE, 1, 1, gas.G_BALANCE),
        ("ORIGIN", ORIGIN, 0, 1, gas.G_BASE),
        ("CALLER", CALLER, 0, 1, gas.G_BASE),
        ("CALLVALUE", CALLVALUE, 0, 1, gas.G_BASE),
        ("CALLDATALOAD", CALLDATALOAD, 1, 1, gas.G_VERYLOW),
        ("CALLDATASIZE", CALLDATASIZE, 0, 1, gas.G_BASE),
        ("CALLDATACOPY", CALLDATACOPY, 3, 0, gas.G_VERYLOW),
        ("CODESIZE", CODESIZE, 0, 1, gas.G_BASE),
        ("CODECOPY", CODECOPY, 3, 0, gas.G_VERYLOW),
        ("GASPRICE", GASPRICE, 0, 1, gas.G_BASE),
        ("EXTCODESIZE", EXTCODESIZE, 1, 1, gas.G_EXTCODE),
        ("EXTCODECOPY", EXTCODECOPY, 4, 0, gas.G_EXTCODE),
        ("RETURNDATASIZE", RETURNDATASIZE, 0, 1, gas.G_BASE),
        ("RETURNDATACOPY", RETURNDATACOPY, 3, 0, gas.G_VERYLOW),
        ("BLOCKHASH", BLOCKHASH, 1, 1, 20),
        ("COINBASE", COINBASE, 0, 1, gas.G_BASE),
        ("TIMESTAMP", TIMESTAMP, 0, 1, gas.G_BASE),
        ("NUMBER", NUMBER, 0, 1, gas.G_BASE),
        ("DIFFICULTY", DIFFICULTY, 0, 1, gas.G_BASE),
        ("GASLIMIT", GASLIMIT, 0, 1, gas.G_BASE),
        ("POP", POP, 1, 0, gas.G_BASE),
        ("MLOAD", MLOAD, 1, 1, gas.G_VERYLOW),
        ("MSTORE", MSTORE, 2, 0, gas.G_VERYLOW),
        ("MSTORE8", MSTORE8, 2, 0, gas.G_VERYLOW),
        ("SLOAD", SLOAD, 1, 1, gas.G_SLOAD),
        ("SSTORE", SSTORE, 2, 0, 0),
        ("JUMP", JUMP, 1, 0, gas.G_MID),
        ("JUMPI", JUMPI, 2, 0, gas.G_HIGH),
        ("PC", PC, 0, 1, gas.G_BASE),
        ("MSIZE", MSIZE, 0, 1, gas.G_BASE),
        ("GAS", GAS, 0, 1, gas.G_BASE),
        ("JUMPDEST", JUMPDEST, 0, 0, gas.G_JUMPDEST),
        ("CREATE", CREATE, 3, 1, gas.G_CREATE),
        ("CALL", CALL, 7, 1, gas.G_CALL),
        ("CALLCODE", CALLCODE, 7, 1, gas.G_CALL),
        ("RETURN", RETURN, 2, 0, gas.G_ZERO),
        ("DELEGATECALL", DELEGATECALL, 6, 1, gas.G_CALL),
        ("STATICCALL", STATICCALL, 6, 1, gas.G_CALL),
        ("REVERT", REVERT, 2, 0, gas.G_ZERO),
        ("INVALID", INVALID, 0, 0, gas.G_ZERO),
        ("SELFDESTRUCT", SELFDESTRUCT, 1, 0, gas.G_SELFDESTRUCT),
    ]
    table = {value: Opcode(name, value, pops, pushes, cost)
             for name, value, pops, pushes, cost in specs}
    for offset in range(32):
        value = PUSH1 + offset
        table[value] = Opcode(f"PUSH{offset + 1}", value, 0, 1, gas.G_VERYLOW)
    for offset in range(16):
        value = DUP1 + offset
        table[value] = Opcode(f"DUP{offset + 1}", value, offset + 1, offset + 2,
                              gas.G_VERYLOW)
        value = SWAP1 + offset
        table[value] = Opcode(f"SWAP{offset + 1}", value, offset + 2, offset + 2,
                              gas.G_VERYLOW)
    for topics in range(5):
        value = LOG0 + topics
        table[value] = Opcode(f"LOG{topics}", value, 2 + topics, 0,
                              gas.G_LOG + gas.G_LOG_TOPIC * topics)
    return table


OPCODES: dict[int, Opcode] = _table()
MNEMONIC_TO_OPCODE: dict[str, Opcode] = {op.mnemonic: op for op in OPCODES.values()}


def by_mnemonic(name: str) -> Opcode:
    """Look up an opcode by mnemonic (case-insensitive)."""
    try:
        return MNEMONIC_TO_OPCODE[name.upper()]
    except KeyError:
        raise KeyError(f"unknown EVM mnemonic {name!r}") from None
