"""Static bytecode analysis, cached per unique code blob.

Before PR 3 every :class:`~repro.evm.vm._Frame` re-scanned its bytecode
to build the valid-JUMPDEST set, and every PUSH re-sliced its immediate
out of the code at run time.  Both are pure functions of the code bytes,
so this module computes them once per *unique* bytecode and serves every
subsequent frame from a bounded LRU.

The cache is keyed by the code bytes themselves (content addressing),
which makes aliasing impossible by construction: a CREATE's init code
and the runtime code it returns are different byte strings and therefore
different cache entries, even though both execute "at" the same address.
"""

from __future__ import annotations

from functools import lru_cache

from repro.evm import opcodes

_JUMPDEST = opcodes.JUMPDEST
_PUSH1 = opcodes.PUSH1
_PUSH32 = opcodes.PUSH32


class CodeAnalysis:
    """Static facts about one bytecode blob, plus its JIT residency.

    ``jump_dests`` is the set of program counters holding a JUMPDEST
    that is *not* inside PUSH immediate data.  ``push_info`` maps the
    pc of every PUSH instruction to its decoded ``(value, next_pc)``
    pair so the interpreter never slices code on the hot path.

    The two mutable slots belong to :mod:`repro.evm.jit`:
    ``exec_count`` counts untraced executions toward the compile
    warm-up threshold, and ``jit_program`` caches the compiled
    :class:`~repro.evm.jit.CompiledProgram` (or the module's failure
    sentinel) once the blob goes hot.  Keeping them here means the
    transpiler cache shares this LRU's content-keyed identity and
    eviction policy for free.
    """

    __slots__ = ("jump_dests", "push_info", "exec_count", "jit_program")

    def __init__(self, jump_dests: frozenset[int],
                 push_info: dict[int, tuple[int, int]]) -> None:
        self.jump_dests = jump_dests
        self.push_info = push_info
        self.exec_count = 0
        self.jit_program = None


@lru_cache(maxsize=512)
def analyze_code(code: bytes) -> CodeAnalysis:
    """Return the (cached) :class:`CodeAnalysis` for ``code``.

    The scan mirrors the yellow-paper JUMPDEST validity rule: a byte
    only counts as a destination when reached by linear sweep, so bytes
    inside PUSH immediates never qualify.  PUSH immediates that run off
    the end of the code are zero-padded, exactly as the EVM reads them.
    """
    dests = set()
    push_info: dict[int, tuple[int, int]] = {}
    pc = 0
    length = len(code)
    while pc < length:
        op = code[pc]
        if op == _JUMPDEST:
            dests.add(pc)
        elif _PUSH1 <= op <= _PUSH32:
            width = op - _PUSH1 + 1
            start = pc + 1
            raw = code[start:start + width]
            if len(raw) < width:
                raw = raw.ljust(width, b"\x00")
            push_info[pc] = (int.from_bytes(raw, "big"), start + width)
            pc += width
        pc += 1
    return CodeAnalysis(frozenset(dests), push_info)


def clear_analysis_cache() -> None:
    """Drop every cached analysis (benchmarks measure cold paths)."""
    analyze_code.cache_clear()


def analysis_cache_info():
    """Expose the LRU statistics (hits/misses) for tests and telemetry."""
    return analyze_code.cache_info()
