"""The EVM operand stack: 256-bit words, 1024 items deep."""

from __future__ import annotations

from repro.evm.exceptions import StackOverflow, StackUnderflow

UINT256_MAX = (1 << 256) - 1
STACK_LIMIT = 1024


class Stack:
    """A bounded LIFO of 256-bit unsigned integers."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def push(self, value: int) -> None:
        """Push a word; values are masked to 256 bits on entry."""
        if len(self._items) >= STACK_LIMIT:
            raise StackOverflow(f"stack limit of {STACK_LIMIT} exceeded")
        self._items.append(value & UINT256_MAX)

    def pop(self) -> int:
        """Pop the top word."""
        try:
            return self._items.pop()
        except IndexError:
            raise StackUnderflow("pop from empty stack") from None

    def pop_many(self, count: int) -> list[int]:
        """Pop ``count`` words, top-of-stack first."""
        if len(self._items) < count:
            raise StackUnderflow(
                f"need {count} stack items, have {len(self._items)}"
            )
        taken = self._items[-count:]
        del self._items[-count:]
        taken.reverse()
        return taken

    def peek(self, depth: int = 0) -> int:
        """Read the item ``depth`` positions below the top without popping."""
        if depth >= len(self._items):
            raise StackUnderflow(f"peek depth {depth} exceeds stack size")
        return self._items[-1 - depth]

    def dup(self, position: int) -> None:
        """DUPn: duplicate the item ``position`` (1-based) from the top."""
        if position > len(self._items):
            raise StackUnderflow(f"DUP{position} on stack of {len(self._items)}")
        self.push(self._items[-position])

    def swap(self, position: int) -> None:
        """SWAPn: swap the top with the item ``position`` below it."""
        if position >= len(self._items):
            raise StackUnderflow(f"SWAP{position} on stack of {len(self._items)}")
        top = len(self._items) - 1
        other = top - position
        items = self._items
        items[top], items[other] = items[other], items[top]

    def items(self) -> tuple[int, ...]:
        """A read-only snapshot, bottom first (for debugging/tests)."""
        return tuple(self._items)
