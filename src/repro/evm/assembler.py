"""EVM assembler.

Two layers:

* :class:`Program` — a programmatic builder with labels and back-
  patching, used by the Solis code generator;
* :func:`assemble` — a textual assembler for hand-written snippets in
  tests (mnemonics, ``0x`` immediates, ``label:`` definitions and
  ``@label`` references).

Label references always assemble to ``PUSH2`` so that offsets are
stable regardless of final program size (programs are capped at 64 KiB,
far above the EIP-170 code-size limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm import opcodes
from repro.evm.opcodes import by_mnemonic
from repro.exceptions import ReproError


class AssemblerError(ReproError, ValueError):
    """Raised on malformed assembly input or unresolved labels."""


_LABEL_WIDTH = 2  # PUSH2 for all jump targets


@dataclass
class _LabelRef:
    label: str
    patch_offset: int


@dataclass
class Program:
    """An append-only instruction buffer with label back-patching."""

    _code: bytearray = field(default_factory=bytearray)
    _labels: dict[str, int] = field(default_factory=dict)
    _refs: list[_LabelRef] = field(default_factory=list)
    _label_counter: int = 0

    def __len__(self) -> int:
        return len(self._code)

    @property
    def pc(self) -> int:
        """Current program counter (offset of the next emitted byte)."""
        return len(self._code)

    def fresh_label(self, hint: str = "L") -> str:
        """Create a unique label name."""
        self._label_counter += 1
        return f"__{hint}_{self._label_counter}"

    def label(self, name: str) -> None:
        """Bind ``name`` to the current pc and emit a JUMPDEST."""
        if name in self._labels:
            raise AssemblerError(f"label {name!r} defined twice")
        self._labels[name] = self.pc
        self._code.append(opcodes.JUMPDEST)

    def mark(self, name: str) -> None:
        """Bind ``name`` to the current pc WITHOUT emitting a JUMPDEST.

        Used for data offsets (e.g. where embedded runtime code starts),
        not for jump targets.
        """
        if name in self._labels:
            raise AssemblerError(f"label {name!r} defined twice")
        self._labels[name] = self.pc

    def op(self, mnemonic: str) -> "Program":
        """Emit a plain (no-immediate) instruction."""
        opcode = by_mnemonic(mnemonic)
        if opcode.immediate_size:
            raise AssemblerError(f"{mnemonic} requires an immediate; use push()")
        self._code.append(opcode.value)
        return self

    def push(self, value: int, width: int | None = None) -> "Program":
        """Emit the narrowest PUSHn holding ``value`` (or a fixed width)."""
        if value < 0:
            raise AssemblerError("PUSH immediates are unsigned")
        if width is None:
            width = max(1, (value.bit_length() + 7) // 8)
        if not 1 <= width <= 32:
            raise AssemblerError(f"PUSH width {width} out of range")
        if value >= 1 << (8 * width):
            raise AssemblerError(f"{value} does not fit in PUSH{width}")
        self._code.append(opcodes.PUSH1 + width - 1)
        self._code.extend(value.to_bytes(width, "big"))
        return self

    def push_label(self, name: str) -> "Program":
        """Emit a PUSH2 whose immediate is patched to ``name``'s offset."""
        self._code.append(opcodes.PUSH1 + _LABEL_WIDTH - 1)
        self._refs.append(_LabelRef(label=name, patch_offset=self.pc))
        self._code.extend(b"\x00" * _LABEL_WIDTH)
        return self

    def push_bytes(self, data: bytes) -> "Program":
        """Emit PUSHn of raw bytes (1..32)."""
        if not 1 <= len(data) <= 32:
            raise AssemblerError("push_bytes takes 1..32 bytes")
        self._code.append(opcodes.PUSH1 + len(data) - 1)
        self._code.extend(data)
        return self

    def jump_to(self, name: str) -> "Program":
        """PUSH @name; JUMP."""
        return self.push_label(name).op("JUMP")

    def jumpi_to(self, name: str) -> "Program":
        """PUSH @name; JUMPI (consumes the condition under the target)."""
        return self.push_label(name).op("JUMPI")

    def raw(self, data: bytes) -> "Program":
        """Append raw bytes (e.g. embedded runtime code)."""
        self._code.extend(data)
        return self

    def append(self, other: "Program") -> "Program":
        """Concatenate another program, relocating its labels and refs."""
        base = self.pc
        for name, offset in other._labels.items():
            if name in self._labels:
                raise AssemblerError(f"label {name!r} defined twice")
            self._labels[name] = offset + base
        for ref in other._refs:
            self._refs.append(
                _LabelRef(label=ref.label, patch_offset=ref.patch_offset + base)
            )
        self._code.extend(other._code)
        return self

    def assemble(self) -> bytes:
        """Resolve label references and return the final bytecode."""
        code = bytearray(self._code)
        for ref in self._refs:
            try:
                target = self._labels[ref.label]
            except KeyError:
                raise AssemblerError(f"undefined label {ref.label!r}") from None
            if target >= 1 << (8 * _LABEL_WIDTH):
                raise AssemblerError(f"label {ref.label!r} offset too large")
            code[ref.patch_offset:ref.patch_offset + _LABEL_WIDTH] = (
                target.to_bytes(_LABEL_WIDTH, "big")
            )
        return bytes(code)


def assemble(source: str) -> bytes:
    """Assemble textual EVM assembly.

    Syntax per line: ``[label:] MNEMONIC [immediate]`` where immediate
    is ``0x...``, decimal, or ``@label``.  ``;`` starts a comment.
    """
    program = Program()
    for raw_line in source.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            program.label(line[:-1].strip())
            continue
        if ":" in line:
            label_part, line = line.split(":", 1)
            program.label(label_part.strip())
            line = line.strip()
            if not line:
                continue
        parts = line.split()
        mnemonic = parts[0].upper()
        if mnemonic.startswith("PUSH") and len(parts) == 2:
            operand = parts[1]
            if operand.startswith("@"):
                program.push_label(operand[1:])
                continue
            value = int(operand, 0)
            if mnemonic == "PUSH":
                program.push(value)
            else:
                width = int(mnemonic[4:])
                program.push(value, width=width)
            continue
        if len(parts) != 1:
            raise AssemblerError(f"unexpected operand in line: {raw_line!r}")
        if mnemonic == "JUMPDEST":
            # Anonymous jumpdest without a label.
            program._code.append(opcodes.JUMPDEST)
            continue
        program.op(mnemonic)
    return program.assemble()


def disassemble(code: bytes) -> list[tuple[int, str]]:
    """Disassemble bytecode into ``(offset, text)`` pairs."""
    out: list[tuple[int, str]] = []
    pc = 0
    while pc < len(code):
        op_byte = code[pc]
        opcode = opcodes.OPCODES.get(op_byte)
        if opcode is None:
            out.append((pc, f"UNKNOWN_0x{op_byte:02x}"))
            pc += 1
            continue
        if opcode.immediate_size:
            imm = code[pc + 1:pc + 1 + opcode.immediate_size]
            out.append((pc, f"{opcode.mnemonic} 0x{imm.hex()}"))
            pc += 1 + opcode.immediate_size
        else:
            out.append((pc, opcode.mnemonic))
            pc += 1
    return out
