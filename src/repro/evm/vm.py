"""The EVM interpreter.

A faithful (Constantinople-era) stack-machine interpreter: 256-bit
arithmetic, gas metering with memory expansion and the EIP-150 63/64
call rule, nested message calls with snapshot/revert state semantics,
CREATE with code-deposit charging, LOGn, REVERT, and precompiles.

The interpreter is deliberately independent of the blockchain layer —
it talks to world state through the small :class:`StateBackend`
protocol, which `repro.chain.state.WorldState` implements.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.crypto import rlp
from repro.crypto.keccak import keccak256
from repro.crypto.keys import Address
from repro.evm import gas, opcodes, precompiles
from repro.evm.analysis import analyze_code
from repro.evm.exceptions import (
    CodeSizeExceeded,
    InsufficientFunds,
    InvalidInstruction,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    VMError,
    WriteProtection,
)
from repro.evm.exceptions import StackOverflow, StackUnderflow
from repro.evm.memory import Memory
from repro.evm.stack import STACK_LIMIT, Stack, UINT256_MAX

_SIGN_BIT = 1 << 255

# Child frames recurse through the interpreter (~6 Python frames per
# EVM call level); the 1024-deep EVM call limit must fit under Python's
# recursion limit.  Python >= 3.11 heap-allocates frames, so raising the
# limit is safe.
_NEEDED_RECURSION = gas.CALL_DEPTH_LIMIT * 8 + 1_000
if sys.getrecursionlimit() < _NEEDED_RECURSION:
    sys.setrecursionlimit(_NEEDED_RECURSION)


class StateBackend(Protocol):
    """What the interpreter needs from world state."""

    def get_balance(self, address: Address) -> int:
        """Balance in wei."""
    def set_balance(self, address: Address, value: int) -> None:
        """Overwrite the balance."""
    def get_nonce(self, address: Address) -> int:
        """Current account nonce."""
    def increment_nonce(self, address: Address) -> None:
        """Bump the nonce by one."""
    def get_code(self, address: Address) -> bytes:
        """Runtime bytecode at the address."""
    def set_code(self, address: Address, code: bytes) -> None:
        """Install runtime bytecode."""
    def get_storage(self, address: Address, key: int) -> int:
        """Read one storage slot."""
    def set_storage(self, address: Address, key: int, value: int) -> None:
        """Write one storage slot."""
    def account_exists(self, address: Address) -> bool:
        """Whether the account exists at all."""
    def create_account(self, address: Address) -> None:
        """Create an empty account."""
    def snapshot(self) -> int:
        """Take a revertible snapshot; returns its id."""
    def revert_to(self, snapshot_id: int) -> None:
        """Roll state back to a snapshot."""
    def discard_snapshot(self, snapshot_id: int) -> None:
        """Release a snapshot without reverting."""


@dataclass(frozen=True)
class Log:
    """An EVM log record (Solidity event)."""

    address: Address
    topics: tuple[int, ...]
    data: bytes


@dataclass
class BlockContext:
    """Block-level environment visible to contracts."""

    coinbase: Address
    timestamp: int
    number: int
    difficulty: int = 1
    gas_limit: int = 8_000_000
    block_hash_fn: Callable[[int], bytes] = lambda __n: b"\x00" * 32


@dataclass
class Message:
    """One message call (or contract creation when ``to`` is None)."""

    sender: Address
    to: Optional[Address]
    value: int
    data: bytes
    gas: int
    origin: Address
    gas_price: int = 1
    depth: int = 0
    is_static: bool = False
    code_override: Optional[bytes] = None
    storage_address_override: Optional[Address] = None

    @property
    def is_create(self) -> bool:
        """True for contract-creation messages (no recipient)."""
        return self.to is None


@dataclass
class ExecutionResult:
    """Outcome of one message frame."""

    success: bool
    return_data: bytes = b""
    gas_used: int = 0
    gas_refund: int = 0
    logs: list[Log] = field(default_factory=list)
    created_address: Optional[Address] = None
    error: Optional[str] = None

    @property
    def gas_left(self) -> int:
        """Remaining gas is tracked by the caller; kept for symmetry."""
        return 0


class _Frame:
    """Mutable execution state for one call frame."""

    __slots__ = (
        "message", "code", "pc", "stack", "memory", "gas_remaining",
        "return_data", "logs", "refund", "output", "valid_jump_dests",
        "push_info", "storage_address", "analysis",
    )

    def __init__(self, message: Message, code: bytes) -> None:
        self.message = message
        self.code = code
        self.pc = 0
        self.stack = Stack()
        self.memory = Memory()
        self.gas_remaining = message.gas
        self.return_data = b""
        self.logs: list[Log] = []
        self.refund = 0
        self.output = b""
        analysis = analyze_code(code)
        self.analysis = analysis
        self.valid_jump_dests = analysis.jump_dests
        self.push_info = analysis.push_info
        self.storage_address = (
            message.storage_address_override
            if message.storage_address_override is not None
            else message.to
        )

    def charge(self, amount: int) -> None:
        """Deduct gas, raising OutOfGas when exhausted."""
        if amount > self.gas_remaining:
            self.gas_remaining = 0
            raise OutOfGas(f"needed {amount} gas")
        self.gas_remaining -= amount

    def charge_and_extend(self, offset: int, size: int) -> None:
        """Charge memory expansion then grow memory."""
        self.charge(self.memory.expansion_cost(offset, size))
        self.memory.extend(offset, size)


def _find_jump_dests(code: bytes) -> frozenset[int]:
    return analyze_code(code).jump_dests


def compute_contract_address(sender: Address, nonce: int) -> Address:
    """CREATE address: keccak256(rlp([sender, nonce]))[12:]."""
    encoded = rlp.encode([sender.value, nonce])
    return Address(keccak256(encoded)[12:])


def _to_signed(value: int) -> int:
    return value - (1 << 256) if value & _SIGN_BIT else value


def _to_unsigned(value: int) -> int:
    return value & UINT256_MAX


class EVM:
    """Executes messages against a :class:`StateBackend`.

    ``tracer`` (optional) receives an ``on_step`` callback per executed
    instruction — see :mod:`repro.evm.tracer`.  For call-family and
    CREATE instructions the reported cost is the *net* cost at the call
    site, i.e. it includes the gas the child frame consumed.
    """

    def __init__(self, state: StateBackend, block: BlockContext,
                 tracer=None, jit: Optional[bool] = None) -> None:
        self.state = state
        self.block = block
        self.tracer = tracer
        #: Tri-state compile switch: None defers to the process-wide
        #: :func:`repro.evm.jit.enabled` default, True/False force it
        #: for this EVM instance (``SimulatorConfig(evm_jit=...)``).
        self.jit = jit

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------

    def execute(self, message: Message) -> ExecutionResult:
        """Run a message call or creation, with full revert semantics."""
        if message.depth > gas.CALL_DEPTH_LIMIT:
            return ExecutionResult(
                success=False, gas_used=message.gas,
                error="call depth limit exceeded",
            )
        if message.is_create:
            return self._execute_create(message)
        return self._execute_call(message)

    def _transfer_value(self, message: Message, recipient: Address) -> None:
        if message.value == 0:
            return
        sender_balance = self.state.get_balance(message.sender)
        if sender_balance < message.value:
            raise InsufficientFunds(
                f"balance {sender_balance} < value {message.value}"
            )
        self.state.set_balance(message.sender, sender_balance - message.value)
        self.state.set_balance(
            recipient, self.state.get_balance(recipient) + message.value
        )

    def _execute_call(self, message: Message) -> ExecutionResult:
        assert message.to is not None
        snapshot_id = self.state.snapshot()
        try:
            # DELEGATECALL/CALLCODE run foreign code in the caller's
            # storage context and move no value between accounts.
            if message.storage_address_override is None:
                self._transfer_value(message, message.to)
        except InsufficientFunds as exc:
            self.state.revert_to(snapshot_id)
            return ExecutionResult(
                success=False, gas_used=message.gas, error=str(exc)
            )

        precompile = precompiles.PRECOMPILES.get(message.to.to_int())
        if precompile is not None:
            result = precompiles.run(precompile, message)
            if result.success:
                self.state.discard_snapshot(snapshot_id)
            else:
                self.state.revert_to(snapshot_id)
            return result

        code = (
            message.code_override
            if message.code_override is not None
            else self.state.get_code(message.to)
        )
        if not code:
            self.state.discard_snapshot(snapshot_id)
            return ExecutionResult(success=True, gas_used=0)

        frame = _Frame(message, code)
        try:
            self._run(frame)
        except Revert as exc:
            self.state.revert_to(snapshot_id)
            return ExecutionResult(
                success=False,
                return_data=exc.data,
                gas_used=message.gas - frame.gas_remaining,
                error="revert",
            )
        except VMError as exc:
            self.state.revert_to(snapshot_id)
            return ExecutionResult(
                success=False, gas_used=message.gas,
                error=f"{type(exc).__name__}: {exc}",
            )
        self.state.discard_snapshot(snapshot_id)
        return ExecutionResult(
            success=True,
            return_data=frame.output,
            gas_used=message.gas - frame.gas_remaining,
            gas_refund=frame.refund,
            logs=frame.logs,
        )

    def _execute_create(self, message: Message) -> ExecutionResult:
        nonce = self.state.get_nonce(message.sender)
        new_address = compute_contract_address(message.sender, nonce)
        self.state.increment_nonce(message.sender)

        snapshot_id = self.state.snapshot()
        if self.state.get_code(new_address):
            self.state.revert_to(snapshot_id)
            return ExecutionResult(
                success=False, gas_used=message.gas,
                error="address collision",
            )
        self.state.create_account(new_address)
        try:
            self._transfer_value(message, new_address)
        except InsufficientFunds as exc:
            self.state.revert_to(snapshot_id)
            return ExecutionResult(
                success=False, gas_used=message.gas, error=str(exc)
            )

        init_message = Message(
            sender=message.sender,
            to=new_address,
            value=message.value,
            data=b"",
            gas=message.gas,
            origin=message.origin,
            gas_price=message.gas_price,
            depth=message.depth,
            code_override=message.data,
        )
        frame = _Frame(init_message, message.data)
        try:
            self._run(frame)
            runtime_code = frame.output
            if len(runtime_code) > gas.MAX_CODE_SIZE:
                raise CodeSizeExceeded(
                    f"runtime code is {len(runtime_code)} bytes"
                )
            frame.charge(gas.G_CODEDEPOSIT * len(runtime_code))
            self.state.set_code(new_address, runtime_code)
        except Revert as exc:
            self.state.revert_to(snapshot_id)
            return ExecutionResult(
                success=False,
                return_data=exc.data,
                gas_used=message.gas - frame.gas_remaining,
                error="revert",
            )
        except VMError as exc:
            self.state.revert_to(snapshot_id)
            return ExecutionResult(
                success=False, gas_used=message.gas,
                error=f"{type(exc).__name__}: {exc}",
            )
        self.state.discard_snapshot(snapshot_id)
        return ExecutionResult(
            success=True,
            return_data=b"",
            gas_used=message.gas - frame.gas_remaining,
            gas_refund=frame.refund,
            logs=frame.logs,
            created_address=new_address,
        )

    # ------------------------------------------------------------------
    # Interpreter loop
    # ------------------------------------------------------------------

    def _run(self, frame: _Frame) -> None:
        """Run ``frame`` to completion — compiled when hot, else the
        dispatch-table interpreter.

        The traced loop never runs compiled code: tracers observe every
        step, and the telemetry-on/telemetry-off gas-invariance gate in
        the bench harness doubles as a standing interpreter-vs-JIT
        differential check because of exactly this split.
        """
        if self.tracer is not None:
            self._run_traced(frame)
            return
        use_jit = self.jit if self.jit is not None else jit.enabled()
        if use_jit:
            program = jit.acquire_program(frame.code, frame.analysis)
            if program is not None and self._run_compiled(frame, program):
                return
        self._run_fast(frame)

    def _run_compiled(self, frame: _Frame, program) -> bool:
        """Drive a compiled program block-to-block.

        Returns True when the frame halted under compiled code; False
        after a bailout (``frame.pc`` is left pointing at the
        uncompiled region so ``_run_fast`` resumes exactly there).
        """
        blocks = program.blocks
        stack_items = frame.stack._items
        pc = frame.pc
        while pc >= 0:
            block_fn = blocks.get(pc)
            if block_fn is None:
                if pc >= program.code_length:
                    return True  # ran off the end: implicit STOP
                frame.pc = pc
                jit.STATS.bailouts += 1
                return False
            pc = block_fn(self, frame, stack_items)
        return True

    def _run_fast(self, frame: _Frame) -> None:
        """The untraced interpreter loop.

        One indexed load into the preresolved 256-entry dispatch table
        replaces the historical ``OPCODES.get`` + ``_HANDLERS.get`` +
        group-fallback chain, and the flat gas charge is inlined.  Gas
        accounting is byte-identical to the old loop: unknown bytes and
        INVALID raise (and therefore consume all gas) exactly as before.
        """
        code = frame.code
        length = len(code)
        dispatch = _DISPATCH
        pc = frame.pc
        while pc < length:
            op_byte = code[pc]
            base_gas, handler = dispatch[op_byte]
            if base_gas > frame.gas_remaining:
                frame.gas_remaining = 0
                raise OutOfGas(f"needed {base_gas} gas")
            frame.gas_remaining -= base_gas
            frame.pc = pc
            next_pc = handler(self, frame, op_byte)
            if next_pc is None:
                pc += 1
            elif next_pc is _HALT:
                return
            else:
                pc = next_pc

    def _run_traced(self, frame: _Frame) -> None:
        """The traced loop: identical semantics plus per-step callbacks."""
        code = frame.code
        length = len(code)
        tracer = self.tracer
        dispatch = _DISPATCH
        while frame.pc < length:
            current_pc = frame.pc
            op_byte = code[current_pc]
            base_gas, handler = dispatch[op_byte]
            gas_before = frame.gas_remaining
            if base_gas > gas_before:
                frame.gas_remaining = 0
                raise OutOfGas(f"needed {base_gas} gas")
            frame.gas_remaining = gas_before - base_gas
            next_pc = handler(self, frame, op_byte)
            tracer.on_step(
                current_pc, op_byte, frame.message.depth,
                gas_before, gas_before - frame.gas_remaining,
                len(frame.stack),
            )
            if next_pc is None:
                frame.pc = current_pc + 1
            elif next_pc is _HALT:
                return
            else:
                frame.pc = next_pc


_HALT = object()


def _group_of(op_byte: int) -> str:
    if opcodes.PUSH1 <= op_byte <= opcodes.PUSH32:
        return "push"
    if opcodes.DUP1 <= op_byte <= opcodes.DUP16:
        return "dup"
    if opcodes.SWAP1 <= op_byte <= opcodes.SWAP16:
        return "swap"
    if opcodes.LOG0 <= op_byte <= opcodes.LOG4:
        return "log"
    raise InvalidOpcode(f"unhandled opcode 0x{op_byte:02x}")


# ----------------------------------------------------------------------
# Opcode handlers.  Each returns the next pc, None for pc+1, or _HALT.
# ----------------------------------------------------------------------

def _binop(fn):
    def handler(vm: EVM, frame: _Frame, op: int):
        """Pop two operands, push ``fn(a, b)``."""
        items = frame.stack._items
        try:
            a = items.pop()
            b = items.pop()
        except IndexError:
            raise StackUnderflow("pop from empty stack") from None
        items.append(fn(a, b) & UINT256_MAX)
        return None
    return handler


def _stop(vm, frame, op):
    frame.output = b""
    return _HALT


def _exp(vm, frame, op):
    base = frame.stack.pop()
    exponent = frame.stack.pop()
    if exponent > 0:
        frame.charge(gas.G_EXP_BYTE * ((exponent.bit_length() + 7) // 8))
    frame.stack.push(pow(base, exponent, 1 << 256))
    return None


def _signextend(vm, frame, op):
    position = frame.stack.pop()
    value = frame.stack.pop()
    if position < 31:
        bit = (position + 1) * 8 - 1
        if value & (1 << bit):
            value |= UINT256_MAX ^ ((1 << (bit + 1)) - 1)
        else:
            value &= (1 << (bit + 1)) - 1
    frame.stack.push(value)
    return None


def _sha3(vm, frame, op):
    offset = frame.stack.pop()
    size = frame.stack.pop()
    frame.charge(gas.G_SHA3_WORD * gas.words_for_bytes(size))
    frame.charge_and_extend(offset, size)
    digest = keccak256(frame.memory.read(offset, size))
    frame.stack.push(int.from_bytes(digest, "big"))
    return None


def _address(vm, frame, op):
    frame.stack.push(frame.message.to.to_int())
    return None


def _balance(vm, frame, op):
    addr = Address.from_int(frame.stack.pop() & ((1 << 160) - 1))
    frame.stack.push(vm.state.get_balance(addr))
    return None


def _origin(vm, frame, op):
    frame.stack.push(frame.message.origin.to_int())
    return None


def _caller(vm, frame, op):
    frame.stack.push(frame.message.sender.to_int())
    return None


def _callvalue(vm, frame, op):
    frame.stack.push(frame.message.value)
    return None


def _calldataload(vm, frame, op):
    offset = frame.stack.pop()
    data = frame.message.data
    if offset >= len(data):
        word = b"\x00" * 32
    else:
        word = data[offset:offset + 32].ljust(32, b"\x00")
    frame.stack.push(int.from_bytes(word, "big"))
    return None


def _calldatasize(vm, frame, op):
    frame.stack.push(len(frame.message.data))
    return None


def _copy_to_memory(frame: _Frame, source: bytes) -> None:
    dest = frame.stack.pop()
    src_offset = frame.stack.pop()
    size = frame.stack.pop()
    frame.charge(gas.copy_gas(size))
    frame.charge_and_extend(dest, size)
    if size:
        chunk = source[src_offset:src_offset + size].ljust(size, b"\x00") \
            if src_offset < len(source) else b"\x00" * size
        frame.memory.write(dest, chunk)


def _calldatacopy(vm, frame, op):
    _copy_to_memory(frame, frame.message.data)
    return None


def _codesize(vm, frame, op):
    frame.stack.push(len(frame.code))
    return None


def _codecopy(vm, frame, op):
    _copy_to_memory(frame, frame.code)
    return None


def _gasprice(vm, frame, op):
    frame.stack.push(frame.message.gas_price)
    return None


def _extcodesize(vm, frame, op):
    addr = Address.from_int(frame.stack.pop() & ((1 << 160) - 1))
    frame.stack.push(len(vm.state.get_code(addr)))
    return None


def _extcodecopy(vm, frame, op):
    addr = Address.from_int(frame.stack.pop() & ((1 << 160) - 1))
    _copy_to_memory(frame, vm.state.get_code(addr))
    return None


def _returndatasize(vm, frame, op):
    frame.stack.push(len(frame.return_data))
    return None


def _returndatacopy(vm, frame, op):
    dest = frame.stack.pop()
    src_offset = frame.stack.pop()
    size = frame.stack.pop()
    if src_offset + size > len(frame.return_data):
        raise VMError("RETURNDATACOPY out of bounds")
    frame.charge(gas.copy_gas(size))
    frame.charge_and_extend(dest, size)
    frame.memory.write(dest, frame.return_data[src_offset:src_offset + size])
    return None


def _blockhash(vm, frame, op):
    number = frame.stack.pop()
    frame.stack.push(int.from_bytes(vm.block.block_hash_fn(number), "big"))
    return None


def _coinbase(vm, frame, op):
    frame.stack.push(vm.block.coinbase.to_int())
    return None


def _timestamp(vm, frame, op):
    frame.stack.push(vm.block.timestamp)
    return None


def _number(vm, frame, op):
    frame.stack.push(vm.block.number)
    return None


def _difficulty(vm, frame, op):
    frame.stack.push(vm.block.difficulty)
    return None


def _gaslimit(vm, frame, op):
    frame.stack.push(vm.block.gas_limit)
    return None


def _pop(vm, frame, op):
    frame.stack.pop()
    return None


def _mload(vm, frame, op):
    offset = frame.stack.pop()
    frame.charge_and_extend(offset, 32)
    frame.stack.push(frame.memory.read_word(offset))
    return None


def _mstore(vm, frame, op):
    offset = frame.stack.pop()
    value = frame.stack.pop()
    frame.charge_and_extend(offset, 32)
    frame.memory.write_word(offset, value)
    return None


def _mstore8(vm, frame, op):
    offset = frame.stack.pop()
    value = frame.stack.pop()
    frame.charge_and_extend(offset, 1)
    frame.memory.write(offset, bytes([value & 0xFF]))
    return None


def _sload(vm, frame, op):
    key = frame.stack.pop()
    frame.stack.push(vm.state.get_storage(frame.storage_address, key))
    return None


def _sstore(vm, frame, op):
    if frame.message.is_static:
        raise WriteProtection("SSTORE in static context")
    key = frame.stack.pop()
    value = frame.stack.pop()
    current = vm.state.get_storage(frame.storage_address, key)
    cost, refund = gas.sstore_gas_and_refund(current, value)
    frame.charge(cost)
    frame.refund += refund
    vm.state.set_storage(frame.storage_address, key, value)
    return None


def _jump(vm, frame, op):
    dest = frame.stack.pop()
    if dest not in frame.valid_jump_dests:
        raise InvalidJump(f"jump to {dest}")
    return dest


def _jumpi(vm, frame, op):
    items = frame.stack._items
    try:
        dest = items.pop()
        condition = items.pop()
    except IndexError:
        raise StackUnderflow("pop from empty stack") from None
    if condition == 0:
        return None
    if dest not in frame.valid_jump_dests:
        raise InvalidJump(f"jump to {dest}")
    return dest


def _pc(vm, frame, op):
    frame.stack.push(frame.pc)
    return None


def _msize(vm, frame, op):
    frame.stack.push(len(frame.memory))
    return None


def _gas(vm, frame, op):
    frame.stack.push(frame.gas_remaining)
    return None


def _jumpdest(vm, frame, op):
    return None


def _push(vm, frame, op):
    # Immediates are predecoded per unique bytecode; see analysis.py.
    value, next_pc = frame.push_info[frame.pc]
    items = frame.stack._items
    if len(items) >= STACK_LIMIT:
        raise StackOverflow(f"stack limit of {STACK_LIMIT} exceeded")
    items.append(value)
    return next_pc


def _dup(vm, frame, op):
    position = op - opcodes.DUP1 + 1
    items = frame.stack._items
    if position > len(items):
        raise StackUnderflow(f"DUP{position} on stack of {len(items)}")
    if len(items) >= STACK_LIMIT:
        raise StackOverflow(f"stack limit of {STACK_LIMIT} exceeded")
    items.append(items[-position])
    return None


def _swap(vm, frame, op):
    position = op - opcodes.SWAP1 + 1
    items = frame.stack._items
    if position >= len(items):
        raise StackUnderflow(f"SWAP{position} on stack of {len(items)}")
    top = len(items) - 1
    other = top - position
    items[top], items[other] = items[other], items[top]
    return None


def _log(vm, frame, op):
    if frame.message.is_static:
        raise WriteProtection("LOG in static context")
    topic_count = op - opcodes.LOG0
    offset = frame.stack.pop()
    size = frame.stack.pop()
    topics = tuple(frame.stack.pop() for __ in range(topic_count))
    frame.charge(gas.G_LOG_DATA * size)
    frame.charge_and_extend(offset, size)
    frame.logs.append(
        Log(address=frame.storage_address, topics=topics,
            data=frame.memory.read(offset, size))
    )
    return None


def _return(vm, frame, op):
    offset = frame.stack.pop()
    size = frame.stack.pop()
    frame.charge_and_extend(offset, size)
    frame.output = frame.memory.read(offset, size)
    return _HALT


def _revert(vm, frame, op):
    offset = frame.stack.pop()
    size = frame.stack.pop()
    frame.charge_and_extend(offset, size)
    raise Revert(frame.memory.read(offset, size))


def _selfdestruct(vm, frame, op):
    if frame.message.is_static:
        raise WriteProtection("SELFDESTRUCT in static context")
    beneficiary = Address.from_int(frame.stack.pop() & ((1 << 160) - 1))
    balance = vm.state.get_balance(frame.storage_address)
    vm.state.set_balance(beneficiary,
                         vm.state.get_balance(beneficiary) + balance)
    vm.state.set_balance(frame.storage_address, 0)
    vm.state.set_code(frame.storage_address, b"")
    frame.refund += gas.R_SELFDESTRUCT
    frame.output = b""
    return _HALT


def _create(vm, frame, op):
    if frame.message.is_static:
        raise WriteProtection("CREATE in static context")
    value = frame.stack.pop()
    offset = frame.stack.pop()
    size = frame.stack.pop()
    frame.charge_and_extend(offset, size)
    init_code = frame.memory.read(offset, size)

    child_gas = gas.max_call_gas(frame.gas_remaining)
    frame.charge(child_gas)
    child = Message(
        sender=frame.storage_address,
        to=None,
        value=value,
        data=init_code,
        gas=child_gas,
        origin=frame.message.origin,
        gas_price=frame.message.gas_price,
        depth=frame.message.depth + 1,
    )
    result = vm.execute(child)
    frame.gas_remaining += child_gas - result.gas_used
    frame.return_data = result.return_data
    if result.success and result.created_address is not None:
        frame.logs.extend(result.logs)
        frame.refund += result.gas_refund
        frame.stack.push(result.created_address.to_int())
    else:
        frame.stack.push(0)
    return None


def _call_family(vm: EVM, frame: _Frame, op: int):
    requested_gas = frame.stack.pop()
    target_int = frame.stack.pop() & ((1 << 160) - 1)
    target = Address.from_int(target_int)

    if op in (opcodes.CALL, opcodes.CALLCODE):
        value = frame.stack.pop()
    else:
        value = 0
    in_offset = frame.stack.pop()
    in_size = frame.stack.pop()
    out_offset = frame.stack.pop()
    out_size = frame.stack.pop()

    if frame.message.is_static and op == opcodes.CALL and value > 0:
        raise WriteProtection("value CALL in static context")

    frame.charge_and_extend(in_offset, in_size)
    frame.charge_and_extend(out_offset, out_size)

    extra = 0
    if value > 0:
        extra += gas.G_CALLVALUE
        if op == opcodes.CALL and not vm.state.account_exists(target):
            extra += gas.G_NEWACCOUNT
    frame.charge(extra)

    child_gas = min(requested_gas, gas.max_call_gas(frame.gas_remaining))
    frame.charge(child_gas)
    if value > 0:
        child_gas += gas.G_CALLSTIPEND

    call_data = frame.memory.read(in_offset, in_size)

    if op == opcodes.CALL:
        child = Message(
            sender=frame.storage_address, to=target, value=value,
            data=call_data, gas=child_gas, origin=frame.message.origin,
            gas_price=frame.message.gas_price, depth=frame.message.depth + 1,
            is_static=frame.message.is_static,
        )
    elif op == opcodes.CALLCODE:
        child = Message(
            sender=frame.storage_address, to=target, value=value,
            data=call_data, gas=child_gas, origin=frame.message.origin,
            gas_price=frame.message.gas_price, depth=frame.message.depth + 1,
            is_static=frame.message.is_static,
            code_override=vm.state.get_code(target),
            storage_address_override=frame.storage_address,
        )
    elif op == opcodes.DELEGATECALL:
        child = Message(
            sender=frame.message.sender, to=target,
            value=frame.message.value, data=call_data, gas=child_gas,
            origin=frame.message.origin, gas_price=frame.message.gas_price,
            depth=frame.message.depth + 1, is_static=frame.message.is_static,
            code_override=vm.state.get_code(target),
            storage_address_override=frame.storage_address,
        )
    else:  # STATICCALL
        child = Message(
            sender=frame.storage_address, to=target, value=0,
            data=call_data, gas=child_gas, origin=frame.message.origin,
            gas_price=frame.message.gas_price, depth=frame.message.depth + 1,
            is_static=True,
        )

    result = vm.execute(child)
    frame.gas_remaining += child_gas - result.gas_used
    frame.return_data = result.return_data
    if result.success:
        frame.logs.extend(result.logs)
        frame.refund += result.gas_refund
        frame.stack.push(1)
    else:
        frame.stack.push(0)
    if out_size and result.return_data:
        chunk = result.return_data[:out_size]
        frame.memory.write(out_offset, chunk)
    return None


_HANDLERS = {
    opcodes.STOP: _stop,
    opcodes.ADD: _binop(lambda a, b: a + b),
    opcodes.MUL: _binop(lambda a, b: a * b),
    opcodes.SUB: _binop(lambda a, b: a - b),
    opcodes.DIV: _binop(lambda a, b: a // b if b else 0),
    opcodes.SDIV: _binop(
        lambda a, b: _to_unsigned(
            abs(_to_signed(a)) // abs(_to_signed(b))
            * (1 if (_to_signed(a) < 0) == (_to_signed(b) < 0) else -1)
        ) if b else 0
    ),
    opcodes.MOD: _binop(lambda a, b: a % b if b else 0),
    opcodes.SMOD: _binop(
        lambda a, b: _to_unsigned(
            abs(_to_signed(a)) % abs(_to_signed(b))
            * (1 if _to_signed(a) >= 0 else -1)
        ) if b else 0
    ),
    opcodes.ADDMOD: None,  # replaced below (ternary)
    opcodes.MULMOD: None,
    opcodes.EXP: _exp,
    opcodes.SIGNEXTEND: _signextend,
    opcodes.LT: _binop(lambda a, b: 1 if a < b else 0),
    opcodes.GT: _binop(lambda a, b: 1 if a > b else 0),
    opcodes.SLT: _binop(lambda a, b: 1 if _to_signed(a) < _to_signed(b) else 0),
    opcodes.SGT: _binop(lambda a, b: 1 if _to_signed(a) > _to_signed(b) else 0),
    opcodes.EQ: _binop(lambda a, b: 1 if a == b else 0),
    opcodes.ISZERO: None,
    opcodes.AND: _binop(lambda a, b: a & b),
    opcodes.OR: _binop(lambda a, b: a | b),
    opcodes.XOR: _binop(lambda a, b: a ^ b),
    opcodes.NOT: None,
    opcodes.BYTE: _binop(
        lambda i, x: (x >> (8 * (31 - i))) & 0xFF if i < 32 else 0
    ),
    opcodes.SHL: _binop(lambda shift, x: x << shift if shift < 256 else 0),
    opcodes.SHR: _binop(lambda shift, x: x >> shift if shift < 256 else 0),
    opcodes.SAR: _binop(
        lambda shift, x: _to_unsigned(
            _to_signed(x) >> min(shift, 255)
        )
    ),
    opcodes.SHA3: _sha3,
    opcodes.ADDRESS: _address,
    opcodes.BALANCE: _balance,
    opcodes.ORIGIN: _origin,
    opcodes.CALLER: _caller,
    opcodes.CALLVALUE: _callvalue,
    opcodes.CALLDATALOAD: _calldataload,
    opcodes.CALLDATASIZE: _calldatasize,
    opcodes.CALLDATACOPY: _calldatacopy,
    opcodes.CODESIZE: _codesize,
    opcodes.CODECOPY: _codecopy,
    opcodes.GASPRICE: _gasprice,
    opcodes.EXTCODESIZE: _extcodesize,
    opcodes.EXTCODECOPY: _extcodecopy,
    opcodes.RETURNDATASIZE: _returndatasize,
    opcodes.RETURNDATACOPY: _returndatacopy,
    opcodes.BLOCKHASH: _blockhash,
    opcodes.COINBASE: _coinbase,
    opcodes.TIMESTAMP: _timestamp,
    opcodes.NUMBER: _number,
    opcodes.DIFFICULTY: _difficulty,
    opcodes.GASLIMIT: _gaslimit,
    opcodes.POP: _pop,
    opcodes.MLOAD: _mload,
    opcodes.MSTORE: _mstore,
    opcodes.MSTORE8: _mstore8,
    opcodes.SLOAD: _sload,
    opcodes.SSTORE: _sstore,
    opcodes.JUMP: _jump,
    opcodes.JUMPI: _jumpi,
    opcodes.PC: _pc,
    opcodes.MSIZE: _msize,
    opcodes.GAS: _gas,
    opcodes.JUMPDEST: _jumpdest,
    opcodes.CREATE: _create,
    opcodes.CALL: _call_family,
    opcodes.CALLCODE: _call_family,
    opcodes.RETURN: _return,
    opcodes.DELEGATECALL: _call_family,
    opcodes.STATICCALL: _call_family,
    opcodes.REVERT: _revert,
    opcodes.SELFDESTRUCT: _selfdestruct,
}


def _addmod(vm, frame, op):
    a = frame.stack.pop()
    b = frame.stack.pop()
    n = frame.stack.pop()
    frame.stack.push((a + b) % n if n else 0)
    return None


def _mulmod(vm, frame, op):
    a = frame.stack.pop()
    b = frame.stack.pop()
    n = frame.stack.pop()
    frame.stack.push((a * b) % n if n else 0)
    return None


def _iszero(vm, frame, op):
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    items[-1] = 1 if items[-1] == 0 else 0
    return None


def _not(vm, frame, op):
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    items[-1] = ~items[-1] & UINT256_MAX
    return None


_HANDLERS[opcodes.ADDMOD] = _addmod
_HANDLERS[opcodes.MULMOD] = _mulmod
_HANDLERS[opcodes.ISZERO] = _iszero
_HANDLERS[opcodes.NOT] = _not

_GROUP_HANDLERS = {
    "push": _push,
    "dup": _dup,
    "swap": _swap,
    "log": _log,
}


# ----------------------------------------------------------------------
# Preresolved dispatch table: one indexed load per executed opcode.
# ----------------------------------------------------------------------

def _unknown_opcode(vm, frame, op):
    """Sentinel handler for byte values with no assigned instruction."""
    raise InvalidOpcode(f"0x{op:02x} at pc={frame.pc}")


def _invalid_instruction(vm, frame, op):
    """Sentinel handler for the designated INVALID (0xfe) instruction."""
    raise InvalidInstruction("INVALID opcode executed")


def _build_dispatch() -> list:
    """Resolve every byte value to its ``(base_gas, handler)`` pair.

    Unknown bytes and INVALID get zero-gas sentinel handlers that raise
    the same exceptions the historical loop raised before charging; the
    gas outcome is identical either way because both errors consume all
    remaining gas at the call site.
    """
    table = []
    for byte in range(256):
        info = opcodes.OPCODES.get(byte)
        if info is None:
            table.append((0, _unknown_opcode))
        elif byte == opcodes.INVALID:
            table.append((0, _invalid_instruction))
        else:
            handler = _HANDLERS.get(byte)
            if handler is None:
                handler = _GROUP_HANDLERS[_group_of(byte)]
            table.append((info.base_gas, handler))
    return table


_DISPATCH = _build_dispatch()

# Imported last: the transpiler inlines/bridges the handlers above, so
# it needs this module fully initialised (and this module needs only
# the small jit API surface in _run).
from repro.evm import jit  # noqa: E402
