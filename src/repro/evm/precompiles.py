"""EVM precompiled contracts.

Implements the three precompiles the paper's mechanism touches:

* ``0x01`` ecrecover — the heart of ``deployVerifiedInstance()``'s
  signature check (Algorithm 5);
* ``0x02`` sha256 — for completeness;
* ``0x04`` identity — the memcpy precompile.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.crypto import ecdsa
from repro.crypto.ecdsa import Signature, SignatureError
from repro.crypto.keys import PublicKey
from repro.evm import gas

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evm.vm import ExecutionResult, Message


@dataclass(frozen=True)
class Precompile:
    """A precompiled contract: fixed address, gas function, body."""

    name: str
    gas_fn: Callable[[bytes], int]
    run_fn: Callable[[bytes], bytes]


def _ecrecover(data: bytes) -> bytes:
    """ecrecover(h, v, r, s) -> 32-byte left-padded address (or empty)."""
    data = data.ljust(128, b"\x00")
    message_hash = data[0:32]
    v = int.from_bytes(data[32:64], "big")
    r = int.from_bytes(data[64:96], "big")
    s = int.from_bytes(data[96:128], "big")
    if v not in (27, 28):
        return b""
    try:
        signature = Signature(v=v, r=r, s=s)
        point = ecdsa.recover_public_key(message_hash, signature)
        address = PublicKey(point).address
    except (SignatureError, ValueError):
        return b""
    return b"\x00" * 12 + address.value


def _sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _identity(data: bytes) -> bytes:
    return data


PRECOMPILES: dict[int, Precompile] = {
    1: Precompile(
        name="ecrecover",
        gas_fn=lambda data: gas.G_ECRECOVER,
        run_fn=_ecrecover,
    ),
    2: Precompile(
        name="sha256",
        gas_fn=lambda data: gas.G_SHA256_BASE
        + gas.G_SHA256_WORD * gas.words_for_bytes(len(data)),
        run_fn=_sha256,
    ),
    4: Precompile(
        name="identity",
        gas_fn=lambda data: gas.G_IDENTITY_BASE
        + gas.G_IDENTITY_WORD * gas.words_for_bytes(len(data)),
        run_fn=_identity,
    ),
}


def run(precompile: Precompile, message: "Message") -> "ExecutionResult":
    """Execute a precompile against a message, with gas accounting."""
    from repro.evm.vm import ExecutionResult

    cost = precompile.gas_fn(message.data)
    if cost > message.gas:
        return ExecutionResult(
            success=False, gas_used=message.gas,
            error=f"out of gas in {precompile.name} precompile",
        )
    output = precompile.run_fn(message.data)
    return ExecutionResult(
        success=True, return_data=output, gas_used=cost
    )
