"""Execution tracing and gas profiling.

A tracer observes every executed opcode (pc, depth, gas).  Two
implementations are provided:

* :class:`StructLogTracer` — a bounded structured log, the equivalent
  of ``debug_traceTransaction``'s structLogs;
* :class:`GasProfiler` — aggregates gas by opcode and by category,
  which is how the benchmarks dissect *where* the paper's Table II gas
  goes (signature verification vs CREATE vs storage vs calldata).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.evm import opcodes

#: opcode byte -> coarse cost category
_CATEGORIES: dict[int, str] = {}


def _categorize() -> None:
    groups = {
        "storage": {opcodes.SLOAD, opcodes.SSTORE},
        "hashing": {opcodes.SHA3},
        "memory": {opcodes.MLOAD, opcodes.MSTORE, opcodes.MSTORE8,
                   opcodes.MSIZE, opcodes.CALLDATACOPY, opcodes.CODECOPY,
                   opcodes.RETURNDATACOPY, opcodes.EXTCODECOPY},
        "call": {opcodes.CALL, opcodes.CALLCODE, opcodes.DELEGATECALL,
                 opcodes.STATICCALL},
        "create": {opcodes.CREATE},
        "log": set(range(opcodes.LOG0, opcodes.LOG4 + 1)),
        "flow": {opcodes.JUMP, opcodes.JUMPI, opcodes.JUMPDEST,
                 opcodes.PC, opcodes.STOP, opcodes.RETURN,
                 opcodes.REVERT},
        "stack": ({opcodes.POP}
                  | set(range(opcodes.PUSH1, opcodes.PUSH32 + 1))
                  | set(range(opcodes.DUP1, opcodes.DUP16 + 1))
                  | set(range(opcodes.SWAP1, opcodes.SWAP16 + 1))),
        "environment": {opcodes.ADDRESS, opcodes.BALANCE, opcodes.ORIGIN,
                        opcodes.CALLER, opcodes.CALLVALUE,
                        opcodes.CALLDATALOAD, opcodes.CALLDATASIZE,
                        opcodes.CODESIZE, opcodes.GASPRICE,
                        opcodes.EXTCODESIZE, opcodes.RETURNDATASIZE,
                        opcodes.BLOCKHASH, opcodes.COINBASE,
                        opcodes.TIMESTAMP, opcodes.NUMBER,
                        opcodes.DIFFICULTY, opcodes.GASLIMIT,
                        opcodes.GAS, opcodes.SELFDESTRUCT},
    }
    for category, members in groups.items():
        for value in members:
            _CATEGORIES[value] = category
    for value in opcodes.OPCODES:
        _CATEGORIES.setdefault(value, "arithmetic")


_categorize()


def category_of(op_byte: int) -> str:
    """The coarse cost category of an opcode byte."""
    return _CATEGORIES.get(op_byte, "arithmetic")


@dataclass(frozen=True)
class TraceStep:
    """One executed instruction."""

    pc: int
    op: int
    mnemonic: str
    depth: int
    gas_before: int
    gas_cost: int
    stack_size: int


class StructLogTracer:
    """Collects a bounded list of :class:`TraceStep`."""

    def __init__(self, max_steps: int = 100_000) -> None:
        self.steps: list[TraceStep] = []
        self.truncated = False
        self._max_steps = max_steps

    def on_step(self, pc: int, op: int, depth: int, gas_before: int,
                gas_cost: int, stack_size: int) -> None:
        """Tracer callback: tally one executed instruction."""
        if len(self.steps) >= self._max_steps:
            self.truncated = True
            return
        opcode = opcodes.OPCODES.get(op)
        self.steps.append(TraceStep(
            pc=pc, op=op,
            mnemonic=opcode.mnemonic if opcode else f"0x{op:02x}",
            depth=depth, gas_before=gas_before, gas_cost=gas_cost,
            stack_size=stack_size,
        ))

    def __len__(self) -> int:
        return len(self.steps)


@dataclass
class GasProfile:
    """Aggregated result of a profiled execution."""

    by_opcode: Counter = field(default_factory=Counter)
    by_category: Counter = field(default_factory=Counter)
    op_counts: Counter = field(default_factory=Counter)
    total_gas: int = 0
    step_count: int = 0

    def top_opcodes(self, count: int = 10) -> list[tuple[str, int]]:
        """The ``count`` most expensive opcodes, by gas."""
        return self.by_opcode.most_common(count)

    def category_shares(self) -> dict[str, float]:
        """Per-category share of total traced gas."""
        if self.total_gas <= 0:
            return {}
        return {
            category: gas / self.total_gas
            for category, gas in self.by_category.most_common()
        }


class GasProfiler:
    """A tracer that aggregates instead of logging.

    ``depth_limit`` restricts accounting to frames at or above it
    (``0`` = the outermost frame only).  Since call/create steps carry
    their children's net gas, a ``depth_limit=0`` profile is an
    *exclusive* decomposition: category totals sum to the frame's gas.
    With ``depth_limit=None`` every frame is counted, so child gas
    appears twice (at the call site and in the child's own steps).
    """

    def __init__(self, depth_limit: int | None = 0) -> None:
        self.profile = GasProfile()
        self._depth_limit = depth_limit

    def on_step(self, pc: int, op: int, depth: int, gas_before: int,
                gas_cost: int, stack_size: int) -> None:
        """Tracer callback: append one step record."""
        if self._depth_limit is not None and depth > self._depth_limit:
            return
        opcode = opcodes.OPCODES.get(op)
        mnemonic = opcode.mnemonic if opcode else f"0x{op:02x}"
        profile = self.profile
        profile.by_opcode[mnemonic] += gas_cost
        profile.by_category[category_of(op)] += gas_cost
        profile.op_counts[mnemonic] += 1
        profile.total_gas += gas_cost
        profile.step_count += 1
