"""The Constantinople gas schedule.

Constants follow Appendix G of the Ethereum yellow paper as of the
Constantinople fork — the rules in force on the Kovan testnet in
February 2019 when the paper measured Table II.  Keeping the same fee
schedule is what lets this reproduction land in the paper's gas
ballpark (225 082 gas for ``deployVerifiedInstance()``, 37 745 for
``returnDisputeResolution()``).
"""

from __future__ import annotations

# --- flat opcode tiers -------------------------------------------------
G_ZERO = 0
G_BASE = 2
G_VERYLOW = 3
G_LOW = 5
G_MID = 8
G_HIGH = 10
G_JUMPDEST = 1

# --- state access ------------------------------------------------------
G_BALANCE = 400
G_SLOAD = 200
G_EXTCODE = 700
G_SSET = 20_000          # SSTORE zero -> non-zero
G_SRESET = 5_000         # SSTORE non-zero -> any
R_SCLEAR = 15_000        # refund for clearing a slot
R_SELFDESTRUCT = 24_000
G_SELFDESTRUCT = 5_000

# --- calls & creation --------------------------------------------------
G_CALL = 700
G_CALLVALUE = 9_000
G_CALLSTIPEND = 2_300
G_NEWACCOUNT = 25_000
G_CREATE = 32_000
G_CODEDEPOSIT = 200      # per byte of deployed runtime code
MAX_CODE_SIZE = 24_576   # EIP-170
CALL_DEPTH_LIMIT = 1_024

# --- hashing, memory, copying -------------------------------------------
G_SHA3 = 30
G_SHA3_WORD = 6
G_COPY = 3               # per word for *COPY opcodes
G_MEMORY = 3             # linear memory coefficient
G_QUAD_DIVISOR = 512     # quadratic memory coefficient divisor

# --- logs ----------------------------------------------------------------
G_LOG = 375
G_LOG_TOPIC = 375
G_LOG_DATA = 8           # per byte

# --- exponentiation -------------------------------------------------------
G_EXP = 10
G_EXP_BYTE = 50          # per byte of exponent (EIP-160)

# --- transactions ----------------------------------------------------------
G_TRANSACTION = 21_000
G_TX_CREATE = 32_000
G_TXDATA_ZERO = 4
G_TXDATA_NONZERO = 68

# --- precompiles -------------------------------------------------------------
G_ECRECOVER = 3_000
G_SHA256_BASE = 60
G_SHA256_WORD = 12
G_IDENTITY_BASE = 15
G_IDENTITY_WORD = 3


def memory_gas(words: int) -> int:
    """Total gas to have expanded memory to ``words`` 32-byte words.

    C_mem(a) = G_memory * a + a^2 / 512 (yellow paper, integer division).
    """
    return G_MEMORY * words + words * words // G_QUAD_DIVISOR


def memory_expansion_cost(current_words: int, new_words: int) -> int:
    """Marginal cost of growing memory from ``current_words`` words."""
    if new_words <= current_words:
        return 0
    return memory_gas(new_words) - memory_gas(current_words)


def words_for_bytes(num_bytes: int) -> int:
    """Number of 32-byte words needed to hold ``num_bytes`` bytes."""
    return (num_bytes + 31) // 32


def copy_gas(num_bytes: int) -> int:
    """Per-word copy surcharge used by CALLDATACOPY/CODECOPY/..."""
    return G_COPY * words_for_bytes(num_bytes)


def sha3_gas(num_bytes: int) -> int:
    """Dynamic cost of the SHA3 opcode over ``num_bytes`` of input."""
    return G_SHA3 + G_SHA3_WORD * words_for_bytes(num_bytes)


def intrinsic_gas(data: bytes, is_create: bool) -> int:
    """Intrinsic gas of a transaction (yellow paper eq. 60)."""
    gas = G_TRANSACTION
    if is_create:
        gas += G_TX_CREATE
    for byte in data:
        gas += G_TXDATA_ZERO if byte == 0 else G_TXDATA_NONZERO
    return gas


def sstore_gas_and_refund(current: int, new: int) -> tuple[int, int]:
    """(gas, refund) for an SSTORE under the pre-EIP-1283 net rule."""
    if current == 0 and new != 0:
        return G_SSET, 0
    if current != 0 and new == 0:
        return G_SRESET, R_SCLEAR
    return G_SRESET, 0


def max_call_gas(remaining: int) -> int:
    """EIP-150 '63/64 rule': gas forwardable to a child frame."""
    return remaining - remaining // 64
