"""Bytecode→Python transpiler: basic blocks compiled to closures.

The PR 3 dispatch table still pays one indexed load, one tuple unpack,
one gas compare and one Python call per executed opcode.  For hot
contract code (Submit/Challenge replay, dispute re-execution, batch
settlement) most of those opcodes are straight-line stack traffic whose
gas cost is a compile-time constant.  This module decomposes a bytecode
blob into **basic blocks** (boundaries at every valid JUMPDEST and
after every control-transfer/halt instruction), then compiles each
block into one Python function — a "superinstruction" that

* inlines the stack/arithmetic/jump handlers as straight-line Python
  over the frame's raw stack list (no per-op dispatch, no per-op
  function call),
* batches the *static* base-gas charges of each inlined run into a
  single compare/subtract, and
* bridges every stateful or dynamically-priced opcode (SLOAD, SSTORE,
  memory ops, SHA3, CALL/CREATE, LOGn, GAS, EXP, …) back to the PR 3
  dispatch handler it would have used anyway, with the gas counter
  synced across the bridge.

Gas identity is exact, not approximate: when a batched charge fails,
:func:`_out_of_gas` replays the per-opcode charges of the segment so
the fault surfaces at the same opcode, with the same ``needed N gas``
message and the same (zeroed) ``gas_remaining`` the interpreter
produces.  Stack faults inside a batched segment may observe a gas
counter that is ahead of the interpreter's, but every ``VMError``
consumes the frame's entire gas budget at the catch site, so the
resulting :class:`~repro.evm.vm.ExecutionResult` is bit-identical.

Blocks ending in a JUMP/JUMPI whose target is their own (JUMPDEST)
head compile into a ``while True``/``continue`` loop, removing even the
driver's dict lookup from tight loops.

Compiled programs are cached on the content-keyed
:class:`~repro.evm.analysis.CodeAnalysis` entry, behind a configurable
warm-up threshold (compile after N executions — init code that runs
once stays interpreted).  Any compile failure marks the blob as
uncompilable and the interpreter — which remains the oracle for the
differential property tests — serves it forever.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.evm import opcodes
from repro.evm.analysis import CodeAnalysis
from repro.evm.exceptions import (
    InvalidJump,
    OutOfGas,
    StackOverflow,
    StackUnderflow,
)
from repro.evm.stack import STACK_LIMIT, UINT256_MAX

#: Sentinel pc returned by compiled blocks to signal a clean halt.
HALT_PC = -1

_FAILED = object()  # marks a CodeAnalysis whose compile attempt failed

# ----------------------------------------------------------------------
# Configuration (process-wide defaults; per-EVM override via EVM(jit=))
# ----------------------------------------------------------------------

#: Compile a blob once it has executed this many times on the untraced
#: path; the (N+1)-th execution runs compiled.  Overridable through the
#: ``REPRO_EVM_JIT_WARMUP`` environment variable (CI's jit-smoke job
#: sets it to 0 so every test execution exercises compiled code).
DEFAULT_WARMUP = 2

_enabled = os.environ.get("REPRO_EVM_JIT", "1") != "0"
_warmup = int(os.environ.get("REPRO_EVM_JIT_WARMUP", DEFAULT_WARMUP))


def configure(enabled: Optional[bool] = None,
              warmup: Optional[int] = None) -> None:
    """Adjust the process-wide JIT switches (``--no-jit`` plumbing)."""
    global _enabled, _warmup
    if enabled is not None:
        _enabled = bool(enabled)
    if warmup is not None:
        if warmup < 0:
            raise ValueError("warm-up threshold cannot be negative")
        _warmup = int(warmup)


def enabled() -> bool:
    """Whether frames without an explicit override may run compiled."""
    return _enabled


def warmup_threshold() -> int:
    """Executions a blob must accumulate before it is compiled."""
    return _warmup


# ----------------------------------------------------------------------
# Statistics (the evm.cache.* transpiler series)
# ----------------------------------------------------------------------

class JitStats:
    """Counters for the transpiler cache and its execution split."""

    __slots__ = ("programs", "blocks", "failures", "compiled_runs",
                 "interpreted_runs", "bailouts")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (bench isolation)."""
        self.programs = 0          # blobs successfully compiled
        self.blocks = 0            # basic blocks compiled in total
        self.failures = 0          # blobs that failed to compile
        self.compiled_runs = 0     # frame runs served by compiled code
        self.interpreted_runs = 0  # untraced frame runs interpreted
        self.bailouts = 0          # mid-run falls back to the interpreter

    def snapshot(self) -> dict:
        """Plain-dict view for telemetry and tests."""
        return {name: getattr(self, name) for name in self.__slots__}


STATS = JitStats()


def reset_stats() -> None:
    """Reset the module counters (benchmarks measure cold paths)."""
    STATS.reset()


# ----------------------------------------------------------------------
# Basic-block decomposition
# ----------------------------------------------------------------------

# Instructions that end a basic block by transferring control away.
_TERMINATORS = frozenset((
    opcodes.STOP, opcodes.JUMP, opcodes.JUMPI, opcodes.RETURN,
    opcodes.REVERT, opcodes.SELFDESTRUCT, opcodes.INVALID,
))

_PUSH1, _PUSH32 = opcodes.PUSH1, opcodes.PUSH32
_DUP1, _DUP16 = opcodes.DUP1, opcodes.DUP16
_SWAP1, _SWAP16 = opcodes.SWAP1, opcodes.SWAP16


def split_blocks(code: bytes, analysis: CodeAnalysis) -> list[tuple]:
    """Decompose ``code`` into ``(start_pc, [(pc, op, next_pc), …])``.

    Boundaries follow the interpreter's reachability rules: a block
    starts at pc 0, at every valid JUMPDEST (the only dynamic-jump
    landing sites), and at the fallthrough pc after a terminator; it
    ends at a terminator, just before the next JUMPDEST, or at the end
    of the code.  PUSH immediates are skipped exactly as the linear
    JUMPDEST-validity scan skips them, so both views agree on what is
    an instruction.
    """
    length = len(code)
    push_info = analysis.push_info
    jump_dests = analysis.jump_dests
    blocks: list[tuple] = []
    start = 0
    instrs: list[tuple[int, int, int]] = []
    pc = 0
    while pc < length:
        if pc in jump_dests and pc != start:
            blocks.append((start, instrs))
            start, instrs = pc, []
        op = code[pc]
        next_pc = push_info[pc][1] if _PUSH1 <= op <= _PUSH32 else pc + 1
        instrs.append((pc, op, next_pc))
        if op in _TERMINATORS or op not in opcodes.OPCODES:
            blocks.append((start, instrs))
            start, instrs = next_pc, []
        pc = next_pc
    if instrs or start == 0:
        blocks.append((start, instrs))
    return [block for block in blocks if block[1]]


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------

def _out_of_gas(frame, gas: int, costs: tuple[int, ...]) -> None:
    """Replay a batched segment's per-opcode charges to fault exactly.

    Called only when ``gas`` cannot cover ``sum(costs)``, so one charge
    is guaranteed to fail — at the same opcode, with the same message
    and the same zeroed ``gas_remaining`` as the interpreter.
    """
    for cost in costs:
        if cost > gas:
            frame.gas_remaining = 0
            raise OutOfGas(f"needed {cost} gas")
        gas -= cost
    raise AssertionError("segment replay did not fault")


class CompiledProgram:
    """One blob's compiled blocks, keyed by their start pc."""

    __slots__ = ("blocks", "code_length")

    def __init__(self, blocks: dict, code_length: int) -> None:
        self.blocks = blocks
        self.code_length = code_length


# Inline templates for the pure stack/arithmetic handlers.  ``{pop2}``
# style fragments are assembled below; each template is a list of
# source lines at loop-body indentation with `s` bound to the frame's
# raw stack list and the gas charge already batched.
_POP2 = [
    "try:",
    "    a = s.pop(); b = s.pop()",
    "except IndexError:",
    "    raise _SU('pop from empty stack') from None",
]
_POP3 = [
    "try:",
    "    a = s.pop(); b = s.pop(); c = s.pop()",
    "except IndexError:",
    "    raise _SU('pop from empty stack') from None",
]
_SIGNED_AB = [
    "sa = a - T if a & SB else a",
    "sb = b - T if b & SB else b",
]

_BINOPS = {
    opcodes.ADD: _POP2 + ["s.append((a + b) & M)"],
    opcodes.MUL: _POP2 + ["s.append((a * b) & M)"],
    opcodes.SUB: _POP2 + ["s.append((a - b) & M)"],
    opcodes.DIV: _POP2 + ["s.append(a // b if b else 0)"],
    opcodes.MOD: _POP2 + ["s.append(a % b if b else 0)"],
    opcodes.LT: _POP2 + ["s.append(1 if a < b else 0)"],
    opcodes.GT: _POP2 + ["s.append(1 if a > b else 0)"],
    opcodes.EQ: _POP2 + ["s.append(1 if a == b else 0)"],
    opcodes.AND: _POP2 + ["s.append(a & b)"],
    opcodes.OR: _POP2 + ["s.append(a | b)"],
    opcodes.XOR: _POP2 + ["s.append(a ^ b)"],
    opcodes.BYTE: _POP2 + [
        "s.append((b >> (8 * (31 - a))) & 0xFF if a < 32 else 0)",
    ],
    opcodes.SHL: _POP2 + ["s.append((b << a) & M if a < 256 else 0)"],
    opcodes.SHR: _POP2 + ["s.append(b >> a if a < 256 else 0)"],
    opcodes.SAR: _POP2 + [
        "sb = b - T if b & SB else b",
        "s.append((sb >> (a if a < 255 else 255)) & M)",
    ],
    opcodes.SDIV: _POP2 + [
        "if b:",
    ] + ["    " + line for line in _SIGNED_AB] + [
        "    q = abs(sa) // abs(sb)",
        "    s.append((q if (sa < 0) == (sb < 0) else -q) & M)",
        "else:",
        "    s.append(0)",
    ],
    opcodes.SMOD: _POP2 + [
        "if b:",
    ] + ["    " + line for line in _SIGNED_AB] + [
        "    r = abs(sa) % abs(sb)",
        "    s.append((r if sa >= 0 else -r) & M)",
        "else:",
        "    s.append(0)",
    ],
    opcodes.SLT: _POP2 + _SIGNED_AB + ["s.append(1 if sa < sb else 0)"],
    opcodes.SGT: _POP2 + _SIGNED_AB + ["s.append(1 if sa > sb else 0)"],
    opcodes.ADDMOD: _POP3 + ["s.append((a + b) % c if c else 0)"],
    opcodes.MULMOD: _POP3 + ["s.append((a * b) % c if c else 0)"],
    opcodes.ISZERO: [
        "if not s:",
        "    raise _SU('pop from empty stack')",
        "s[-1] = 1 if s[-1] == 0 else 0",
    ],
    opcodes.NOT: [
        "if not s:",
        "    raise _SU('pop from empty stack')",
        "s[-1] = ~s[-1] & M",
    ],
    opcodes.POP: [
        "try:",
        "    s.pop()",
        "except IndexError:",
        "    raise _SU('pop from empty stack') from None",
    ],
    opcodes.SIGNEXTEND: _POP2 + [
        "if a < 31:",
        "    bit = (a + 1) * 8 - 1",
        "    if b & (1 << bit):",
        "        b |= M ^ ((1 << (bit + 1)) - 1)",
        "    else:",
        "        b &= (1 << (bit + 1)) - 1",
        "s.append(b)",
    ],
}

_OVERFLOW_CHECK = [
    f"if len(s) >= {STACK_LIMIT}:",
    f"    raise _SO('stack limit of {STACK_LIMIT} exceeded')",
]


def _emit_inline(pc: int, op: int, push_info: dict) -> Optional[list[str]]:
    """Source lines for one inlinable opcode, or None to bridge it."""
    lines = _BINOPS.get(op)
    if lines is not None:
        return list(lines)
    if _PUSH1 <= op <= _PUSH32:
        value = push_info[pc][0]
        return _OVERFLOW_CHECK + [f"s.append({value})"]
    if _DUP1 <= op <= _DUP16:
        position = op - _DUP1 + 1
        return [
            "n = len(s)",
            f"if {position} > n:",
            f"    raise _SU('DUP{position} on stack of %d' % n)",
        ] + _OVERFLOW_CHECK + [f"s.append(s[-{position}])"]
    if _SWAP1 <= op <= _SWAP16:
        position = op - _SWAP1 + 1
        return [
            "n = len(s)",
            f"if {position} >= n:",
            f"    raise _SU('SWAP{position} on stack of %d' % n)",
            f"s[-1], s[-{position + 1}] = s[-{position + 1}], s[-1]",
        ]
    if op == opcodes.PC:
        return _OVERFLOW_CHECK + [f"s.append({pc})"]
    if op == opcodes.JUMPDEST:
        return []
    return None


def _emit_jump(op: int, start: int, next_pc: int, code_length: int,
               self_loop: bool) -> list[str]:
    """Terminator code for JUMP/JUMPI (base gas already batched)."""
    take = [
        "if dest in d:",
        "    frame.gas_remaining = gas",
        "    return dest",
        "raise _IJ('jump to %d' % dest)",
    ]
    if self_loop:
        take = [f"if dest == {start}:", "    continue"] + take
    if op == opcodes.JUMP:
        return [
            "try:",
            "    dest = s.pop()",
            "except IndexError:",
            "    raise _SU('pop from empty stack') from None",
        ] + take
    fall = (["frame.gas_remaining = gas", f"return {next_pc}"]
            if next_pc < code_length
            else ["frame.gas_remaining = gas", f"return {HALT_PC}"])
    return [
        "try:",
        "    dest = s.pop(); cond = s.pop()",
        "except IndexError:",
        "    raise _SU('pop from empty stack') from None",
        "if cond:",
    ] + ["    " + line for line in take] + fall


def _compile_block(start: int, instrs: list, analysis: CodeAnalysis,
                   code_length: int, name: str,
                   namespace: dict) -> list[str]:
    """Emit the source of one block function into ``namespace`` terms.

    Returns the function's source lines.  Consecutive inlinable
    opcodes form a *segment* whose static base gas is charged with one
    compare; bridged opcodes charge individually and sync the local
    gas counter around the handler call.
    """
    from repro.evm import vm as _vm

    dispatch = _vm._DISPATCH
    push_info = analysis.push_info
    body: list[str] = []

    # Segment accumulator: (cost tuple, lines) flushed before any
    # bridged opcode and at block end.
    seg_costs: list[int] = []
    seg_lines: list[str] = []

    def flush_segment() -> None:
        """Emit the pending inlined segment with one batched gas check."""
        if not seg_costs and not seg_lines:
            return
        total = sum(seg_costs)
        if total:
            costs_name = f"_c{len(namespace)}"
            namespace[costs_name] = tuple(seg_costs)
            body.append(f"if gas < {total}:")
            body.append(f"    _oog(frame, gas, {costs_name})")
            body.append(f"gas -= {total}")
        body.extend(seg_lines)
        seg_costs.clear()
        seg_lines.clear()

    last_pc = instrs[-1][0]
    self_loop = start in analysis.jump_dests

    for pc, op, next_pc in instrs:
        base_gas, handler = dispatch[op]
        is_last = pc == last_pc
        if op in (opcodes.JUMP, opcodes.JUMPI) and is_last:
            seg_costs.append(base_gas)
            seg_lines.extend(
                _emit_jump(op, start, next_pc, code_length, self_loop))
            flush_segment()
            break
        if op == opcodes.STOP:
            seg_lines.extend([
                "frame.output = b''",
                "frame.gas_remaining = gas",
                f"return {HALT_PC}",
            ])
            flush_segment()
            break
        inline = _emit_inline(pc, op, push_info)
        if inline is not None:
            seg_costs.append(base_gas)
            seg_lines.extend(inline)
            if is_last:
                # Fallthrough boundary (next pc is a JUMPDEST) or the
                # code simply ends (implicit STOP).
                seg_lines.append("frame.gas_remaining = gas")
                target = next_pc if next_pc < code_length else HALT_PC
                seg_lines.append(f"return {target}")
                flush_segment()
            continue
        # Bridged opcode: individual charge, sync, call the PR 3
        # handler, resync.  Terminator handlers halt or raise.
        flush_segment()
        handler_name = f"_h{op:02x}"
        namespace[handler_name] = handler
        if base_gas:
            body.append(f"if gas < {base_gas}:")
            body.append("    frame.gas_remaining = 0")
            body.append(f"    raise _OOG('needed {base_gas} gas')")
            body.append(f"gas -= {base_gas}")
        body.append("frame.gas_remaining = gas")
        body.append(f"frame.pc = {pc}")
        body.append(f"{handler_name}(vm, frame, {op})")
        if op in _TERMINATORS or op not in opcodes.OPCODES:
            body.append(f"return {HALT_PC}")
            break
        body.append("gas = frame.gas_remaining")
        if is_last:
            target = next_pc if next_pc < code_length else HALT_PC
            body.append("frame.gas_remaining = gas")
            body.append(f"return {target}")
    flush_segment()

    lines = [f"def {name}(vm, frame, s):",
             "    gas = frame.gas_remaining",
             "    while True:"]
    lines.extend("        " + line for line in body)
    return lines


def compile_program(code: bytes,
                    analysis: CodeAnalysis) -> Optional[CompiledProgram]:
    """Compile every basic block of ``code``; None on failure.

    The result (or the failure) is memoised on ``analysis``, which
    lives in the content-keyed ``analyze_code`` LRU — recompilation
    only ever happens after a cache eviction.
    """
    try:
        blocks = split_blocks(code, analysis)
        namespace: dict = {
            "M": UINT256_MAX,
            "T": 1 << 256,
            "SB": 1 << 255,
            "d": analysis.jump_dests,
            "_SU": StackUnderflow,
            "_SO": StackOverflow,
            "_IJ": InvalidJump,
            "_OOG": OutOfGas,
            "_oog": _out_of_gas,
        }
        source: list[str] = []
        names: list[tuple[int, str]] = []
        for index, (start, instrs) in enumerate(blocks):
            name = f"_b{index}"
            source.extend(_compile_block(start, instrs, analysis,
                                         len(code), name, namespace))
            names.append((start, name))
        exec("\n".join(source), namespace)  # noqa: S102 — generated here
        program = CompiledProgram(
            blocks={start: namespace[name] for start, name in names},
            code_length=len(code),
        )
    except Exception:
        analysis.jit_program = _FAILED
        STATS.failures += 1
        return None
    analysis.jit_program = program
    STATS.programs += 1
    STATS.blocks += len(program.blocks)
    return program


def acquire_program(code: bytes,
                    analysis: CodeAnalysis) -> Optional[CompiledProgram]:
    """Per-run entry point: count the execution, compile when warm.

    Returns the compiled program to run, or None when the frame should
    stay on the interpreter (cold blob or failed compile).
    """
    program = analysis.jit_program
    if program is None:
        analysis.exec_count += 1
        if analysis.exec_count <= _warmup:
            STATS.interpreted_runs += 1
            return None
        program = compile_program(code, analysis)
        if program is None:
            STATS.interpreted_runs += 1
            return None
    elif program is _FAILED:
        STATS.interpreted_runs += 1
        return None
    STATS.compiled_runs += 1
    return program


def cache_info() -> dict:
    """Transpiler cache statistics for the ``evm.cache.*`` metrics."""
    return STATS.snapshot()
