"""EVM linear memory with word-granular, gas-metered expansion."""

from __future__ import annotations

from repro.evm import gas


class Memory:
    """Byte-addressable memory that grows in 32-byte words.

    Expansion cost is *not* charged here; :meth:`expansion_cost` reports
    the marginal gas so the interpreter can charge before growing.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data = bytearray()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def word_count(self) -> int:
        """Current size in 32-byte words."""
        return len(self._data) // 32

    def expansion_cost(self, offset: int, size: int) -> int:
        """Marginal gas to make ``[offset, offset+size)`` addressable."""
        if size == 0:
            return 0
        new_words = gas.words_for_bytes(offset + size)
        return gas.memory_expansion_cost(self.word_count, new_words)

    def extend(self, offset: int, size: int) -> None:
        """Grow memory (zero-filled) to cover ``[offset, offset+size)``."""
        if size == 0:
            return
        needed = gas.words_for_bytes(offset + size) * 32
        if needed > len(self._data):
            self._data.extend(b"\x00" * (needed - len(self._data)))

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes; the range must already be extended."""
        if size == 0:
            return b""
        return bytes(self._data[offset:offset + size])

    def write(self, offset: int, data: bytes) -> None:
        """Write bytes at ``offset``; the range must already be extended."""
        if not data:
            return
        self._data[offset:offset + len(data)] = data

    def read_word(self, offset: int) -> int:
        """Read a 32-byte big-endian word as an int."""
        return int.from_bytes(self.read(offset, 32), "big")

    def write_word(self, offset: int, value: int) -> None:
        """Write an int as a 32-byte big-endian word."""
        self.write(offset, value.to_bytes(32, "big"))

    def snapshot(self) -> bytes:
        """Copy of the full memory contents (for tests/tracing)."""
        return bytes(self._data)
