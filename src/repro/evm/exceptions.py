"""Exception hierarchy for EVM execution.

``VMError`` subclasses consume all remaining gas in the frame (as on
Ethereum), while ``Revert`` refunds remaining gas and carries return
data — the distinction matters for the paper's gas accounting.
"""

from __future__ import annotations

from repro.exceptions import ReproError


class EvmError(ReproError):
    """Base class for anything the EVM can raise."""


class VMError(EvmError):
    """An exceptional halt: consumes all gas remaining in the frame."""


class OutOfGas(VMError):
    """Gas counter went below zero."""


class StackUnderflow(VMError):
    """An opcode popped more items than the stack holds."""


class StackOverflow(VMError):
    """The stack exceeded its 1024-item limit."""


class InvalidJump(VMError):
    """JUMP/JUMPI target is not a JUMPDEST."""


class InvalidOpcode(VMError):
    """Unknown or unimplemented opcode byte."""


class InvalidInstruction(VMError):
    """Execution of the designated INVALID (0xfe) opcode."""


class CallDepthExceeded(VMError):
    """Message-call depth went past 1024."""


class InsufficientFunds(VMError):
    """Value transfer exceeds the sender's balance."""


class WriteProtection(VMError):
    """State modification attempted inside a STATICCALL context."""


class CodeSizeExceeded(VMError):
    """Deployed code larger than the EIP-170 24576-byte limit."""


class Revert(EvmError):
    """REVERT opcode: roll back state but refund remaining gas."""

    def __init__(self, data: bytes = b"") -> None:
        super().__init__(f"execution reverted ({len(data)} bytes of return data)")
        self.data = data
