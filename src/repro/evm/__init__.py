"""EVM substrate: a Constantinople-era Ethereum Virtual Machine.

Stack machine, gas metering (the fee schedule the paper's Table II was
measured under), nested calls, CREATE with code deposit, precompiles,
and an assembler/disassembler pair.
"""

from repro.evm.assembler import Program, assemble, disassemble
from repro.evm.exceptions import (
    EvmError,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
    VMError,
)
from repro.evm.vm import (
    EVM,
    BlockContext,
    ExecutionResult,
    Log,
    Message,
    compute_contract_address,
)

__all__ = [
    "EVM",
    "BlockContext",
    "ExecutionResult",
    "Log",
    "Message",
    "Program",
    "assemble",
    "disassemble",
    "compute_contract_address",
    "EvmError",
    "VMError",
    "OutOfGas",
    "Revert",
    "InvalidJump",
    "InvalidOpcode",
    "StackOverflow",
    "StackUnderflow",
]
