"""The unified exception hierarchy.

Every public exception raised by this package — chain, protocol,
compiler, off-chain, crypto and EVM families alike — derives from
:class:`ReproError`, so callers embedding the simulator or the protocol
engine can catch one type::

    try:
        engine.run()
    except ReproError as exc:
        ...  # anything this package raises on purpose

Concrete classes keep their historical stdlib bases (``ValueError``,
``RuntimeError``, ``KeyError``) so existing ``except`` clauses keep
working.  This module stays import-free at the bottom of the layering;
the concrete families live next to the code that raises them and are
lazily re-exported here for convenience.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every exception deliberately raised by ``repro``."""


# Lazy re-exports: ``from repro.exceptions import ChainError`` works
# without this bottom-layer module importing the upper layers eagerly.
_REEXPORTS = {
    # chain family
    "ChainError": "repro.chain.blockchain",
    "MempoolError": "repro.chain.mempool",
    "TransactionError": "repro.chain.transaction",
    "InvalidTransaction": "repro.chain.processor",
    "TransactionFailed": "repro.chain.simulator",
    "CallFailed": "repro.chain.simulator",
    "SimulatorConfigError": "repro.chain.simulator",
    "SettlementConfigError": "repro.chain.simulator",
    "AbiLookupError": "repro.chain.contract",
    # protocol family
    "ProtocolError": "repro.core.exceptions",
    "SplitError": "repro.core.exceptions",
    "SigningError": "repro.core.exceptions",
    "StageError": "repro.core.exceptions",
    "DisputeError": "repro.core.exceptions",
    "AgreementError": "repro.core.exceptions",
    "SettlementError": "repro.core.exceptions",
    "EngineError": "repro.core.exceptions",
    # compiler family
    "SolisError": "repro.lang.errors",
    # off-chain family
    "OffchainExecutionError": "repro.offchain.executor",
    "WhisperError": "repro.offchain.whisper",
    # crypto family
    "RlpError": "repro.crypto.rlp",
    "AbiError": "repro.crypto.abi",
    "SignatureError": "repro.crypto.ecdsa",
    # EVM family
    "EvmError": "repro.evm.exceptions",
    "VMError": "repro.evm.exceptions",
}

__all__ = ["ReproError", *sorted(_REEXPORTS)]


def __getattr__(name: str):
    module_name = _REEXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
