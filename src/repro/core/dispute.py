"""Standalone dispute resolution driver.

:class:`OnOffChainProtocol` handles disputes for protocol-managed
games; this module exposes the same Dispute/Resolve flow for users who
deployed the split contracts themselves (e.g. from CLI-generated
sources) and only hold a signed copy — the minimum the paper requires
of an honest participant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.contract import ContractABI, DeployedContract
from repro.chain.receipt import Receipt
from repro.chain.simulator import EthereumSimulator, SimAccount
from repro.core.exceptions import DisputeError
from repro.crypto.keys import Address
from repro.offchain.signing import SignedCopy


@dataclass
class DisputeResolution:
    """Everything that happened during one dispute."""

    instance: DeployedContract
    deploy_receipt: Receipt
    resolve_receipt: Receipt
    outcome: object

    @property
    def total_gas(self) -> int:
        """Combined gas of the two dispute transactions."""
        return self.deploy_receipt.gas_used + self.resolve_receipt.gas_used


def resolve_dispute(simulator: EthereumSimulator,
                    onchain: DeployedContract,
                    offchain_abi: ContractABI,
                    signed_copy: SignedCopy,
                    challenger: SimAccount,
                    participants: list[Address] | None = None,
                    gas_limit: int = 6_000_000) -> DisputeResolution:
    """Run the full Dispute/Resolve stage from a signed copy.

    1. (optionally) pre-verify the copy locally against the expected
       participant list — fail fast before paying any gas;
    2. ``deployVerifiedInstance(bytecode, v0, r0, s0, ...)``;
    3. ``returnDisputeResolution(onchain_address)`` on the instance;
    4. read back ``resolvedOutcome``.
    """
    if participants is not None and not signed_copy.verify(participants):
        raise DisputeError(
            "the signed copy does not verify against the expected "
            "participant list — it would be rejected on-chain too"
        )

    deploy_receipt = onchain.transact(
        "deployVerifiedInstance", signed_copy.bytecode,
        *signed_copy.vrs_arguments(),
        sender=challenger, gas_limit=gas_limit,
    )
    instance_address = Address(onchain.call("deployedAddr"))
    if not instance_address:
        raise DisputeError(
            "deployVerifiedInstance succeeded but recorded no instance"
        )
    instance = simulator.contract_at(instance_address, offchain_abi)

    resolve_receipt = instance.transact(
        "returnDisputeResolution", onchain.address,
        sender=challenger, gas_limit=gas_limit,
    )
    outcome = onchain.call("resolvedOutcome")
    return DisputeResolution(
        instance=instance,
        deploy_receipt=deploy_receipt,
        resolve_receipt=resolve_receipt,
        outcome=outcome,
    )
