"""Gas and privacy accounting for the two execution models.

Produces the quantities behind the paper's evaluation artefacts:

* per-stage on-chain gas (Fig. 2 stages, Table II rows);
* miner-workload comparison between the all-on-chain model and the
  hybrid model (Fig. 1);
* privacy exposure: how many bytes of heavy/private logic, and how many
  function signatures, each model reveals on the public chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro import obs
from repro.chain.receipt import Receipt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class GasEntry:
    """One recorded on-chain action."""

    stage: str
    label: str
    gas: int
    actor: str = ""
    block_number: int = -1


@dataclass
class GasLedger:
    """Accumulates on-chain gas per protocol stage."""

    entries: list[GasEntry] = field(default_factory=list)

    def record(self, stage: str, label: str, receipt: Receipt,
               actor: str = "") -> GasEntry:
        """Record a mined receipt's gas under ``stage``/``label``."""
        return self.record_raw(
            stage, label, receipt.gas_used, actor=actor,
            block_number=receipt.block_number,
        )

    def record_raw(self, stage: str, label: str, gas: int,
                   actor: str = "", block_number: int = -1) -> GasEntry:
        """Record a gas figure that does not come from a receipt.

        ``block_number`` defaults to -1 (unknown) but callers that do
        know the block — e.g. anything holding a receipt or the mined
        block itself — should pass it so per-block attribution stays
        intact.
        """
        entry = GasEntry(stage=stage, label=label, gas=gas, actor=actor,
                         block_number=block_number)
        self.entries.append(entry)
        if obs.enabled():
            obs.inc(obs.names.METRIC_PROTOCOL_STAGE_GAS, gas, stage=stage)
        return entry

    def total(self, stage: str | None = None) -> int:
        """Total recorded gas, optionally restricted to one stage."""
        return sum(
            entry.gas for entry in self.entries
            if stage is None or entry.stage == stage
        )

    def by_stage(self) -> dict[str, int]:
        """Gas totals keyed by protocol stage."""
        totals: dict[str, int] = {}
        for entry in self.entries:
            totals[entry.stage] = totals.get(entry.stage, 0) + entry.gas
        return totals

    def by_label(self) -> dict[str, int]:
        """Gas totals keyed by entry label."""
        totals: dict[str, int] = {}
        for entry in self.entries:
            totals[entry.label] = totals.get(entry.label, 0) + entry.gas
        return totals

    def fingerprint(self) -> tuple[tuple[str, str, int, str], ...]:
        """Ordered (stage, label, gas, actor) tuples, block numbers
        excluded — two runs of the same session are equivalent when
        their fingerprints match, regardless of how the transactions
        were packed into blocks."""
        return tuple(
            (entry.stage, entry.label, entry.gas, entry.actor)
            for entry in self.entries
        )


@dataclass(frozen=True)
class PrivacyReport:
    """What each model exposes on the public chain."""

    model: str
    code_bytes_on_chain: int
    heavy_code_bytes_on_chain: int
    function_signatures_exposed: tuple[str, ...]
    heavy_signatures_exposed: tuple[str, ...]

    @property
    def heavy_logic_hidden(self) -> bool:
        """True when no heavy/private code reached the chain."""
        return self.heavy_code_bytes_on_chain == 0


def privacy_report_all_on_chain(whole_runtime: bytes,
                                all_signatures: Iterable[str],
                                heavy_signatures: Iterable[str],
                                heavy_code_bytes: int) -> PrivacyReport:
    """Exposure under the all-on-chain model: everything is public."""
    return PrivacyReport(
        model="all-on-chain",
        code_bytes_on_chain=len(whole_runtime),
        heavy_code_bytes_on_chain=heavy_code_bytes,
        function_signatures_exposed=tuple(all_signatures),
        heavy_signatures_exposed=tuple(heavy_signatures),
    )


def privacy_report_hybrid(onchain_runtime: bytes,
                          onchain_signatures: Iterable[str],
                          dispute_happened: bool,
                          offchain_runtime: bytes,
                          heavy_signatures: Iterable[str]) -> PrivacyReport:
    """Exposure under the hybrid model.

    Heavy logic stays off-chain *unless* a dispute forces the signed
    copy onto the chain — exactly the paper's trade-off.
    """
    exposed_heavy_bytes = len(offchain_runtime) if dispute_happened else 0
    exposed_heavy_sigs = tuple(heavy_signatures) if dispute_happened else ()
    return PrivacyReport(
        model="hybrid-on/off-chain",
        code_bytes_on_chain=len(onchain_runtime) + exposed_heavy_bytes,
        heavy_code_bytes_on_chain=exposed_heavy_bytes,
        function_signatures_exposed=tuple(onchain_signatures)
        + exposed_heavy_sigs,
        heavy_signatures_exposed=exposed_heavy_sigs,
    )


@dataclass(frozen=True)
class EngineMetrics:
    """Fleet-level accounting from one :class:`SessionEngine` run.

    Since the observability layer landed this is a thin façade: the
    engine counts into a :class:`~repro.obs.metrics.MetricsRegistry`
    (the ``engine.*`` instruments of the telemetry contract) and this
    record is materialised from it via :meth:`from_registry`.
    ``blocks_mined`` / ``transactions`` count only what the engine
    itself scheduled; ``disputes`` counts sessions that settled through
    the Dispute/Resolve path rather than ``finalizeResult``.
    """

    sessions: int
    disputes: int
    blocks_mined: int
    transactions: int
    total_gas: int
    wall_clock_seconds: float
    mining: str

    @classmethod
    def from_registry(cls, registry: "MetricsRegistry", *, mining: str,
                      total_gas: int) -> "EngineMetrics":
        """Materialise the façade from the ``engine.*`` instruments."""
        def counter(name: str) -> int:
            """Total of one engine counter (0 when undeclared)."""
            instrument = registry.get(name)
            return int(instrument.total()) if instrument else 0

        wall = registry.get(obs.names.METRIC_ENGINE_WALL_SECONDS)
        return cls(
            sessions=counter(obs.names.METRIC_ENGINE_SESSIONS),
            disputes=counter(obs.names.METRIC_ENGINE_DISPUTES),
            blocks_mined=counter(obs.names.METRIC_ENGINE_BLOCKS),
            transactions=counter(obs.names.METRIC_ENGINE_TXS),
            total_gas=total_gas,
            wall_clock_seconds=float(wall.value()) if wall else 0.0,
            mining=mining,
        )

    @property
    def txs_per_block(self) -> float:
        """Average transactions packed per mined block."""
        if self.blocks_mined == 0:
            return 0.0
        return self.transactions / self.blocks_mined

    @property
    def gas_per_session(self) -> float:
        """Average on-chain gas per completed session."""
        if self.sessions == 0:
            return 0.0
        return self.total_gas / self.sessions

    @property
    def dispute_rate(self) -> float:
        """Fraction of sessions settled through a dispute."""
        if self.sessions == 0:
            return 0.0
        return self.disputes / self.sessions


def fleet_fingerprint(drivers: Iterable) -> str:
    """One hex digest over a whole fleet's settlement evidence.

    Folds every session's terminal stage and ordered
    :meth:`GasLedger.fingerprint` into a single keccak digest, sorted
    by session id so scheduling order cannot matter.  Two fleet runs —
    in-process or across processes over the net transport — are
    equivalent exactly when their fleet fingerprints match; the
    networked identity gates (CI's ``network-smoke``, the
    ``bench_network`` exit-2 gate) compare this value.
    """
    from repro.crypto import keccak256

    parts = [
        f"{driver.session_id}:{driver.protocol.stage.value}:"
        f"{driver.protocol.ledger.fingerprint()}"
        for driver in sorted(drivers, key=lambda d: d.session_id)
    ]
    return keccak256("\n".join(parts).encode("utf-8")).hex()


@dataclass(frozen=True)
class ModelComparison:
    """Fig. 1: miner gas under both execution models."""

    all_on_chain_gas: int
    hybrid_gas: int

    @property
    def gas_saved(self) -> int:
        """Gas the hybrid model avoided putting on-chain."""
        return self.all_on_chain_gas - self.hybrid_gas

    @property
    def savings_ratio(self) -> float:
        """Saved gas as a fraction of the all-on-chain cost."""
        if self.all_on_chain_gas == 0:
            return 0.0
        return self.gas_saved / self.all_on_chain_gas
