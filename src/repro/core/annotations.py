"""Split specification: how a whole contract maps onto the protocol.

The paper's mechanism needs three pieces of application knowledge that
cannot be inferred from code alone:

* which state variable holds the participants (``address[N]``);
* which heavy/private function computes the off-chain *result*
  (``reveal()`` in the paper);
* which light/public function applies a result to on-chain state
  (``reassign()`` — the paper calls it from the loser voluntarily and
  re-uses its effect inside ``enforceDisputeResolution``).

``SplitSpec`` carries exactly that, plus the challenge-period length
for the Submit/Challenge stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classify import FunctionCategory


@dataclass(frozen=True)
class SplitSpec:
    """Application-provided directives for splitting one contract.

    ``security_deposit`` (wei, 0 disables) implements the paper's §IV
    remark: "it should be mandatory for each participant to pay
    security deposit so that the honest participant paying for dispute
    resolution can receive compensation from dishonest participants."
    When enabled, padding adds ``paySecurityDeposit()`` /
    ``withdrawSecurityDeposit()``, gates ``deployVerifiedInstance()``
    on all deposits being paid (the ``amountMet`` modifier of
    Algorithm 2), and forwards the overturned proposer's deposit to the
    challenger inside ``enforceDisputeResolution()``.
    """

    participants_var: str
    result_function: str
    settle_function: str
    challenge_period: int = 3_600  # seconds; 0 disables submit/challenge
    security_deposit: int = 0      # wei per participant; 0 disables
    annotations: dict[str, FunctionCategory] = field(default_factory=dict)
    gas_threshold: int = 100_000

    def __post_init__(self) -> None:
        if self.challenge_period < 0:
            raise ValueError("challenge_period cannot be negative")
        if self.security_deposit < 0:
            raise ValueError("security_deposit cannot be negative")
        if self.result_function == self.settle_function:
            raise ValueError(
                "result_function and settle_function must differ"
            )
