"""The four-stage on/off-chain protocol orchestration (§III, Fig. 2).

``OnOffChainProtocol`` drives one whole contract through:

1. **Split/Generate** — classify functions, split, pad the extra
   dispute functions, compile both halves deterministically;
2. **Deploy/Sign** — deploy the on-chain contract; every participant
   signs keccak256(off-chain bytecode) and exchanges signatures over
   the Whisper bus until everyone holds a fully signed copy;
3. **Submit/Challenge** — participants execute the off-chain contract
   locally; a representative submits the result on-chain; a challenge
   window lets any participant police the submission;
4. **Dispute/Resolve** — on a false submission (or a refusal to settle)
   any honest participant reveals the signed copy via
   ``deployVerifiedInstance()`` and forces the true result through
   ``returnDisputeResolution()`` → ``enforceDisputeResolution()``.

All on-chain gas is recorded into a :class:`GasLedger` keyed by stage,
which the benchmarks consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

from repro import obs
from repro.chain.contract import DeployedContract
from repro.chain.receipt import Receipt
from repro.chain.simulator import EthereumSimulator
from repro.core.analytics import GasLedger
from repro.core.annotations import SplitSpec
from repro.core.exceptions import (
    AgreementError,
    ChallengeWindowClosed,
    DisputeError,
    SigningError,
    StageError,
)
from repro.core.participants import Participant
from repro.core.splitter import SplitContracts, split_contract
from repro.crypto import keccak256, rlp
from repro.crypto.ecdsa import Signature
from repro.crypto.keys import Address
from repro.lang.compiler import CompilationResult, compile_source
from repro.offchain.executor import OffchainExecutor, OffchainRun
from repro.offchain.signing import (
    SignedCopy,
    assemble_signed_copy,
    sign_bytecode,
)
from repro.offchain.whisper import WhisperBus

#: Bus topic where protocols ask remote
#: :class:`~repro.net.participant.ParticipantNode` processes for
#: Deploy/Sign signatures.  Lives here (not in ``repro.net``) so the
#: net layer depends on the core and never the other way around.
SIGN_REQUEST_TOPIC = "sign-request"

#: Wall-clock seconds a protocol waits for remote signatures before
#: declaring the signature exchange failed.
REMOTE_SIGN_TIMEOUT = 30.0


class Stage(Enum):
    """Protocol lifecycle."""

    CREATED = "created"
    GENERATED = "split/generate"
    DEPLOYED = "deployed"
    SIGNED = "deploy/sign"
    PROPOSED = "submit/challenge"
    #: Netted settlement: the session's signed final state is bound
    #: into a committed batch root (the one-transaction-per-batch
    #: counterpart of PROPOSED).
    COMMITTED = "commit/batch"
    #: Netted settlement: the session's leaf was revealed on the
    #: aggregator to contest the committed claim.
    OPENED = "open/leaf"
    SETTLED = "settled"
    DISPUTED = "dispute/resolve"
    RESOLVED = "resolved"


@dataclass
class DisputeOutcome:
    """Result of a Dispute/Resolve escalation."""

    instance_address: Address
    deploy_receipt: Receipt
    resolve_receipt: Receipt
    outcome: Any

    @property
    def total_gas(self) -> int:
        """Combined gas of every receipt in this stage result."""
        return self.deploy_receipt.gas_used + self.resolve_receipt.gas_used


@dataclass
class ProtocolOutcome:
    """Final on-chain verdict."""

    resolved: bool
    outcome: Any
    via: str   # 'finalize' | 'dispute' | 'none'


@dataclass(frozen=True)
class StageResult:
    """Uniform return value of every protocol stage method.

    Carries the on-chain receipts the stage produced, the stage the
    protocol advanced to, and the stage-specific payload in ``value``
    (:class:`~repro.core.splitter.SplitContracts` after
    ``split_generate``, the deployed contract after ``deploy``, the
    :class:`~repro.offchain.signing.SignedCopy` after
    ``collect_signatures``, a :class:`DisputeOutcome` after ``dispute``
    — or ``None`` where the stage has nothing to report).
    """

    stage: Stage
    receipts: tuple[Receipt, ...] = ()
    value: Any = None

    @property
    def gas(self) -> int:
        """Total on-chain gas this stage burned."""
        return sum(receipt.gas_used for receipt in self.receipts)

    @property
    def receipt(self) -> Optional[Receipt]:
        """The single receipt, for one-transaction stages."""
        return self.receipts[0] if self.receipts else None

    @property
    def disputed(self) -> bool:
        """True when the stage escalated to Dispute/Resolve."""
        return isinstance(self.value, DisputeOutcome)


class OnOffChainProtocol:
    """Orchestrates one contract's life across the four stages."""

    def __init__(self, simulator: EthereumSimulator, whole_source: str,
                 contract_name: str, spec: SplitSpec,
                 participants: list[Participant],
                 bus: Optional[WhisperBus] = None) -> None:
        if len(participants) < 2:
            raise ValueError("the protocol needs at least two participants")
        self.simulator = simulator
        self.whole_source = whole_source
        self.contract_name = contract_name
        self.spec = spec
        self.participants = participants
        self.bus = bus or WhisperBus()
        self.ledger = GasLedger()
        self.stage = Stage.CREATED

        self.split: Optional[SplitContracts] = None
        self.compiled_onchain = None
        self.compiled_offchain = None
        self._onchain_compilation: Optional[CompilationResult] = None
        self._offchain_compilation: Optional[CompilationResult] = None
        self.onchain: Optional[DeployedContract] = None
        self.offchain_bytecode: Optional[bytes] = None
        self.signed_copies: dict[str, SignedCopy] = {}
        self._true_result: Any = None
        self._dispute_outcome: Optional[DisputeOutcome] = None
        #: Set by ``commit_batch`` when this session settles through a
        #: netted batch instead of its own submit/finalize pair.
        self.batch_commitment = None

    # ------------------------------------------------------------------
    # Stage 1: Split/Generate
    # ------------------------------------------------------------------

    def split_generate(self) -> StageResult:
        """Split the whole contract and compile both halves."""
        if self.stage is not Stage.CREATED:
            raise StageError(f"split_generate after {self.stage}")
        with obs.span(obs.names.SPAN_STAGE_SPLIT_GENERATE,
                      contract=self.contract_name):
            self.split = split_contract(
                self.whole_source, self.contract_name, self.spec,
            )
            if self.split.num_participants != len(self.participants):
                raise StageError(
                    f"contract declares {self.split.num_participants} "
                    f"participants but {len(self.participants)} "
                    f"were provided"
                )
            self._onchain_compilation = compile_source(
                self.split.onchain_source)
            self.compiled_onchain = self._onchain_compilation.contract(
                self.split.onchain_name)
            self._offchain_compilation = compile_source(
                self.split.offchain_source)
            self.compiled_offchain = self._offchain_compilation.contract(
                self.split.offchain_name)
        self.stage = Stage.GENERATED
        return StageResult(stage=self.stage, value=self.split)

    # ------------------------------------------------------------------
    # Stage 2: Deploy/Sign
    # ------------------------------------------------------------------

    def deploy(self, deployer: Participant,
               constructor_args: dict[str, Any] | None = None,
               offchain_state: dict[str, Any] | None = None,
               gas_limit: int = 6_000_000) -> StageResult:
        """Deploy the on-chain half and fix the off-chain bytecode."""
        if self.stage is not Stage.GENERATED:
            raise StageError("call split_generate() before deploy()")
        ordered_args = self._onchain_ctor_args(constructor_args or {})
        with obs.span(obs.names.SPAN_STAGE_DEPLOY,
                      contract=self.contract_name):
            self.onchain = self.simulator.deploy(
                deployer.account, self.compiled_onchain.init_code,
                self.compiled_onchain.abi, constructor_args=ordered_args,
                gas_limit=gas_limit,
            )
            self.ledger.record(Stage.DEPLOYED.value, "deploy onChain",
                               self.onchain.deploy_receipt, deployer.name)
            self.offchain_bytecode = self.build_offchain_bytecode(
                offchain_state or {})
        self.stage = Stage.DEPLOYED
        return StageResult(stage=self.stage,
                           receipts=(self.onchain.deploy_receipt,),
                           value=self.onchain)

    # -- deferred deployment (batched / engine-driven mining) ----------

    def prepare_deploy(self,
                       constructor_args: dict[str, Any] | None = None,
                       offchain_state: dict[str, Any] | None = None
                       ) -> bytes:
        """Build deployable init code without sending a transaction.

        The deferred twin of :meth:`deploy` for callers that queue the
        deployment into a mempool themselves (the multi-session
        engine).  Fixes the off-chain bytecode as a side effect, just
        like :meth:`deploy`; pair with :meth:`attach_onchain` once the
        deployment transaction has been mined.
        """
        if self.stage is not Stage.GENERATED:
            raise StageError("call split_generate() before prepare_deploy()")
        ordered_args = self._onchain_ctor_args(constructor_args or {})
        init_code = (self.compiled_onchain.init_code
                     + self.compiled_onchain.abi.encode_constructor_args(
                         ordered_args))
        self.offchain_bytecode = self.build_offchain_bytecode(
            offchain_state or {})
        return init_code

    def attach_onchain(self, receipt: Receipt) -> DeployedContract:
        """Bind a mined deployment receipt from :meth:`prepare_deploy`.

        The caller is responsible for ledger recording (the engine
        records centrally for all sessions it schedules).
        """
        if receipt.contract_address is None:
            raise StageError(
                "deployment receipt carries no contract address "
                f"(status={receipt.status})"
            )
        self.onchain = DeployedContract(
            address=receipt.contract_address,
            abi=self.compiled_onchain.abi,
            simulator=self.simulator,
            deploy_receipt=receipt,
        )
        self.stage = Stage.DEPLOYED
        return self.onchain

    def _onchain_ctor_args(self, named: dict[str, Any]) -> list[Any]:
        """Map named whole-contract args onto the split constructor."""
        contract = self._onchain_compilation.unit.contract(
            self.split.onchain_name)
        ctor = contract.constructor
        if ctor is None:
            if named:
                raise StageError(
                    "the on-chain contract has no constructor but "
                    f"arguments were provided: {sorted(named)}"
                )
            return []
        ordered = []
        for param in ctor.parameters:
            if param.name not in named:
                raise StageError(
                    f"missing constructor argument {param.name!r} "
                    f"(needed: {[p.name for p in ctor.parameters]})"
                )
            ordered.append(named[param.name])
        return ordered

    def build_offchain_bytecode(self,
                                state_values: dict[str, Any]) -> bytes:
        """Init code + ABI-encoded constructor args = signable bytecode.

        Constructor values: the participants array is auto-filled from
        the participant list; every other off-chain state variable must
        appear in ``state_values``.
        """
        contract = self._offchain_compilation.unit.contract(
            self.split.offchain_name)
        ctor = contract.constructor
        values: list[Any] = []
        for param in ctor.parameters:
            name = param.name  # "__<var>" or "__<var>_<index>"
            stripped = name.removeprefix("__")
            if "_" in stripped:
                var, _sep, index_text = stripped.rpartition("_")
                if var == self.spec.participants_var and \
                        index_text.isdigit():
                    values.append(
                        self.participants[int(index_text)].address)
                    continue
                if var in state_values and index_text.isdigit():
                    values.append(state_values[var][int(index_text)])
                    continue
            if stripped in state_values:
                values.append(state_values[stripped])
                continue
            raise StageError(
                f"no value provided for off-chain state {stripped!r}"
            )
        encoded = self.compiled_offchain.abi.encode_constructor_args(values)
        return self.compiled_offchain.init_code + encoded

    @property
    def _signing_topic(self) -> str:
        # Suffixed with a digest of the participant set so concurrent
        # sessions of the same contract on a *shared* bus (the
        # networked deployment) keep their signature exchanges apart.
        # Deterministic in the participants alone, so the in-process
        # and networked topologies compute the same topic.
        member_digest = keccak256(
            b"".join(p.address.value for p in self.participants))
        return (f"signed-copy:{self.contract_name}:"
                f"{member_digest[:4].hex()}")

    def collect_signatures(self) -> StageResult:
        """Run the signature exchange over Whisper (Deploy/Sign stage).

        Every willing participant signs the off-chain bytecode hash and
        posts (address ‖ signature) to the topic; everyone then
        assembles and verifies a fully signed copy.  Raises
        :class:`SigningError` naming any refusing participant — per the
        paper, nobody should touch the on-chain contract before holding
        a complete signed copy.
        """
        if self.stage is not Stage.DEPLOYED:
            raise StageError("deploy() must precede collect_signatures()")
        self.sync_bus_clock()
        topic = self._signing_topic
        with obs.span(obs.names.SPAN_STAGE_SIGN,
                      contract=self.contract_name,
                      participants=len(self.participants)):
            local = [p for p in self.participants if not p.remote]
            remote = [p for p in self.participants if p.remote]
            refusers = [p.name for p in local if not p.will_sign]
            for participant in self.participants:
                self.bus.subscribe(participant.name, topic)
            for participant in local:
                if not participant.will_sign:
                    continue
                signature = sign_bytecode(
                    participant.key, self.offchain_bytecode)
                payload = rlp.encode(
                    [participant.address.value, signature.to_bytes()])
                self.bus.post(topic, payload, sender=participant.name)
            if refusers:
                raise SigningError(
                    f"participants refused to sign: {refusers}; abort "
                    "before any deposit (rule 1 of Table I)"
                )
            addresses = [p.address for p in self.participants]
            if remote:
                # Ask the participant processes holding those keys to
                # sign, then wait (wall clock, not bus clock) for
                # their signatures to land on the session topic.
                request = rlp.encode(
                    [topic.encode("utf-8"), self.offchain_bytecode]
                    + [p.address.value for p in remote])
                self.bus.post(SIGN_REQUEST_TOPIC, request,
                              sender=self.contract_name)
                deadline = time.monotonic() + REMOTE_SIGN_TIMEOUT
                while not self._signatures_complete(topic, addresses):
                    if time.monotonic() > deadline:
                        missing = sorted(
                            p.name for p in remote
                            if p.address not in
                            self._collect_posted(topic))
                        raise SigningError(
                            "remote participants never signed within "
                            f"{REMOTE_SIGN_TIMEOUT:.0f}s: {missing}")
                    time.sleep(0.01)
            copy = assemble_signed_copy(
                self.offchain_bytecode,
                self._collect_posted(topic), addresses)
            for participant in self.participants:
                self.signed_copies[participant.name] = copy
        self.stage = Stage.SIGNED
        return StageResult(stage=self.stage, value=copy)

    def _collect_posted(self, topic: str) -> dict[Address, Signature]:
        """Signatures currently posted on the session's sign topic."""
        collected: dict[Address, Signature] = {}
        for envelope in self.bus.peek_all(topic):
            address_raw, sig_raw = rlp.decode(envelope.payload)
            collected[Address(address_raw)] = \
                Signature.from_bytes(sig_raw)
        return collected

    def _signatures_complete(self, topic: str,
                             addresses: list[Address]) -> bool:
        """True once every participant's signature is on the topic."""
        collected = self._collect_posted(topic)
        return all(address in collected for address in addresses)

    def pay_security_deposits(self) -> StageResult:
        """Every participant escrows the agreed security deposit.

        With ``spec.security_deposit > 0``, ``deployVerifiedInstance``
        is gated on all deposits being paid (Algorithm 2's
        ``amountMet``), so this must happen right after signing.
        """
        if self.spec.security_deposit <= 0:
            raise StageError("the split spec sets no security deposit")
        if self.onchain is None:
            raise StageError("deploy() before paying deposits")
        receipts = []
        with obs.span(obs.names.SPAN_STAGE_DEPOSITS,
                      contract=self.contract_name):
            for participant in self.participants:
                receipt = self.onchain.transact(
                    "paySecurityDeposit", sender=participant.account,
                    value=self.spec.security_deposit)
                self.ledger.record(self.stage.value, "paySecurityDeposit",
                                   receipt, participant.name)
                receipts.append(receipt)
        return StageResult(stage=self.stage, receipts=tuple(receipts))

    def withdraw_security_deposits(self) -> dict[str, bool]:
        """Each participant reclaims any remaining deposit.

        Returns name -> withdrew?; a participant whose deposit was
        forfeited to the challenger (the §IV penalty) gets False.
        """
        results: dict[str, bool] = {}
        for participant in self.participants:
            remaining = self.onchain.call(
                "securityDeposit", participant.address)
            if remaining > 0:
                receipt = self.onchain.transact(
                    "withdrawSecurityDeposit",
                    sender=participant.account)
                self.ledger.record(self.stage.value,
                                   "withdrawSecurityDeposit", receipt,
                                   participant.name)
                results[participant.name] = True
            else:
                results[participant.name] = False
        return results

    # ------------------------------------------------------------------
    # Stage 3: Submit/Challenge
    # ------------------------------------------------------------------

    def execute_off_chain(self,
                          participant: Participant | None = None) -> OffchainRun:
        """One participant's private local run of the off-chain contract."""
        if self.offchain_bytecode is None:
            raise StageError("off-chain bytecode is not fixed yet")
        executor = OffchainExecutor(
            timestamp=self.simulator.current_timestamp,
            block_number=self.simulator.chain.latest_block.number,
        )
        who = (participant or self.participants[0])
        with obs.span(obs.names.SPAN_OFFCHAIN_EXECUTE,
                      contract=self.contract_name, participant=who.name):
            run = executor.execute(
                self.offchain_bytecode, self.compiled_offchain.abi,
                caller=who.address,
            )
        if obs.enabled():
            obs.inc(obs.names.METRIC_OFFCHAIN_GAS,
                    run.gas_equivalent + run.deploy_gas_equivalent)
        self._true_result = run.result
        return run

    def reach_unanimous_agreement(self) -> Any:
        """All participants execute locally and compare results (§II-B).

        Deterministic bytecode ⇒ identical results for honest parties;
        this models the paper's "unanimous agreement" check.
        """
        runs = [self.execute_off_chain(p) for p in self.participants]
        results = {repr(run.result) for run in runs}
        if len(results) != 1:
            raise AgreementError(
                f"participants computed divergent results: {results}"
            )
        return runs[0].result

    def submit_result(self, representative: Participant,
                      result: Any | None = None) -> StageResult:
        """The representative submits the (possibly falsified) result."""
        if self.stage is not Stage.SIGNED:
            raise StageError("collect_signatures() must precede submission")
        if self.spec.challenge_period <= 0:
            raise StageError("submit/challenge is disabled (period = 0)")
        if self._true_result is None:
            self.execute_off_chain(representative)
        claim = representative.claimed_result(
            result if result is not None else self._true_result)
        with obs.span(obs.names.SPAN_STAGE_SUBMIT,
                      contract=self.contract_name,
                      representative=representative.name):
            receipt = self.onchain.transact(
                "submitResult", claim, sender=representative.account)
            self.ledger.record(Stage.PROPOSED.value, "submitResult",
                               receipt, representative.name)
        self.sync_bus_clock()
        self.stage = Stage.PROPOSED
        return StageResult(stage=self.stage, receipts=(receipt,))

    # -- challenge-window clock plumbing -------------------------------

    def sync_bus_clock(self) -> None:
        """Advance the Whisper clock to the chain's current timestamp.

        The bus starts at 0 while blocks carry wall-clock timestamps;
        keeping the two clocks on one timeline means envelope TTLs and
        the challenge deadline are measured against the same time
        source (the tentpole requirement of the window fix).  The bus
        clock only moves forward, so repeated syncs are idempotent.
        """
        chain_now = self.simulator.current_timestamp
        if chain_now > self.bus.now:
            self.bus.advance_time(chain_now - self.bus.now)

    def challenge_deadline(self) -> Optional[int]:
        """The live proposal's ``challengeDeadline``, if one exists.

        ``None`` when the contract was rendered without a challenge
        period or no result has been submitted yet.  A session bound
        into a netted batch is governed by the *batch* window instead:
        its commitment's deadline bounds openings and disputes alike.
        """
        if self.batch_commitment is not None:
            return self.batch_commitment.challenge_deadline
        if self.onchain is None or self.spec.challenge_period <= 0:
            return None
        if not self.onchain.call("hasProposal"):
            return None
        return self.onchain.call("challengeDeadline")

    def challenge_window_open(self) -> bool:
        """Whether a dispute transaction sent now would beat the clock.

        Measured against :meth:`Blockchain.next_timestamp` — the
        timestamp the *next mined block* will carry — because that is
        the value ``block.timestamp`` takes when the dispute executes,
        not the (older) latest-block timestamp.
        """
        deadline = self.challenge_deadline()
        if deadline is None:
            return True
        return self.simulator.chain.next_timestamp() < deadline

    def _require_window_open(self, actor: str) -> None:
        """Reject a dispute attempt once the window has closed."""
        deadline = self.challenge_deadline()
        if deadline is None:
            return
        next_ts = self.simulator.chain.next_timestamp()
        if next_ts >= deadline:
            if obs.enabled():
                obs.inc(obs.names.METRIC_CHALLENGE_LATE_DISPUTES)
            raise ChallengeWindowClosed(
                f"challenge window closed: the dispute block would "
                f"carry timestamp {next_ts} but the deadline was "
                f"{deadline} ({actor} is {next_ts - deadline}s late)"
            )
        if obs.enabled():
            obs.observe(obs.names.METRIC_CHALLENGE_DEADLINE_MARGIN,
                        deadline - next_ts)

    def run_challenge_window(self) -> StageResult:
        """Honest participants police the submitted result.

        Each honest participant compares the on-chain proposal with its
        own local execution; on a mismatch it escalates to the dispute
        path immediately — *provided the challenge window is still
        open* by the chain clock.  A challenge attempted after
        ``challengeDeadline`` raises :class:`ChallengeWindowClosed`:
        the false proposal then stands and will finalize (the paper's
        incentive argument is that a liar cannot *count* on every
        honest party sleeping through the window).  The returned
        :class:`StageResult` has ``value=None`` (and no receipts) when
        the proposal was clean, or carries the
        :class:`DisputeOutcome` when a challenger overturned it.
        """
        if self.stage is not Stage.PROPOSED:
            raise StageError("no proposal to challenge")
        self.sync_bus_clock()
        with obs.span(obs.names.SPAN_STAGE_CHALLENGE,
                      contract=self.contract_name) as challenge_span:
            proposed = self.onchain.call("proposedResult")
            window_open = self.challenge_window_open()
            truth = self.reach_unanimous_agreement()
            clean = results_equal(proposed, truth)
            challenge_span.set_label(clean=clean,
                                     window_open=window_open)
        if clean:
            return StageResult(stage=self.stage, value=None)
        for participant in self.participants:
            if participant.will_challenge:
                return self.dispute(participant)
        raise DisputeError(
            "a false result was submitted but no honest participant "
            "challenged — all parties silent or dishonest"
        )

    def finalize(self, caller: Participant) -> StageResult:
        """Close the challenge window and apply the proposal."""
        if self.stage is not Stage.PROPOSED:
            raise StageError("nothing to finalize")
        with obs.span(obs.names.SPAN_STAGE_FINALIZE,
                      contract=self.contract_name, caller=caller.name):
            deadline = self.onchain.call("challengeDeadline")
            self.simulator.advance_time_to(deadline)
            receipt = self.onchain.transact(
                "finalizeResult", sender=caller.account)
            self.ledger.record(Stage.PROPOSED.value, "finalizeResult",
                               receipt, caller.name)
        self.sync_bus_clock()
        self.stage = Stage.SETTLED
        return StageResult(stage=self.stage, receipts=(receipt,))

    # ------------------------------------------------------------------
    # Stage 3 (netted): Commit/Open
    # ------------------------------------------------------------------

    def commit_batch(self, commitment) -> StageResult:
        """Bind this session into a committed netted batch.

        The netted counterpart of :meth:`submit_result`: instead of a
        per-session proposal, the session's signed final state is one
        leaf under the batch Merkle root a
        :class:`~repro.core.settlement.SettlementBatcher` committed
        with a single on-chain transaction.  No receipts are recorded
        here — the commit transaction is batch-level cost carried by
        the batcher's own ledger, which is the whole point of netting.
        """
        if self.stage is not Stage.SIGNED:
            raise StageError(
                "collect_signatures() must precede commit_batch()")
        if self.batch_commitment is not None:
            raise StageError("this session is already in a batch")
        self.sync_bus_clock()
        self.batch_commitment = commitment
        self.stage = Stage.COMMITTED
        return StageResult(stage=self.stage, value=commitment)

    def open_leaf(self, challenger: Participant,
                  gas_limit: int = 3_000_000) -> StageResult:
        """Reveal this session's leaf on the aggregator (contest it).

        Opening is the netted dispute entry: the challenger proves on
        chain — leaf, index and Merkle proof against the committed
        root — that this session is part of the batch, before driving
        the unchanged Dispute/Resolve machinery on the session
        contract.  The batch challenge window bounds openings exactly
        as the per-session window bounds disputes: once it closed (by
        the timestamp the opening block would carry) this raises
        :class:`ChallengeWindowClosed`, and the rendered aggregator
        enforces the same bound with a ``require``.
        """
        if self.batch_commitment is None:
            raise StageError(
                "no batch commitment to open — commit_batch() first")
        if self.stage is not Stage.COMMITTED:
            raise StageError(f"open_leaf after {self.stage}")
        self.sync_bus_clock()
        self._require_window_open(challenger.name)
        commitment = self.batch_commitment
        with obs.span(obs.names.SPAN_SETTLEMENT_OPEN,
                      contract=self.contract_name,
                      challenger=challenger.name,
                      index=commitment.index):
            receipt = commitment.batch.aggregator.transact(
                "openLeaf", commitment.leaf, commitment.index,
                *commitment.proof,
                sender=challenger.account, gas_limit=gas_limit)
            self.record_leaf_opening(receipt, challenger.name)
        return StageResult(stage=self.stage, receipts=(receipt,),
                           value=commitment)

    def record_leaf_opening(self, receipt: Receipt, actor: str) -> None:
        """Register a mined ``openLeaf`` transaction (deferred mining).

        Shared by :meth:`open_leaf` and the engine's batched opening
        round: records the gas under ``Stage.OPENED`` in this session's
        ledger and advances the stage machine.
        """
        commitment = self.batch_commitment
        self.ledger.record(Stage.OPENED.value, "openLeaf", receipt,
                           actor)
        commitment.batch.opened.add(commitment.index)
        self.stage = Stage.OPENED
        if obs.enabled():
            obs.inc(obs.names.METRIC_SETTLEMENT_OPENINGS)

    def settle_batch_commitment(self) -> StageResult:
        """Mark this session settled by its finalized batch.

        Called by the batcher after ``finalizeBatch`` for every member
        whose leaf went unopened: the committed root plus the signed
        state is the settlement instrument and the session contract is
        never touched again.
        """
        if self.batch_commitment is None:
            raise StageError("this session is not in a batch")
        if self.stage is not Stage.COMMITTED:
            raise StageError(
                f"settle_batch_commitment after {self.stage}")
        if not self.batch_commitment.finalized:
            raise StageError("the batch has not finalized yet")
        self.stage = Stage.SETTLED
        return StageResult(stage=self.stage,
                           value=self.batch_commitment)

    # ------------------------------------------------------------------
    # Stage 4: Dispute/Resolve
    # ------------------------------------------------------------------

    def dispute(self, challenger: Participant,
                gas_limit: int = 6_000_000) -> StageResult:
        """Reveal the signed copy and force the true result on-chain.

        When a result has been submitted, the dispute must land before
        ``challengeDeadline`` (by the timestamp of the block that
        would carry it); afterwards :class:`ChallengeWindowClosed` is
        raised before anything touches the chain.  The rendered
        contract enforces the same bound with a ``require``, so even a
        hand-crafted transaction cannot dispute late.
        """
        if self.onchain is None:
            raise StageError("no on-chain contract deployed")
        self.sync_bus_clock()
        self._require_window_open(challenger.name)
        copy = self.signed_copies.get(challenger.name)
        if copy is None:
            raise DisputeError(
                f"{challenger.name} holds no signed copy — cannot dispute"
            )
        copy.require_valid([p.address for p in self.participants])

        with obs.span(obs.names.SPAN_STAGE_DISPUTE,
                      contract=self.contract_name,
                      challenger=challenger.name):
            deploy_receipt = self.onchain.transact(
                "deployVerifiedInstance", copy.bytecode,
                *copy.vrs_arguments(),
                sender=challenger.account, gas_limit=gas_limit,
            )
            self.ledger.record(Stage.DISPUTED.value,
                               "deployVerifiedInstance",
                               deploy_receipt, challenger.name)
            instance_address = Address(self.onchain.call("deployedAddr"))
            instance = self.simulator.contract_at(
                instance_address, self.compiled_offchain.abi)
            resolve_receipt = instance.transact(
                "returnDisputeResolution", self.onchain.address,
                sender=challenger.account, gas_limit=gas_limit,
            )
            self.ledger.record(Stage.DISPUTED.value,
                               "returnDisputeResolution",
                               resolve_receipt, challenger.name)
            outcome = self.record_dispute(
                instance_address, deploy_receipt, resolve_receipt)
        return StageResult(stage=self.stage,
                           receipts=(deploy_receipt, resolve_receipt),
                           value=outcome)

    def record_dispute(self, instance_address: Address,
                       deploy_receipt: Receipt,
                       resolve_receipt: Receipt) -> DisputeOutcome:
        """Register a completed dispute escalation (deferred mining).

        Reads the enforced verdict back from the on-chain contract and
        advances the stage machine — shared by :meth:`dispute` and the
        engine's batched dispute path.
        """
        self._dispute_outcome = DisputeOutcome(
            instance_address=instance_address,
            deploy_receipt=deploy_receipt,
            resolve_receipt=resolve_receipt,
            outcome=self.onchain.call("resolvedOutcome"),
        )
        self.stage = Stage.RESOLVED
        return self._dispute_outcome

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def call_onchain(self, participant: Participant, function_name: str,
                     *args: Any, value: int = 0,
                     stage_label: str | None = None,
                     gas_limit: int = 3_000_000) -> Receipt:
        """Invoke any on-chain function, recording gas in the ledger."""
        receipt = self.onchain.transact(
            function_name, *args, sender=participant.account, value=value,
            gas_limit=gas_limit,
        )
        self.ledger.record(
            stage_label or self.stage.value, function_name, receipt,
            participant.name,
        )
        return receipt

    def outcome(self) -> ProtocolOutcome:
        """The current on-chain verdict."""
        if self.onchain is None:
            return ProtocolOutcome(resolved=False, outcome=None, via="none")
        resolved = self.onchain.call("disputeResolved")
        if not resolved:
            if (self.batch_commitment is not None
                    and self.stage is Stage.SETTLED):
                # Netted optimistic settlement: the session contract
                # was never touched; the finalized batch commitment
                # carries the verdict.
                return ProtocolOutcome(
                    resolved=True,
                    outcome=self.batch_commitment.claim,
                    via="netted")
            return ProtocolOutcome(resolved=False, outcome=None, via="none")
        value = self.onchain.call("resolvedOutcome")
        via = "dispute" if self._dispute_outcome is not None else "finalize"
        return ProtocolOutcome(resolved=True, outcome=value, via=via)


def results_equal(a: Any, b: Any) -> bool:
    """Compare an on-chain proposal with a locally computed result.

    ABI-decoded on-chain values and off-chain executor results may
    represent the same value as ``bytes`` vs ``int``; the protocol and
    the engine both use this tolerant comparison when policing the
    challenge window.
    """
    if isinstance(a, bytes) and isinstance(b, int):
        return int.from_bytes(a, "big") == b
    if isinstance(b, bytes) and isinstance(a, int):
        return int.from_bytes(b, "big") == a
    return a == b
