"""Padding: the extra dispute functions added to each split half (§III).

The paper pads each group of functions "with a few extra functions
prepared for a dispute":

* on-chain — ``deployVerifiedInstance()`` (Algorithm 5: verify every
  participant's (v,r,s) signature over keccak256(bytecode) with
  ``ecrecover``, then ``CREATE`` the verified instance and record its
  address) and ``enforceDisputeResolution()`` (Algorithm 6: apply the
  result, guarded by the ``deployedAddrOnly`` modifier);
* off-chain — ``returnDisputeResolution()`` (Algorithm 3: call the
  heavy result function and push its output back into the on-chain
  contract through the interface).

This module additionally pads the Submit/Challenge machinery the paper
describes in §III (a representative submits the off-chain result; a
challenge period follows during which any participant can escalate to
the dispute path).

Everything here renders deterministic Solis source text, because the
off-chain contract's *bytecode* is the thing participants sign.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast

_I1 = "    "
_I2 = _I1 * 2


def _participant_guard(participants_var: str, count: int) -> str:
    checks = " || ".join(
        f"msg.sender == {participants_var}[{index}]"
        for index in range(count)
    )
    return checks


def render_onchain_contract(name: str,
                            state_vars: list[ast.StateVarDecl],
                            events: list[ast.EventDecl],
                            modifiers: list[ast.ModifierDecl],
                            constructor: ast.FunctionDecl | None,
                            functions: list[ast.FunctionDecl],
                            settle_fn: ast.FunctionDecl,
                            participants_var: str,
                            num_participants: int,
                            result_type: str,
                            challenge_period: int,
                            security_deposit: int = 0) -> str:
    """Render the on-chain contract: light functions + padding."""
    parts: list[str] = [f"contract {name} {{"]

    parts.append(f"{_I1}// --- state carried over from the whole contract")
    for var in state_vars:
        parts.append(var.to_source())

    parts.append("")
    parts.append(f"{_I1}// --- padded dispute/challenge state")
    parts.append(f"{_I1}address public deployedAddr;")
    parts.append(f"{_I1}bool public disputeResolved;")
    parts.append(f"{_I1}{result_type} public resolvedOutcome;")
    if challenge_period > 0:
        parts.append(f"{_I1}bool public hasProposal;")
        parts.append(f"{_I1}{result_type} public proposedResult;")
        parts.append(f"{_I1}address public proposer;")
        parts.append(f"{_I1}uint public challengeDeadline;")
    if security_deposit > 0:
        parts.append(f"{_I1}mapping(address => uint) public securityDeposit;")
        parts.append(f"{_I1}address public challenger;")

    for event in events:
        parts.append(event.to_source())
    parts.append(f"{_I1}event VerifiedInstanceDeployed(address instance);")
    parts.append(f"{_I1}event DisputeResolved({result_type} outcome);")
    if challenge_period > 0:
        parts.append(
            f"{_I1}event ResultSubmitted(address proposer, "
            f"{result_type} result, uint deadline);"
        )
        parts.append(f"{_I1}event ResultFinalized({result_type} result);")
    if security_deposit > 0:
        parts.append(
            f"{_I1}event ChallengerCompensated(address challenger, "
            "uint amount);"
        )

    parts.append("")
    for modifier in modifiers:
        parts.append(modifier.to_source())
    guard = _participant_guard(participants_var, num_participants)
    parts.append(
        f"{_I1}modifier __participantOnly {{ require({guard}); _; }}"
    )
    parts.append(
        f"{_I1}modifier __deployedAddrOnly "
        f"{{ require(msg.sender == deployedAddr); _; }}"
    )
    if security_deposit > 0:
        # Algorithm 2's `amountMet`: every participant escrowed.
        met = " && ".join(
            f"securityDeposit[{participants_var}[{index}]] == "
            f"{security_deposit}"
            for index in range(num_participants)
        )
        parts.append(
            f"{_I1}modifier __amountMet {{ require({met}); _; }}"
        )

    if constructor is not None:
        parts.append("")
        parts.append(constructor.to_source())

    parts.append("")
    parts.append(f"{_I1}// --- light/public functions (unchanged)")
    for fn in functions:
        parts.append(fn.to_source())

    parts.append("")
    parts.append(f"{_I1}// --- padded extra functions")
    if security_deposit > 0:
        parts.append(_render_security_deposit_functions(security_deposit))
    if challenge_period > 0:
        parts.append(_render_submit_challenge(
            settle_fn, result_type, challenge_period))
    parts.append(_render_deploy_verified_instance(
        participants_var, num_participants,
        with_deposits=security_deposit > 0,
        with_challenge=challenge_period > 0))
    parts.append(_render_enforce_dispute_resolution(
        settle_fn, result_type,
        with_compensation=security_deposit > 0 and challenge_period > 0))
    parts.append("}")
    return "\n".join(parts)


def _render_security_deposit_functions(amount: int) -> str:
    """paySecurityDeposit / withdrawSecurityDeposit (§IV remark)."""
    return f"""\
{_I1}function paySecurityDeposit() payable public __participantOnly {{
{_I2}require(!disputeResolved);
{_I2}require(securityDeposit[msg.sender] == 0);
{_I2}require(msg.value == {amount});
{_I2}securityDeposit[msg.sender] = msg.value;
{_I1}}}

{_I1}function withdrawSecurityDeposit() public __participantOnly {{
{_I2}require(disputeResolved);
{_I2}uint __amount = securityDeposit[msg.sender];
{_I2}require(__amount > 0);
{_I2}securityDeposit[msg.sender] = 0;
{_I2}msg.sender.transfer(__amount);
{_I1}}}"""


def _render_submit_challenge(settle_fn: ast.FunctionDecl, result_type: str,
                             challenge_period: int) -> str:
    """submitResult / finalizeResult — the Submit/Challenge stage."""
    settle_body = _settle_body_source(settle_fn)
    param_name = settle_fn.parameters[0].name
    return f"""\
{_I1}function submitResult({result_type} result) public __participantOnly {{
{_I2}require(!hasProposal);
{_I2}require(!disputeResolved);
{_I2}hasProposal = true;
{_I2}proposedResult = result;
{_I2}proposer = msg.sender;
{_I2}challengeDeadline = block.timestamp + {challenge_period};
{_I2}emit ResultSubmitted(msg.sender, result, challengeDeadline);
{_I1}}}

{_I1}function finalizeResult() public __participantOnly {{
{_I2}require(hasProposal);
{_I2}require(!disputeResolved);
{_I2}require(block.timestamp >= challengeDeadline);
{_I2}disputeResolved = true;
{_I2}resolvedOutcome = proposedResult;
{_I2}{result_type} {param_name} = proposedResult;
{_I2}emit ResultFinalized({param_name});
{settle_body}
{_I1}}}"""


def _render_deploy_verified_instance(participants_var: str, count: int,
                                     with_deposits: bool = False,
                                     with_challenge: bool = False) -> str:
    """Algorithm 5: verify all signatures, CREATE the instance.

    With the Submit/Challenge machinery present (``with_challenge``),
    a live proposal additionally bounds the dispute in time: once
    ``block.timestamp`` reaches ``challengeDeadline`` the window is
    closed and the dispute path rejects.  Contracts rendered without a
    challenge period (Table II's configuration) are byte-identical to
    the pre-deadline rendering, so the paper's gas figures stand.
    """
    sig_params = ", ".join(
        f"uint8 v{index}, bytes32 r{index}, bytes32 s{index}"
        for index in range(count)
    )
    checks = "\n".join(
        f"{_I2}address __a{index} = ecrecover(__h, v{index}, r{index}, "
        f"s{index});\n"
        f"{_I2}require(__a{index} == {participants_var}[{index}]);"
        for index in range(count)
    )
    modifiers = "public __participantOnly"
    if with_deposits:
        modifiers += " __amountMet"
    challenger_line = (
        f"{_I2}challenger = msg.sender;\n" if with_deposits else ""
    )
    deadline_line = (
        f"{_I2}require(!hasProposal || block.timestamp < "
        "challengeDeadline);\n"
        if with_challenge else ""
    )
    return f"""\
{_I1}function deployVerifiedInstance(bytes memory bytecode, {sig_params}) \
{modifiers} {{
{_I2}require(!disputeResolved);
{_I2}require(deployedAddr == address(0));
{deadline_line}{_I2}bytes32 __h = keccak256(bytecode);
{checks}
{challenger_line}{_I2}address __addr = create(bytecode);
{_I2}deployedAddr = __addr;
{_I2}emit VerifiedInstanceDeployed(__addr);
{_I1}}}"""


def _render_enforce_dispute_resolution(settle_fn: ast.FunctionDecl,
                                       result_type: str,
                                       with_compensation: bool = False
                                       ) -> str:
    """Algorithm 6: only the verified instance can force the settlement.

    With security deposits enabled, an overturned proposer's deposit is
    forwarded to the challenger — the monetary penalty of §IV.
    """
    settle_body = _settle_body_source(settle_fn)
    param_name = settle_fn.parameters[0].name
    compensation = ""
    if with_compensation:
        compensation = f"""\
{_I2}if (hasProposal) {{
{_I2}{_I1}if (proposedResult != {param_name}) {{
{_I2}{_I1}{_I1}uint __penalty = securityDeposit[proposer];
{_I2}{_I1}{_I1}securityDeposit[proposer] = 0;
{_I2}{_I1}{_I1}if (__penalty > 0) {{
{_I2}{_I1}{_I1}{_I1}challenger.transfer(__penalty);
{_I2}{_I1}{_I1}{_I1}emit ChallengerCompensated(challenger, __penalty);
{_I2}{_I1}{_I1}}}
{_I2}{_I1}}}
{_I2}}}
"""
    return f"""\
{_I1}function enforceDisputeResolution({result_type} {param_name}) \
external __deployedAddrOnly {{
{_I2}require(!disputeResolved);
{_I2}disputeResolved = true;
{_I2}resolvedOutcome = {param_name};
{_I2}emit DisputeResolved({param_name});
{compensation}{settle_body}
{_I1}}}"""


def _settle_body_source(settle_fn: ast.FunctionDecl) -> str:
    """The settle function's statements, re-indented for inlining."""
    return "\n".join(
        stmt.to_source(2) for stmt in settle_fn.body.statements
    )


def render_offchain_contract(name: str,
                             state_vars: list[ast.StateVarDecl],
                             events: list[ast.EventDecl],
                             modifiers: list[ast.ModifierDecl],
                             ctor_params: list[str],
                             ctor_assignments: list[str],
                             functions: list[ast.FunctionDecl],
                             result_fn: ast.FunctionDecl,
                             participants_var: str,
                             num_participants: int,
                             result_type: str) -> str:
    """Render the off-chain contract plus the on-chain callback iface."""
    iface = f"I{name}Callback"
    parts: list[str] = [
        f"contract {iface} {{",
        f"{_I1}function enforceDisputeResolution({result_type} result) "
        "external;",
        "}",
        "",
        f"contract {name} {{",
        f"{_I1}// --- state snapshotted from the whole contract",
    ]
    for var in state_vars:
        parts.append(var.to_source())

    for event in events:
        parts.append(event.to_source())

    parts.append("")
    for modifier in modifiers:
        parts.append(modifier.to_source())
    guard = _participant_guard(participants_var, num_participants)
    parts.append(
        f"{_I1}modifier __participantOnly {{ require({guard}); _; }}"
    )

    ctor_param_text = ", ".join(ctor_params)
    ctor_body = "\n".join(f"{_I2}{line}" for line in ctor_assignments)
    parts.append("")
    parts.append(f"{_I1}constructor({ctor_param_text}) public {{")
    if ctor_body:
        parts.append(ctor_body)
    parts.append(f"{_I1}}}")

    parts.append("")
    parts.append(f"{_I1}// --- heavy/private functions (unchanged)")
    for fn in functions:
        parts.append(fn.to_source())

    parts.append("")
    parts.append(f"{_I1}// --- padded extra functions")
    parts.append(f"""\
{_I1}function computeResult() public view returns ({result_type}) {{
{_I2}return {result_fn.name}();
{_I1}}}

{_I1}function returnDisputeResolution(address addr) public \
__participantOnly {{
{_I2}{iface} __target = {iface}(addr);
{_I2}__target.enforceDisputeResolution({result_fn.name}());
{_I1}}}""")
    parts.append("}")
    return "\n".join(parts)
