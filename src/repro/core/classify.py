"""Function classification: heavy/private vs light/public (§II-B).

The paper broadly classifies contract functions into

* **light/public** — low-cost, non-sensitive (it recommends all
  cryptocurrency-transfer functions land here), and
* **heavy/private** — high-cost computation and/or logic that reveals
  private information about the participants.

This module implements that classification as a policy: explicit
annotations always win; otherwise a static gas estimate plus a
transfer-detection heuristic decides, exactly following the paper's
recommendation ("allocate all functions of cryptocurrency transfer into
light/public functions and consider the remaining ones as
heavy/private").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.lang import ast_nodes as ast
from repro.core.exceptions import SplitError


class FunctionCategory(Enum):
    """The two categories of §II-B."""

    LIGHT_PUBLIC = "light/public"
    HEAVY_PRIVATE = "heavy/private"


#: Loops make static costs unbounded; this multiplier approximates the
#: per-iteration cost weight the classifier assigns to loop bodies.
_LOOP_WEIGHT = 50

# Rough static gas weights per AST construct (mirrors the EVM schedule).
_COST_SSTORE = 20_000
_COST_SLOAD = 200
_COST_CALL = 9_700
_COST_HASH = 60
_COST_ECRECOVER = 3_700
_COST_CREATE = 50_000
_COST_ARITH = 5
_COST_EVENT = 1_500


@dataclass
class FunctionCostEstimate:
    """Static cost/shape summary of one function."""

    name: str
    estimated_gas: int
    has_transfer: bool
    has_loop: bool
    reads_state: frozenset[str]
    writes_state: frozenset[str]


@dataclass
class Classification:
    """The classifier's verdict for one whole contract."""

    light_public: list[str] = field(default_factory=list)
    heavy_private: list[str] = field(default_factory=list)
    estimates: dict[str, FunctionCostEstimate] = field(default_factory=dict)

    def category_of(self, function_name: str) -> FunctionCategory:
        """The coarse cost category an opcode byte belongs to."""
        if function_name in self.heavy_private:
            return FunctionCategory.HEAVY_PRIVATE
        if function_name in self.light_public:
            return FunctionCategory.LIGHT_PUBLIC
        raise KeyError(f"function {function_name!r} was not classified")


class _CostWalker:
    """Walks a function body accumulating a static gas estimate."""

    def __init__(self, state_var_names: frozenset[str]) -> None:
        self._state_vars = state_var_names
        self.gas = 0
        self.has_transfer = False
        self.has_loop = False
        self.reads: set[str] = set()
        self.writes: set[str] = set()

    # -- statements -----------------------------------------------------

    def walk_block(self, block: ast.Block, weight: int = 1) -> None:
        """Accumulate estimates over every statement in a block."""
        for stmt in block.statements:
            self.walk_statement(stmt, weight)

    def walk_statement(self, stmt: ast.Stmt, weight: int) -> None:
        """Accumulate one statement's cost into the estimate."""
        if isinstance(stmt, ast.Block):
            self.walk_block(stmt, weight)
        elif isinstance(stmt, ast.VarDeclStmt):
            if stmt.initial is not None:
                self.walk_expr(stmt.initial, weight)
            self.gas += _COST_ARITH * weight
        elif isinstance(stmt, ast.Assignment):
            self.walk_expr(stmt.value, weight)
            target = stmt.target
            root = _root_identifier(target)
            if root is not None and root in self._state_vars:
                self.writes.add(root)
                self.gas += _COST_SSTORE * weight
            else:
                self.gas += _COST_ARITH * weight
            if isinstance(target, ast.IndexAccess):
                self.walk_expr(target.index, weight)
        elif isinstance(stmt, ast.ExprStmt):
            self.walk_expr(stmt.expression, weight)
        elif isinstance(stmt, ast.IfStmt):
            self.walk_expr(stmt.condition, weight)
            self.walk_block(stmt.then_branch, weight)
            if stmt.else_branch is not None:
                self.walk_block(stmt.else_branch, weight)
        elif isinstance(stmt, ast.WhileStmt):
            self.has_loop = True
            self.walk_expr(stmt.condition, weight)
            self.walk_block(stmt.body, weight * _LOOP_WEIGHT)
        elif isinstance(stmt, ast.ForStmt):
            self.has_loop = True
            if stmt.init is not None:
                self.walk_statement(stmt.init, weight)
            if stmt.condition is not None:
                self.walk_expr(stmt.condition, weight)
            if stmt.update is not None:
                self.walk_statement(stmt.update, weight * _LOOP_WEIGHT)
            self.walk_block(stmt.body, weight * _LOOP_WEIGHT)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.walk_expr(stmt.value, weight)
        elif isinstance(stmt, ast.RequireStmt):
            self.walk_expr(stmt.condition, weight)
        elif isinstance(stmt, ast.EmitStmt):
            self.gas += _COST_EVENT * weight
            for arg in stmt.arguments:
                self.walk_expr(arg, weight)
        # Placeholder / break / continue carry no cost.

    # -- expressions ----------------------------------------------------------

    def walk_expr(self, expr: ast.Expr, weight: int) -> None:
        """Accumulate one expression's cost into the estimate."""
        if isinstance(expr, ast.Identifier):
            if expr.name in self._state_vars:
                self.reads.add(expr.name)
                self.gas += _COST_SLOAD * weight
        elif isinstance(expr, ast.MemberAccess):
            if expr.member in ("transfer", "send"):
                self.has_transfer = True
            self.walk_expr(expr.object, weight)
        elif isinstance(expr, ast.IndexAccess):
            root = _root_identifier(expr)
            if root is not None and root in self._state_vars:
                self.reads.add(root)
                self.gas += (_COST_SLOAD + _COST_HASH) * weight
            self.walk_expr(expr.index, weight)
        elif isinstance(expr, ast.BinaryOp):
            self.gas += _COST_ARITH * weight
            self.walk_expr(expr.left, weight)
            self.walk_expr(expr.right, weight)
        elif isinstance(expr, ast.UnaryOp):
            self.gas += _COST_ARITH * weight
            self.walk_expr(expr.operand, weight)
        elif isinstance(expr, ast.FunctionCall):
            self._walk_call(expr, weight)

    def _walk_call(self, expr: ast.FunctionCall, weight: int) -> None:
        callee = expr.callee
        if isinstance(callee, ast.Identifier):
            if callee.name == "keccak256":
                self.gas += _COST_HASH * weight
            elif callee.name == "ecrecover":
                self.gas += _COST_ECRECOVER * weight
            elif callee.name == "create":
                self.gas += _COST_CREATE * weight
        if isinstance(callee, ast.MemberAccess):
            if callee.member in ("transfer", "send"):
                self.has_transfer = True
                self.gas += _COST_CALL * weight
            else:
                self.gas += _COST_CALL * weight
            self.walk_expr(callee.object, weight)
        for arg in expr.arguments:
            self.walk_expr(arg, weight)


def _root_identifier(expr: ast.Expr) -> str | None:
    """The base identifier of a (possibly nested) index chain."""
    while isinstance(expr, ast.IndexAccess):
        expr = expr.base
    if isinstance(expr, ast.Identifier):
        return expr.name
    return None


def estimate_function_cost(contract: ast.ContractDecl,
                           fn: ast.FunctionDecl) -> FunctionCostEstimate:
    """Static gas/shape estimate for one function of a contract."""
    state_vars = frozenset(v.name for v in contract.state_vars)
    walker = _CostWalker(state_vars)
    if fn.body is not None:
        walker.walk_block(fn.body)
    for modifier_name in fn.modifiers:
        for modifier in contract.modifiers:
            if modifier.name == modifier_name:
                walker.walk_block(modifier.body)
    return FunctionCostEstimate(
        name=fn.name,
        estimated_gas=walker.gas,
        has_transfer=walker.has_transfer,
        has_loop=walker.has_loop,
        reads_state=frozenset(walker.reads),
        writes_state=frozenset(walker.writes),
    )


def classify_contract(contract: ast.ContractDecl,
                      annotations: dict[str, FunctionCategory] | None = None,
                      gas_threshold: int = 100_000) -> Classification:
    """Classify every function of ``contract`` (§II-B policy).

    ``annotations`` force a category per function name.  Otherwise:
    functions performing value transfers (or only cheap bookkeeping) are
    light/public; functions whose static estimate exceeds
    ``gas_threshold`` or that contain unbounded loops are heavy/private.
    """
    annotations = annotations or {}
    result = Classification()
    for fn in contract.functions:
        if fn.is_constructor or fn.is_synthetic:
            continue
        estimate = estimate_function_cost(contract, fn)
        result.estimates[fn.name] = estimate
        if fn.name in annotations:
            category = annotations[fn.name]
        elif estimate.has_transfer or fn.is_payable:
            # The paper's recommendation: transfers stay on-chain.
            category = FunctionCategory.LIGHT_PUBLIC
        elif estimate.has_loop or estimate.estimated_gas > gas_threshold:
            category = FunctionCategory.HEAVY_PRIVATE
        elif fn.visibility == "private":
            # Private, non-transfer logic defaults to the off-chain side.
            category = FunctionCategory.HEAVY_PRIVATE
        else:
            category = FunctionCategory.LIGHT_PUBLIC
        if category is FunctionCategory.HEAVY_PRIVATE:
            result.heavy_private.append(fn.name)
        else:
            result.light_public.append(fn.name)
    if not result.light_public and result.heavy_private:
        raise SplitError(
            "every function classified heavy/private — the on-chain "
            "contract would be empty; annotate at least one function "
            "light/public"
        )
    return result
