"""Errors raised by the on/off-chain protocol layer."""

from __future__ import annotations

from repro.exceptions import ReproError


class ProtocolError(ReproError):
    """Base class for protocol-layer failures."""


class SplitError(ProtocolError):
    """The whole contract cannot be split as requested."""


class SigningError(ProtocolError):
    """A signed copy is missing, malformed, or has bad signatures."""


class StageError(ProtocolError):
    """An operation was attempted in the wrong protocol stage."""


class DisputeError(ProtocolError):
    """Dispute resolution failed (e.g. no signed copy available)."""


class ChallengeWindowClosed(StageError, DisputeError):
    """A dispute was attempted after ``challengeDeadline`` passed.

    Subclasses both :class:`StageError` (the protocol is past the
    stage where challenges are admissible) and :class:`DisputeError`
    (the dispute path rejected), so existing handlers of either
    family keep working.
    """


class AgreementError(ProtocolError):
    """Participants failed to reach unanimous off-chain agreement."""


class SettlementError(ProtocolError):
    """Netted batch settlement failed (bad leaf, batch, or policy)."""


class EngineError(ProtocolError):
    """The multi-session engine cannot make scheduling progress."""
