"""Two-stage pipelined round preparation for the session engine.

A ``_mine_round`` spends its wall clock in two very different places:
pure-CPU cryptography (RFC-6979 signing plus ECDSA sender recovery,
~2 ms per transaction even after the GLV kernels) and the strictly
serial chain work (mempool admission, block execution, receipts).
The serial path interleaves them — sign tx, admit tx, ... then mine —
so the cores idle during mining and the miner idles during signing.

:class:`RoundPipeline` splits the round into chunks of sessions and
overlaps the stages: while the engine admits and mines chunk *k*, a
:class:`~repro.chain.workers.PersistentWorkerPool` signs and
sender-recovers chunk *k+1* in the background (via the pool's
``submit_tasks``/``collect`` pair).  Determinism is preserved by
construction:

* RFC-6979 signatures are deterministic, so a worker-signed
  transaction is byte-identical to the one the serial path builds;
* nonces are allocated by the *engine* at round start with per-sender
  running counters — exactly the values the serial pool-aware
  allocation would hand out, because a sender's transactions never
  span chunks out of order;
* sender recovery runs through the same batched
  :func:`~repro.crypto.keys.recover_address_batch` kernel admission
  uses, and an unrecoverable signature falls back to the serial
  single-shot path for the identical error.

When no worker pool can be created (no ``fork``, or the pool died)
preparation simply runs inline in :meth:`submit` — same functions,
same results, no overlap.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.chain.transaction import Transaction
from repro.chain.workers import PersistentWorkerPool, WorkerPoolError
from repro.crypto import ecdsa
from repro.crypto.keys import Address, recover_address_batch

#: A planned transaction, pickled to the signing workers:
#: ``(secret, nonce, gas_price, gas_limit, to_bytes_or_None, value,
#: data)``.
TxPlan = tuple

#: How many chunks a round is cut into — the pipeline's overlap
#: granularity.  More chunks shrink the un-overlapped head (chunk 0's
#: preparation) and tail (the last chunk's mining) but add per-chunk
#: mining passes; four keeps both ends under a quarter of the round.
ROUND_CHUNKS = 4


def prepare_transactions(plans: Sequence[TxPlan]) -> list:
    """Sign and sender-recover one chunk of planned transactions.

    Runs in a forked worker (or inline as the fallback).  Returns one
    ``(v, r, s, sender_bytes_or_None)`` tuple per plan; ``None`` marks
    a signature the batch kernel could not recover — the engine then
    leaves the transaction's sender cache cold so admission raises the
    exact serial-path error.
    """
    signatures = []
    digests = []
    for secret, nonce, gas_price, gas_limit, to, value, data in plans:
        digest = Transaction.signing_hash(
            nonce, gas_price, gas_limit,
            Address(to) if to is not None else None, value, data)
        signatures.append(ecdsa.sign(digest, secret))
        digests.append(digest)
    addresses = recover_address_batch(list(zip(digests, signatures)))
    return [
        (signature.v, signature.r, signature.s,
         address.value if address is not None else None)
        for signature, address in zip(signatures, addresses)
    ]


class _InlineHandle:
    """A chunk prepared synchronously (the no-pool fallback)."""

    __slots__ = ("results",)

    def __init__(self, results: list) -> None:
        self.results = results


class _PoolHandle:
    """A chunk in flight on the worker pool."""

    __slots__ = ("handle", "stride", "plans")

    def __init__(self, handle, stride: int, plans: list) -> None:
        self.handle = handle
        self.stride = stride
        #: Kept so a pool failure mid-flight can re-prepare inline —
        #: RFC-6979 determinism makes the redo byte-identical.
        self.plans = plans


class RoundPipeline:
    """Asynchronous sign-and-recover ahead of the engine's miner.

    ``submit`` fans a chunk's plans out over the pool (strided, one
    sub-payload per worker so each amortises its batch inversions) and
    returns immediately; ``collect`` blocks for the results.  Any pool
    trouble permanently degrades to inline preparation — never an
    error, never different bytes.
    """

    def __init__(self, workers: int = 0) -> None:
        if workers <= 0:
            workers = min(4, os.cpu_count() or 1)
        self.workers = max(1, int(workers))
        self.use_processes = hasattr(os, "fork")
        self._pool: Optional[PersistentWorkerPool] = None

    def _ensure_pool(self) -> Optional[PersistentWorkerPool]:
        if not self.use_processes:
            return None
        if self._pool is None:
            try:
                self._pool = PersistentWorkerPool(
                    self.workers, prepare_transactions)
            except Exception:
                self.use_processes = False
                return None
        return self._pool

    def _degrade(self) -> None:
        """Drop to inline preparation for the rest of the run."""
        self.use_processes = False
        self.close()

    def submit(self, plans: list):
        """Start preparing one chunk; returns an opaque handle."""
        pool = self._ensure_pool()
        if pool is None or not plans:
            return _InlineHandle(prepare_transactions(plans))
        stride = min(self.workers, len(plans))
        payloads = [plans[lane::stride] for lane in range(stride)]
        try:
            handle = pool.submit_tasks(payloads)
        except WorkerPoolError:
            self._degrade()
            return _InlineHandle(prepare_transactions(plans))
        return _PoolHandle(handle, stride, plans)

    def collect(self, handle) -> list:
        """Results for one submitted chunk, in plan order."""
        if isinstance(handle, _InlineHandle):
            return handle.results
        try:
            lanes = self._pool.collect(handle.handle)
        except WorkerPoolError:
            self._degrade()
            return prepare_transactions(handle.plans)
        results: list = [None] * len(handle.plans)
        for lane, lane_results in enumerate(lanes):
            results[lane::handle.stride] = lane_results
        return results

    def close(self) -> None:
        """Shut the signing pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
