"""Contract splitting: whole contract → (on-chain, off-chain) pair.

Implements the Split/Generate stage of the paper's four-stage mechanism
(§III, Fig. 2): functions are classified light/public vs heavy/private,
each group keeps the state variables, modifiers and events it touches,
the constructor is partitioned accordingly, and finally
:mod:`repro.core.padding` appends the extra dispute functions to each
side.  Both outputs are canonical Solis source, so every participant can
recompile them to byte-identical bytecode for signing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.annotations import SplitSpec
from repro.core.classify import (
    Classification,
    classify_contract,
    estimate_function_cost,
)
from repro.core.exceptions import SplitError
from repro.core import padding
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse


@dataclass
class SplitContracts:
    """Output of the Split/Generate stage."""

    whole_name: str
    onchain_name: str
    offchain_name: str
    onchain_source: str
    offchain_source: str
    classification: Classification
    spec: SplitSpec
    result_type_source: str
    num_participants: int
    onchain_functions: list[str] = field(default_factory=list)
    offchain_functions: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Reference collection
# ---------------------------------------------------------------------------

def _collect_identifiers(node, acc: set[str]) -> None:
    """All identifier names appearing anywhere under ``node``."""
    if isinstance(node, ast.Identifier):
        acc.add(node.name)
    elif isinstance(node, ast.MemberAccess):
        _collect_identifiers(node.object, acc)
    elif isinstance(node, ast.IndexAccess):
        _collect_identifiers(node.base, acc)
        _collect_identifiers(node.index, acc)
    elif isinstance(node, ast.BinaryOp):
        _collect_identifiers(node.left, acc)
        _collect_identifiers(node.right, acc)
    elif isinstance(node, ast.UnaryOp):
        _collect_identifiers(node.operand, acc)
    elif isinstance(node, ast.FunctionCall):
        _collect_identifiers(node.callee, acc)
        for arg in node.arguments:
            _collect_identifiers(arg, acc)
    elif isinstance(node, ast.Block):
        for stmt in node.statements:
            _collect_identifiers(stmt, acc)
    elif isinstance(node, ast.VarDeclStmt):
        if node.initial is not None:
            _collect_identifiers(node.initial, acc)
    elif isinstance(node, ast.Assignment):
        _collect_identifiers(node.target, acc)
        _collect_identifiers(node.value, acc)
    elif isinstance(node, ast.ExprStmt):
        _collect_identifiers(node.expression, acc)
    elif isinstance(node, ast.IfStmt):
        _collect_identifiers(node.condition, acc)
        _collect_identifiers(node.then_branch, acc)
        if node.else_branch is not None:
            _collect_identifiers(node.else_branch, acc)
    elif isinstance(node, ast.WhileStmt):
        _collect_identifiers(node.condition, acc)
        _collect_identifiers(node.body, acc)
    elif isinstance(node, ast.ForStmt):
        for child in (node.init, node.condition, node.update, node.body):
            if child is not None:
                _collect_identifiers(child, acc)
    elif isinstance(node, ast.ReturnStmt):
        if node.value is not None:
            _collect_identifiers(node.value, acc)
    elif isinstance(node, ast.RequireStmt):
        _collect_identifiers(node.condition, acc)
    elif isinstance(node, ast.EmitStmt):
        acc.add(node.event_name)
        for arg in node.arguments:
            _collect_identifiers(arg, acc)


def _function_refs(contract: ast.ContractDecl,
                   fn: ast.FunctionDecl) -> set[str]:
    """Names referenced by a function, its modifiers, and — transitively —
    by any same-contract functions it calls."""
    refs: set[str] = set()
    seen: set[str] = set()
    queue = [fn]
    while queue:
        current = queue.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        if current.body is not None:
            _collect_identifiers(current.body, refs)
        for modifier_name in current.modifiers:
            refs.add(modifier_name)
            for modifier in contract.modifiers:
                if modifier.name == modifier_name:
                    _collect_identifiers(modifier.body, refs)
        for callee in contract.functions:
            if callee.name and callee.name in refs and callee is not current:
                queue.append(callee)
    return refs


# ---------------------------------------------------------------------------
# Split driver
# ---------------------------------------------------------------------------

def split_contract(whole_source: str, contract_name: str,
                   spec: SplitSpec) -> SplitContracts:
    """Split ``contract_name`` from ``whole_source`` per ``spec``."""
    unit = parse(whole_source)
    try:
        contract = unit.contract(contract_name)
    except KeyError as exc:
        raise SplitError(str(exc)) from exc

    classification = classify_contract(
        contract, annotations=dict(spec.annotations),
        gas_threshold=spec.gas_threshold,
    )
    _validate_spec(contract, spec, classification)

    participants_decl = _state_var(contract, spec.participants_var)
    num_participants = participants_decl.type_name.array_length

    settle_fn = contract.function(spec.settle_function)
    result_fn = contract.function(spec.result_function)
    result_type_source = settle_fn.parameters[0].type_name.to_source()

    heavy = set(classification.heavy_private)
    light = set(classification.light_public)

    onchain_fns = [fn for fn in contract.functions
                   if not fn.is_constructor and fn.name in light]
    offchain_fns = [fn for fn in contract.functions
                    if not fn.is_constructor and fn.name in heavy]

    onchain_refs: set[str] = set()
    for fn in onchain_fns:
        onchain_refs |= _function_refs(contract, fn)
    # The settle body is replicated into enforceDisputeResolution, and
    # the padded functions reference the participants array.
    onchain_refs |= _function_refs(contract, settle_fn)
    onchain_refs.add(spec.participants_var)

    offchain_refs: set[str] = set()
    for fn in offchain_fns:
        offchain_refs |= _function_refs(contract, fn)
    offchain_refs.add(spec.participants_var)

    _validate_offchain_state_is_static(contract, offchain_refs, heavy, spec)

    onchain_vars = [v for v in contract.state_vars if v.name in onchain_refs]
    offchain_vars = [v for v in contract.state_vars
                     if v.name in offchain_refs]
    onchain_mods = [m for m in contract.modifiers if m.name in onchain_refs]
    offchain_mods = [m for m in contract.modifiers
                     if m.name in offchain_refs]
    onchain_events = [e for e in contract.events if e.name in onchain_refs]
    offchain_events = [e for e in contract.events if e.name in offchain_refs]

    onchain_ctor = _split_constructor(
        contract, {v.name for v in onchain_vars})
    offchain_ctor_assigns, offchain_ctor_params = _offchain_constructor(
        contract, [v for v in offchain_vars], spec)

    onchain_name = f"{contract.name}OnChain"
    offchain_name = f"{contract.name}OffChain"

    onchain_source = padding.render_onchain_contract(
        name=onchain_name,
        state_vars=onchain_vars,
        events=onchain_events,
        modifiers=onchain_mods,
        constructor=onchain_ctor,
        functions=onchain_fns,
        settle_fn=settle_fn,
        participants_var=spec.participants_var,
        num_participants=num_participants,
        result_type=result_type_source,
        challenge_period=spec.challenge_period,
        security_deposit=spec.security_deposit,
    )
    offchain_source = padding.render_offchain_contract(
        name=offchain_name,
        state_vars=offchain_vars,
        events=offchain_events,
        modifiers=offchain_mods,
        ctor_params=offchain_ctor_params,
        ctor_assignments=offchain_ctor_assigns,
        functions=offchain_fns,
        result_fn=result_fn,
        participants_var=spec.participants_var,
        num_participants=num_participants,
        result_type=result_type_source,
    )

    return SplitContracts(
        whole_name=contract.name,
        onchain_name=onchain_name,
        offchain_name=offchain_name,
        onchain_source=onchain_source,
        offchain_source=offchain_source,
        classification=classification,
        spec=spec,
        result_type_source=result_type_source,
        num_participants=num_participants,
        onchain_functions=[fn.name for fn in onchain_fns],
        offchain_functions=[fn.name for fn in offchain_fns],
    )


def _state_var(contract: ast.ContractDecl, name: str) -> ast.StateVarDecl:
    for var in contract.state_vars:
        if var.name == name:
            return var
    raise SplitError(f"contract {contract.name!r} has no state variable "
                     f"{name!r}")


def _validate_spec(contract: ast.ContractDecl, spec: SplitSpec,
                   classification: Classification) -> None:
    participants = _state_var(contract, spec.participants_var)
    if participants.type_name.name != "array" or \
            participants.type_name.value_type.name != "address":
        raise SplitError(
            f"participants variable {spec.participants_var!r} must be a "
            "fixed-size address array (address[N])"
        )
    result_fn = contract.function(spec.result_function)
    if result_fn is None:
        raise SplitError(f"no result function {spec.result_function!r}")
    if result_fn.parameters:
        raise SplitError("the result function must take no parameters")
    if not result_fn.returns:
        raise SplitError("the result function must return a value")
    settle_fn = contract.function(spec.settle_function)
    if settle_fn is None:
        raise SplitError(f"no settle function {spec.settle_function!r}")
    if len(settle_fn.parameters) != 1:
        raise SplitError(
            "the settle function must take exactly one parameter "
            "(the off-chain result)"
        )
    if settle_fn.parameters[0].type_name.to_source() != \
            result_fn.returns[0].to_source():
        raise SplitError(
            "settle parameter type must match the result function's "
            "return type"
        )
    if spec.result_function not in classification.heavy_private:
        raise SplitError(
            f"result function {spec.result_function!r} must classify "
            "heavy/private (annotate it if the heuristic disagrees)"
        )
    if spec.settle_function not in classification.light_public:
        raise SplitError(
            f"settle function {spec.settle_function!r} must classify "
            "light/public"
        )


def _validate_offchain_state_is_static(contract: ast.ContractDecl,
                                       offchain_refs: set[str],
                                       heavy: set[str],
                                       spec: SplitSpec) -> None:
    """Heavy functions may only read constructor-set state.

    The off-chain contract snapshots state values at signing time, so a
    heavy function depending on a variable some light/public function
    mutates would silently diverge between chain and participants.
    """
    state_names = {v.name for v in contract.state_vars}
    needed = offchain_refs & state_names
    for fn in contract.functions:
        if fn.is_constructor or fn.name in heavy or fn.body is None:
            continue
        estimate = estimate_function_cost(contract, fn)
        overlap = estimate.writes_state & needed
        if overlap:
            raise SplitError(
                f"heavy/private functions read state {sorted(overlap)} "
                f"that light/public function {fn.name!r} mutates; "
                "off-chain state must be immutable after construction"
            )


def _split_constructor(contract: ast.ContractDecl,
                       side_vars: set[str]) -> ast.FunctionDecl | None:
    """The whole constructor restricted to this side's state variables."""
    ctor = contract.constructor
    if ctor is None:
        return None
    state_names = {v.name for v in contract.state_vars}
    kept_statements: list[ast.Stmt] = []
    used_params: set[str] = set()
    param_names = {p.name for p in ctor.parameters}
    for stmt in ctor.body.statements:
        refs: set[str] = set()
        _collect_identifiers(stmt, refs)
        touched_state = refs & state_names
        if not touched_state:
            continue
        if not touched_state <= side_vars:
            continue
        kept_statements.append(stmt)
        used_params |= refs & param_names
    kept_params = [p for p in ctor.parameters if p.name in used_params]
    if not kept_statements:
        return None
    return ast.FunctionDecl(
        name="",
        parameters=kept_params,
        visibility="public",
        body=ast.Block(statements=kept_statements),
        is_constructor=True,
    )


def _offchain_constructor(contract: ast.ContractDecl,
                          offchain_vars: list[ast.StateVarDecl],
                          spec: SplitSpec):
    """Constructor plan for the off-chain contract.

    Every off-chain state variable becomes a constructor argument (the
    signed bytecode embeds the values, binding them into the agreement).
    Arrays expand to one argument per element.
    """
    assignments: list[str] = []
    params: list[str] = []
    for var in offchain_vars:
        type_name = var.type_name
        if type_name.name == "array":
            element = type_name.value_type.to_source()
            for index in range(type_name.array_length):
                params.append(f"{element} __{var.name}_{index}")
                assignments.append(
                    f"{var.name}[{index}] = __{var.name}_{index};"
                )
        elif type_name.name == "mapping":
            raise SplitError(
                f"heavy/private functions may not depend on mapping state "
                f"({var.name!r}); mappings cannot be snapshotted into the "
                "off-chain contract"
            )
        else:
            params.append(f"{type_name.to_source()} __{var.name}")
            assignments.append(f"{var.name} = __{var.name};")
    return assignments, params
