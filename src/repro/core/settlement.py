"""The unified Settlement API: direct vs. netted batch settlement.

Settlement used to be smeared across ``OnOffChainProtocol.submit_result``,
per-driver ``settled`` logic and the dispute path.  This module fronts
it with one seam — :class:`SettlementPolicy` — consumed by the
:class:`~repro.core.engine.SessionEngine` and every ``ProtocolDriver``:

* :class:`DirectSettlement` is the legacy per-session path (one
  ``submitResult`` + ``finalizeResult`` pair per session, disputes
  through the Submit/Challenge window), unchanged to the gas unit;
* :class:`NettedSettlement` collects the *signed final states* of many
  completed sessions and settles the whole batch with ONE on-chain
  ``commitBatch`` transaction carrying a single Merkle root, echoing
  the Diem off-chain principle of netting batches of transactions into
  one blockchain transaction.

Under netting the committed root plus each session's mutually signed
state is the settlement instrument (channel-close style): undisputed
sessions never touch their on-chain contract again.  Safety is
unchanged because during the batch challenge window any participant
can *open* their leaf on the aggregator — reveal leaf, Merkle proof
and signed bytes on-chain — and then drive the existing
Dispute/Resolve machinery on the session contract, with the PR 4
chain-clock window enforcement intact at the opening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro import obs
from repro.chain.aggregator import (
    AGGREGATOR_NAME,
    MAX_AGGREGATOR_DEPTH,
    compile_aggregator,
)
from repro.chain.contract import DeployedContract
from repro.chain.receipt import Receipt
from repro.chain.simulator import EthereumSimulator, SimAccount
from repro.core.analytics import GasLedger
from repro.core.exceptions import SettlementError, StageError
from repro.core.participants import Participant, Strategy
from repro.crypto.ecdsa import Signature
from repro.crypto.keccak import keccak256
from repro.crypto.keys import Address, recover_address

#: The two settlement modes the engine and the CLI accept.
SETTLEMENTS = ("direct", "netted")

#: Hard cap on leaves per batch (= the deepest rendered aggregator).
MAX_BATCH_SIZE = 2 ** MAX_AGGREGATOR_DEPTH

#: Default batch-level challenge window, seconds.
DEFAULT_BATCH_WINDOW = 3_600

#: Declared gas limits for the batcher's own transactions (same
#: tight-with-headroom convention as the engine's constants).
AGGREGATOR_DEPLOY_GAS = 1_200_000
COMMIT_GAS = 250_000
OPEN_GAS = 300_000
FINALIZE_BATCH_GAS = 150_000

#: Stage key the batcher's own :class:`GasLedger` records under.
BATCH_STAGE = "settlement"

#: Padding leaf filling the tree up to the next power of two.  Never a
#: valid session leaf (``MerkleTree`` rejects it as input) and its
#: index is >= ``batchSize``, so the aggregator refuses to open it.
EMPTY_LEAF = keccak256(b"repro/settlement/empty-leaf")

_STATE_TAG = b"repro/settlement/state:"


def encode_result(value: Any) -> bytes:
    """Canonical 32-byte encoding of a session's final result.

    The apps settle on ``bool`` or ``uint`` results; raw byte results
    shorter than a word are left-padded so every leaf preimage has a
    fixed shape.
    """
    if isinstance(value, bool):
        return (1 if value else 0).to_bytes(32, "big")
    if isinstance(value, int):
        if value < 0:
            raise SettlementError(
                f"cannot encode negative result {value}")
        return value.to_bytes(32, "big")
    if isinstance(value, bytes):
        if len(value) > 32:
            return keccak256(value)
        return value.rjust(32, b"\x00")
    raise SettlementError(
        f"unsupported result type {type(value).__name__} — "
        "netted settlement encodes bool, int or bytes results")


def state_digest(session_id: int, bytecode_hash: bytes,
                 state_bytes: bytes) -> bytes:
    """The digest a representative signs over its final state."""
    return keccak256(
        _STATE_TAG + session_id.to_bytes(32, "big")
        + bytecode_hash + state_bytes)


@dataclass(frozen=True)
class SignedState:
    """One session's final state, signed by its representative.

    The triple ``(session_id, state, bytecode hash)`` plus the
    signature is everything a batch leaf commits to — enough for any
    party to later prove on-chain *what* was settled and *who*
    vouched for it.
    """

    session_id: int
    claim: Any
    state_bytes: bytes
    bytecode_hash: bytes
    signature: Signature

    @property
    def signed_bytes(self) -> bytes:
        """State encoding followed by the 65-byte signature."""
        return self.state_bytes + self.signature.to_bytes()

    @property
    def leaf(self) -> bytes:
        """``H(session_id ‖ signed final state ‖ bytecode hash)``."""
        return keccak256(
            self.session_id.to_bytes(32, "big")
            + self.signed_bytes + self.bytecode_hash)

    def verify(self, signer: Address) -> bool:
        """True iff the signature recovers to ``signer``."""
        digest = state_digest(
            self.session_id, self.bytecode_hash, self.state_bytes)
        try:
            return recover_address(digest, self.signature) == signer
        except Exception:
            return False


def sign_final_state(participant: Participant, session_id: int,
                     claim: Any, bytecode_hash: bytes) -> SignedState:
    """Build and sign one session's final-state record."""
    state_bytes = encode_result(claim)
    digest = state_digest(session_id, bytecode_hash, state_bytes)
    return SignedState(
        session_id=session_id, claim=claim, state_bytes=state_bytes,
        bytecode_hash=bytecode_hash,
        signature=participant.key.sign(digest))


class MerkleTree:
    """Keccak-256 Merkle tree over 32-byte leaves, padded to ``2**d``.

    Pair hashing is ``keccak256(left ‖ right)`` over the raw 64-byte
    concatenation — bit-identical to the rendered aggregator's
    ``keccak256(bytes32, bytes32)`` packed builtin, so proofs verify
    interchangeably off- and on-chain.
    """

    def __init__(self, leaves: Sequence[bytes]) -> None:
        leaves = list(leaves)
        if not leaves:
            raise SettlementError("a Merkle tree needs at least one leaf")
        if len(leaves) > MAX_BATCH_SIZE:
            raise SettlementError(
                f"{len(leaves)} leaves exceed the batch cap of "
                f"{MAX_BATCH_SIZE}")
        seen: set[bytes] = set()
        for index, leaf in enumerate(leaves):
            if not isinstance(leaf, bytes) or len(leaf) != 32:
                raise SettlementError(
                    f"leaf {index} is not a 32-byte digest")
            if leaf == EMPTY_LEAF:
                raise SettlementError(
                    f"leaf {index} equals the reserved padding leaf")
            if leaf in seen:
                raise SettlementError(
                    f"duplicate leaf at index {index} — every session "
                    "in a batch must commit a distinct state")
            seen.add(leaf)
        self.size = len(leaves)
        self.depth = max(0, (self.size - 1).bit_length())
        padded = leaves + [EMPTY_LEAF] * (2 ** self.depth - self.size)
        self.levels: list[list[bytes]] = [padded]
        while len(self.levels[-1]) > 1:
            level = self.levels[-1]
            self.levels.append([
                keccak256(level[i] + level[i + 1])
                for i in range(0, len(level), 2)
            ])

    @property
    def root(self) -> bytes:
        """The 32-byte batch commitment."""
        return self.levels[-1][0]

    @property
    def leaves(self) -> list[bytes]:
        """The original (unpadded) leaves."""
        return self.levels[0][:self.size]

    def proof(self, index: int) -> tuple[bytes, ...]:
        """Sibling path for ``leaf[index]``, bottom-up."""
        if not 0 <= index < self.size:
            raise SettlementError(
                f"leaf index {index} outside batch of {self.size}")
        siblings = []
        for level in self.levels[:-1]:
            siblings.append(level[index ^ 1])
            index //= 2
        return tuple(siblings)

    @staticmethod
    def verify(leaf: bytes, index: int, proof: Sequence[bytes],
               root: bytes) -> bool:
        """Recompute the root from a leaf and its sibling path."""
        if index < 0 or index >= 2 ** len(proof) and proof:
            return False
        if not proof and index != 0:
            return False
        node = leaf
        path = index
        for sibling in proof:
            if path % 2 == 1:
                node = keccak256(sibling + node)
            else:
                node = keccak256(node + sibling)
            path //= 2
        return node == root


@dataclass
class PendingLeaf:
    """One session enlisted with the batcher, awaiting a batch."""

    protocol: Any  # OnOffChainProtocol (untyped to avoid an import cycle)
    state: SignedState
    signer: Participant
    commitment: Optional["BatchCommitment"] = None

    @property
    def leaf(self) -> bytes:
        """The session's batch leaf."""
        return self.state.leaf


@dataclass
class SettlementBatch:
    """One committed batch: aggregator, tree and member sessions."""

    batch_id: int
    aggregator: DeployedContract
    tree: MerkleTree
    entries: tuple[PendingLeaf, ...]
    challenge_deadline: int
    commit_receipt: Receipt
    finalize_receipt: Optional[Receipt] = None
    finalized: bool = False
    opened: set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        """Number of sessions netted into this batch."""
        return len(self.entries)


@dataclass(frozen=True)
class BatchCommitment:
    """One session's view of its committed batch (stage payload)."""

    batch: SettlementBatch
    index: int
    state: SignedState
    proof: tuple[bytes, ...]

    @property
    def leaf(self) -> bytes:
        """This session's leaf in the batch tree."""
        return self.state.leaf

    @property
    def claim(self) -> Any:
        """The result the representative signed into the batch."""
        return self.state.claim

    @property
    def root(self) -> bytes:
        """The committed batch root."""
        return self.batch.tree.root

    @property
    def challenge_deadline(self) -> int:
        """When this session's batch window closes (chain time)."""
        return self.batch.challenge_deadline

    @property
    def finalized(self) -> bool:
        """Whether the batch has been finalized on-chain."""
        return self.batch.finalized

    @property
    def opened(self) -> bool:
        """Whether this leaf was opened (contested) on-chain."""
        return self.index in self.batch.opened


@dataclass
class BatchPlan:
    """A prepared batch: tree built, aggregator compiled, not yet sent."""

    entries: tuple[PendingLeaf, ...]
    tree: MerkleTree
    init_code: bytes
    abi: Any

    @property
    def size(self) -> int:
        """Number of sessions in the prepared batch."""
        return len(self.entries)


class SettlementBatcher:
    """Collects completed sessions and settles them in netted batches.

    The batcher is its own on-chain actor (one funded account) with its
    own :class:`GasLedger`: aggregator deployment, ``commitBatch`` and
    ``finalizeBatch`` gas is batch-level cost amortized over the batch,
    never billed to any single session's ledger.
    """

    def __init__(self, simulator: EthereumSimulator,
                 challenge_period: int = DEFAULT_BATCH_WINDOW,
                 account: Optional[SimAccount] = None) -> None:
        if challenge_period <= 0:
            raise SettlementError(
                "netted settlement needs a positive batch challenge "
                "window — with no window a false leaf could never be "
                "opened")
        self.simulator = simulator
        self.challenge_period = challenge_period
        self.account = account or simulator.create_account(
            "settlement-batcher", name="batcher")
        self.ledger = GasLedger()
        self.pending: list[PendingLeaf] = []
        self.batches: list[SettlementBatch] = []
        self.sessions_settled = 0

    # -- enlisting -----------------------------------------------------

    def enlist(self, protocol: Any, claim: Any, session_id: int = 0,
               signer: Optional[Participant] = None) -> PendingLeaf:
        """Queue one completed session's signed final state.

        ``protocol`` must have finished Deploy/Sign: the leaf binds the
        mutually signed off-chain bytecode hash, so there is nothing to
        net before everyone holds a signed copy.
        """
        signer = signer or protocol.participants[0]
        copy = protocol.signed_copies.get(signer.name)
        if copy is None:
            raise StageError(
                "collect_signatures() must precede enlist() — the "
                "batch leaf commits to the signed bytecode hash")
        state = sign_final_state(
            signer, session_id, claim, copy.bytecode_hash)
        pending = PendingLeaf(protocol=protocol, state=state,
                              signer=signer)
        self.pending.append(pending)
        return pending

    # -- preparing and committing --------------------------------------

    def prepare_batch(self,
                      entries: Optional[Iterable[PendingLeaf]] = None,
                      ) -> BatchPlan:
        """Pop pending sessions and build the tree + aggregator code."""
        taken = list(entries) if entries is not None else list(self.pending)
        if not taken:
            raise SettlementError("no pending sessions to batch")
        for entry in taken:
            if entry not in self.pending:
                raise SettlementError(
                    "entry was not enlisted with this batcher")
        self.pending = [p for p in self.pending if p not in taken]
        tree = MerkleTree([entry.leaf for entry in taken])
        compiled = compile_aggregator(tree.depth, self.challenge_period)
        init_code = (compiled.init_code
                     + compiled.abi.encode_constructor_args(
                         [self.account.address]))
        return BatchPlan(entries=tuple(taken), tree=tree,
                         init_code=init_code, abi=compiled.abi)

    def commit_prepared(self, plan: BatchPlan,
                        deploy_receipt: Receipt,
                        commit_receipt: Receipt) -> SettlementBatch:
        """Bind mined deploy + commit receipts into a live batch.

        The deferred twin of :meth:`commit` for callers that mine the
        two transactions themselves (the engine).  Records batch-level
        gas, advances every member session to ``Stage.COMMITTED`` and
        hands each its :class:`BatchCommitment`.
        """
        if deploy_receipt.contract_address is None:
            raise SettlementError(
                "aggregator deployment carries no contract address")
        aggregator = DeployedContract(
            address=deploy_receipt.contract_address, abi=plan.abi,
            simulator=self.simulator, deploy_receipt=deploy_receipt)
        self.ledger.record(BATCH_STAGE, "deploy aggregator",
                           deploy_receipt, self.account.name)
        self.ledger.record(BATCH_STAGE, "commitBatch",
                           commit_receipt, self.account.name)
        batch = SettlementBatch(
            batch_id=len(self.batches),
            aggregator=aggregator,
            tree=plan.tree,
            entries=plan.entries,
            challenge_deadline=aggregator.call("challengeDeadline"),
            commit_receipt=commit_receipt,
        )
        self.batches.append(batch)
        for index, entry in enumerate(plan.entries):
            commitment = BatchCommitment(
                batch=batch, index=index, state=entry.state,
                proof=plan.tree.proof(index))
            entry.commitment = commitment
            entry.protocol.commit_batch(commitment)
        if obs.enabled():
            obs.inc(obs.names.METRIC_SETTLEMENT_BATCHES)
            obs.inc(obs.names.METRIC_SETTLEMENT_BATCHED_SESSIONS,
                    batch.size)
            obs.observe(obs.names.METRIC_SETTLEMENT_BATCH_SIZE,
                        batch.size)
            obs.inc(obs.names.METRIC_SETTLEMENT_BATCH_GAS,
                    deploy_receipt.gas_used + commit_receipt.gas_used)
        return batch

    def commit(self,
               entries: Optional[Iterable[PendingLeaf]] = None,
               ) -> SettlementBatch:
        """Deploy the aggregator and commit the batch root (sync path).

        Requires an auto-mining simulator; the engine uses
        :meth:`prepare_batch` + :meth:`commit_prepared` and mines the
        two transactions through its own scheduler instead.
        """
        with obs.span(obs.names.SPAN_SETTLEMENT_COMMIT,
                      pending=len(self.pending)):
            plan = self.prepare_batch(entries)
            deploy_receipt = self.simulator.deploy_bytecode(
                self.account, plan.init_code,
                gas_limit=AGGREGATOR_DEPLOY_GAS)
            commit_data = plan.abi.function("commitBatch").encode_call(
                [plan.tree.root, plan.size])
            commit_receipt = self.simulator.transact(
                self.account, deploy_receipt.contract_address,
                data=commit_data, gas_limit=COMMIT_GAS)
            return self.commit_prepared(
                plan, deploy_receipt, commit_receipt)

    # -- finalizing ----------------------------------------------------

    def finalize_prepared(self, batch: SettlementBatch,
                          receipt: Receipt) -> SettlementBatch:
        """Bind a mined ``finalizeBatch`` receipt and settle members."""
        self.ledger.record(BATCH_STAGE, "finalizeBatch", receipt,
                           self.account.name)
        batch.finalize_receipt = receipt
        batch.finalized = True
        for entry in batch.entries:
            if entry.protocol.stage is _stage().COMMITTED:
                entry.protocol.settle_batch_commitment()
        self.sessions_settled += batch.size
        if obs.enabled():
            obs.inc(obs.names.METRIC_SETTLEMENT_BATCH_GAS,
                    receipt.gas_used)
        return batch

    def finalize(self, batch: SettlementBatch) -> SettlementBatch:
        """Wait out the window and finalize the batch (sync path)."""
        if batch.finalized:
            raise SettlementError(
                f"batch {batch.batch_id} is already finalized")
        with obs.span(obs.names.SPAN_SETTLEMENT_FINALIZE,
                      batch=batch.batch_id, size=batch.size):
            self.simulator.advance_time_to(batch.challenge_deadline)
            receipt = batch.aggregator.transact(
                "finalizeBatch", sender=self.account,
                gas_limit=FINALIZE_BATCH_GAS)
            return self.finalize_prepared(batch, receipt)

    # -- accounting ----------------------------------------------------

    def total_gas(self) -> int:
        """All batch-level on-chain gas the batcher has paid."""
        return self.ledger.total()

    def amortized_gas_per_session(self) -> float:
        """Batch-level gas averaged over every netted session."""
        if self.sessions_settled == 0:
            return 0.0
        return self.total_gas() / self.sessions_settled


def _stage():
    """The Stage enum, imported late to avoid a protocol import cycle."""
    from repro.core.protocol import Stage
    return Stage


# ---------------------------------------------------------------------------
# The SettlementPolicy seam
# ---------------------------------------------------------------------------


class SettlementPolicy:
    """How completed sessions turn their agreed result into settlement.

    One policy instance is shared by every driver an engine runs; the
    driver generator delegates everything after unanimous agreement to
    ``settle``.  Two implementations exist: :class:`DirectSettlement`
    (per-session submit/finalize, the legacy path) and
    :class:`NettedSettlement` (batched Merkle commitment).
    """

    name = "abstract"

    def settle(self, driver: Any):
        """Generator over the driver's settlement steps (engine form)."""
        raise NotImplementedError

    def session_settled(self, driver: Any) -> bool:
        """Whether one driver's session reached a terminal stage."""
        Stage = _stage()
        return driver.protocol.stage in (Stage.SETTLED, Stage.RESOLVED)

    def _agree(self, driver: Any):
        """Shared prelude: wait for the result, agree off-chain."""
        from repro.core.engine import WaitUntil

        ready_at = driver.submit_ready_at()
        if ready_at is not None:
            yield WaitUntil(ready_at)
        driver.truth = driver.protocol.reach_unanimous_agreement()


class DirectSettlement(SettlementPolicy):
    """Per-session on-chain settlement (the legacy implicit path).

    One ``submitResult`` opens the challenge window, honest parties
    police the proposal, and either ``finalizeResult`` or the dispute
    pair closes the session — transaction-for-transaction identical to
    the pre-policy engine, so ledgers and Table II gas are unchanged.
    """

    name = "direct"

    def settle(self, driver: Any):
        """Submit, police the window, then finalize or dispute."""
        from repro.core.engine import (
            FINALIZE_GAS,
            SUBMIT_GAS,
            TxIntent,
            WaitUntil,
        )
        from repro.core.protocol import Stage, results_equal

        yield from self._agree(driver)
        protocol = driver.protocol
        rep = driver.representative

        challenger: Optional[Participant] = None
        if rep.strategy is Strategy.REFUSES_TO_SETTLE:
            # Refusal to settle: no proposal ever lands; an honest
            # participant escalates straight to Dispute/Resolve.
            challenger = driver._pick_challenger()
        else:
            claim = rep.claimed_result(driver.truth)
            [__] = yield [TxIntent(
                sender=rep.account, to=protocol.onchain.address,
                data=driver.encode_onchain("submitResult", claim),
                gas_limit=SUBMIT_GAS, stage=Stage.PROPOSED.value,
                label="submitResult", actor=rep.name,
            )]
            protocol.stage = Stage.PROPOSED

            # Challenge window: honest parties police the proposal —
            # against the same chain clock the contract enforces.
            proposed = protocol.onchain.call("proposedResult")
            deadline = protocol.onchain.call("challengeDeadline")
            if not results_equal(proposed, driver.truth):
                challenger = driver._pick_challenger()
                if protocol.simulator.chain.next_timestamp() >= deadline:
                    # The window already closed under us (adversarial
                    # stalling): the false proposal stands and will
                    # finalize — disputing now would only revert.
                    driver.missed_window = True
                    challenger = None
            if challenger is None:
                yield WaitUntil(deadline)
                closer = protocol.participants[-1]
                [__] = yield [TxIntent(
                    sender=closer.account, to=protocol.onchain.address,
                    data=driver.encode_onchain("finalizeResult"),
                    gas_limit=FINALIZE_GAS, stage=Stage.PROPOSED.value,
                    label="finalizeResult", actor=closer.name,
                )]
                protocol.stage = Stage.SETTLED
                return

        yield from driver.dispute_steps(challenger)


class NettedSettlement(SettlementPolicy):
    """Batched Merkle settlement through a :class:`SettlementBatcher`.

    The session enlists its signed final state and parks until the
    engine flushes a batch; the batcher's commit/open/finalize rounds
    (including dispute-via-opening for contested leaves) run inside
    the engine's ``_settle_batch``.
    """

    name = "netted"

    def __init__(self, batcher: SettlementBatcher) -> None:
        self.batcher = batcher

    def settle(self, driver: Any):
        """Enlist with the batcher and park until the batch settles."""
        from repro.core.engine import WaitForBatch

        yield from self._agree(driver)
        rep = driver.representative
        if rep.strategy is Strategy.REFUSES_TO_SETTLE:
            # Nothing to net: the representative hands the batcher no
            # signed state, so an honest participant escalates
            # straight to Dispute/Resolve on the session contract
            # (Table I's SIGNED -> RESOLVED edge, as in direct mode).
            challenger = driver._pick_challenger()
            yield from driver.dispute_steps(challenger)
            return
        claim = rep.claimed_result(driver.truth)
        pending = self.batcher.enlist(
            driver.protocol, claim, session_id=driver.session_id,
            signer=rep)
        yield WaitForBatch(pending)


def build_policy(settlement: str, simulator: EthereumSimulator,
                 challenge_period: int = DEFAULT_BATCH_WINDOW,
                 ) -> SettlementPolicy:
    """Construct the policy named by a ``settlement`` config knob."""
    if settlement == "direct":
        return DirectSettlement()
    if settlement == "netted":
        return NettedSettlement(SettlementBatcher(
            simulator, challenge_period=challenge_period))
    raise SettlementError(
        f"unknown settlement mode {settlement!r}; "
        f"choose from {SETTLEMENTS}")


__all__ = [
    "AGGREGATOR_NAME",
    "AGGREGATOR_DEPLOY_GAS",
    "BATCH_STAGE",
    "BatchCommitment",
    "BatchPlan",
    "COMMIT_GAS",
    "DEFAULT_BATCH_WINDOW",
    "DirectSettlement",
    "EMPTY_LEAF",
    "FINALIZE_BATCH_GAS",
    "MAX_BATCH_SIZE",
    "MerkleTree",
    "NettedSettlement",
    "OPEN_GAS",
    "PendingLeaf",
    "SETTLEMENTS",
    "SettlementBatch",
    "SettlementBatcher",
    "SettlementPolicy",
    "SignedState",
    "build_policy",
    "encode_result",
    "sign_final_state",
    "state_digest",
]
