"""Engine checkpointing and crash recovery over the durable store.

The :class:`~repro.core.engine.SessionEngine` commits one WAL
transaction per scheduling step (spawn bootstrap, every mined round,
every settled batch, run end).  At each commit point the mempool is
provably empty — a round mines everything it queued — so a recovered
run never has to reconstruct in-flight transactions.  What *is*
persisted per session:

* a **journal** of every mined round: the intents' (stage, label,
  actor) triples plus the mined transaction hashes, and — for netted
  sessions — the order in which the session parked with the batcher;
* a **terminal summary** once the session finishes: final stage,
  driver flags, the agreed truth, the full gas ledger, and enough
  receipt hashes to re-attach the on-chain contract and the dispute
  outcome.

Recovery (``repro engine --store=... --resume``) restores the chain
wholesale from the store, rebuilds terminal sessions from their
summaries (generators are *not* re-run — re-executing a finished
session against a later clock could diverge at its window checks),
and **replays** mid-flight sessions: the driver generator is re-run
from the top, fed the journaled receipts round by round — every label
is checked against the journal, a mismatch is a hard
:class:`RecoveryError` — until it reaches the crash frontier, where
the engine's normal scheduler takes over and finishes the session
under the PR 4 chain-clock challenge window.  Signature exchange
re-posts over a fresh Whisper bus and re-reads it via ``peek_all``
(deterministic: RFC-6979 signatures over fixed bytecode), which is the
bootstrap read the recovery path leans on.

Replay is time-safe for mid-flight sessions because a session between
submit and dispute completion has transaction work every round, so no
``WaitUntil`` warp lands inside that span: the clock at the crash
frontier trails the original run by at most the round's block
interval, far inside the 3600 s challenge window.  The full invariant
list lives in ``docs/persistence.md``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import obs
from repro.chain.store import ChainStore
from repro.core.analytics import GasEntry
from repro.core.engine import (
    TxIntent,
    WaitForBatch,
    WaitUntil,
    _SessionState,
)
from repro.core.exceptions import EngineError
from repro.core.protocol import Stage
from repro.crypto import rlp
from repro.crypto.keys import Address
from repro.storage.kv import DEFAULT_COMPACT_BYTES, KVStore
from repro.storage.storable import StorableValue

#: Store format stamp; bumped on any incompatible layout change.
STORE_FORMAT = b"repro-store/1"

#: Engine-facing namespaces (the chain's live in repro.chain.store).
NS_ENGINE = b"engmeta"
NS_JOURNAL = b"sessjournal"
NS_SUMMARY = b"sesssummary"

#: Journal entry kinds.
KIND_ROUND = b"round"
KIND_PARK = b"park"

#: How many consecutive ``WaitUntil`` yields replay will skip before
#: deciding the generator is not converging on the journaled round.
_MAX_WAIT_SKIPS = 16


class RecoveryError(EngineError):
    """A store could not be recovered (divergence, bad config, skew)."""


# ---------------------------------------------------------------------------
# Tagged value codec (session truths / claims: None, bool, int, bytes, str)
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> list:
    """RLP-embeddable ``[tag, payload]`` for a session result value."""
    if value is None:
        return [b"n", b""]
    if isinstance(value, bool):
        return [b"b", b"\x01" if value else b""]
    if isinstance(value, int):
        if value < 0:
            return [b"j", (-value).to_bytes(32, "big")]
        return [b"i", value.to_bytes(32, "big")]
    if isinstance(value, bytes):
        return [b"y", value]
    if isinstance(value, str):
        return [b"s", value.encode("utf-8")]
    raise RecoveryError(
        f"cannot persist session value of type {type(value).__name__}")


def decode_value(item: list) -> Any:
    """Inverse of :func:`encode_value`."""
    tag, payload = item
    if tag == b"n":
        return None
    if tag == b"b":
        return bool(payload)
    if tag == b"i":
        return int.from_bytes(payload, "big")
    if tag == b"j":
        return -int.from_bytes(payload, "big")
    if tag == b"y":
        return payload
    if tag == b"s":
        return payload.decode("utf-8")
    raise RecoveryError(f"unknown value tag {tag!r} in store")


def _encode_ledger(entries: list[GasEntry]) -> list:
    return [[e.stage.encode("utf-8"), e.label.encode("utf-8"), e.gas,
             e.actor.encode("utf-8"), e.block_number + 1]
            for e in entries]


def _decode_ledger(raw: list) -> list[GasEntry]:
    return [GasEntry(stage=stage.decode("utf-8"),
                     label=label.decode("utf-8"),
                     gas=rlp.decode_int(gas),
                     actor=actor.decode("utf-8"),
                     block_number=rlp.decode_int(block) - 1)
            for stage, label, gas, actor, block in raw]


def _session_key(session_id: int) -> bytes:
    return struct.pack(">I", session_id)


def _journal_key(session_id: int, seq: int) -> bytes:
    return struct.pack(">II", session_id, seq)


# ---------------------------------------------------------------------------
# Persisted session records
# ---------------------------------------------------------------------------

@dataclass
class SessionSummary:
    """One finished session, as reconstructed from the store."""

    status: bytes  # b"done" | b"error"
    error_text: str
    stage_value: str
    aborted: bool
    missed_window: bool
    abort_reason: str
    truth: Any
    ledger: list[GasEntry]
    deploy_tx_hash: bytes
    signed: bool
    dispute: Optional[tuple[bytes, bytes, bytes]]  # instance, deploy, resolve
    commitment: Optional[tuple[Any, int, bool, bool]]  # claim, deadline,
    #                                                    finalized, opened


class RestoredCommitment:
    """Stand-in for a terminal netted session's ``BatchCommitment``.

    The full commitment references the live batch object (tree,
    aggregator handle); a *terminal* restored session only ever needs
    the claim, the batch deadline and the finalized/opened flags —
    exactly what ``OnOffChainProtocol.outcome()`` and
    ``challenge_deadline()`` read.
    """

    def __init__(self, claim: Any, challenge_deadline: int,
                 finalized: bool = True, opened: bool = False) -> None:
        self.claim = claim
        self.challenge_deadline = challenge_deadline
        self.finalized = finalized
        self.opened = opened


# ---------------------------------------------------------------------------
# RunStore: the engine's facade over one KVStore directory
# ---------------------------------------------------------------------------

class RunStore:
    """One ``repro engine`` run's durable state (``--store=PATH``)."""

    def __init__(self, directory, *, fsync_batch: int = 1,
                 compact_bytes: int = DEFAULT_COMPACT_BYTES,
                 auto_compact: bool = True) -> None:
        self.kv = KVStore(directory, fsync_batch=fsync_batch,
                          compact_bytes=compact_bytes,
                          auto_compact=auto_compact)
        self.chain = ChainStore(self.kv)
        #: Extra config pairs the CLI wants bound into (and verified
        #: against) the store — app, dishonesty, gas limits.
        self.extra_config: dict[str, str] = {}
        self.status = StorableValue(self.kv, NS_ENGINE, b"status")
        self.config = StorableValue(self.kv, NS_ENGINE, b"config")
        self.counters = StorableValue(self.kv, NS_ENGINE, b"counters")
        self.batcher_state = StorableValue(self.kv, NS_ENGINE, b"batcher")
        self.park_seq = StorableValue(
            self.kv, NS_ENGINE, b"park_seq",
            encode=lambda v: v.to_bytes(8, "big"),
            decode=lambda raw: int.from_bytes(raw, "big"))
        self._journal_seq: dict[int, int] = {}
        for key in self.kv.keys(NS_JOURNAL):
            sid = struct.unpack(">I", key[:4])[0]
            self._journal_seq[sid] = self._journal_seq.get(sid, 0) + 1

    def close(self) -> None:
        """Close the store (staged-but-uncommitted writes are lost)."""
        self.kv.close()

    def bootstrapped(self) -> bool:
        """True once a run's first checkpoint committed."""
        return self.config.exists()

    # -- config --------------------------------------------------------

    def stage_config(self, record: dict[str, str]) -> None:
        """Stage the run's configuration (bootstrap only)."""
        pairs = sorted({**record, **self.extra_config}.items())
        self.config.set(rlp.encode(
            [[k.encode("utf-8"), v.encode("utf-8")] for k, v in pairs]))

    def load_config(self) -> dict[str, str]:
        """The configuration the store was bootstrapped with."""
        raw = self.config.get()
        if raw is None:
            return {}
        return {k.decode("utf-8"): v.decode("utf-8")
                for k, v in rlp.decode(raw)}

    def verify_config(self, record: dict[str, str]) -> None:
        """Reject a resume whose flags differ from the original run."""
        stored = self.load_config()
        current = {**record, **self.extra_config}
        mismatches = sorted(
            key for key in set(stored) | set(current)
            if stored.get(key) != current.get(key))
        if mismatches:
            details = ", ".join(
                f"{key}: stored {stored.get(key)!r} vs "
                f"resumed {current.get(key)!r}" for key in mismatches)
            raise RecoveryError(
                f"--resume configuration mismatch ({details}); a store "
                "can only be resumed with the flags it was created with")

    # -- engine meta ---------------------------------------------------

    def stage_engine_meta(self, engine) -> None:
        """Stage counters + batcher state (every checkpoint)."""
        counters = [
            [name.encode("utf-8"),
             int(engine.registry.get(name).total())]
            for name in (obs.names.METRIC_ENGINE_BLOCKS,
                         obs.names.METRIC_ENGINE_TXS,
                         obs.names.METRIC_ENGINE_ROUNDS)
        ]
        self.counters.set(rlp.encode(counters))
        batcher = engine.batcher
        if batcher is not None:
            self.batcher_state.set(rlp.encode([
                batcher.sessions_settled,
                len(batcher.batches),
                _encode_ledger(batcher.ledger.entries),
            ]))
        if not self.status.exists():
            self.status.set(b"running")

    def load_counters(self) -> list[tuple[str, int]]:
        """Persisted engine counter (metric name, total) pairs."""
        raw = self.counters.get()
        if raw is None:
            return []
        return [(name.decode("utf-8"), rlp.decode_int(value))
                for name, value in rlp.decode(raw)]

    def load_batcher_state(self) -> Optional[tuple[int, int, list]]:
        """Persisted (sessions_settled, batch count, ledger entries)."""
        raw = self.batcher_state.get()
        if raw is None:
            return None
        settled, batches, entries = rlp.decode(raw)
        return (rlp.decode_int(settled), rlp.decode_int(batches),
                _decode_ledger(entries))

    # -- per-session journal -------------------------------------------

    def stage_round(self, session_id: int,
                    txs: list[tuple[str, str, str, bytes]]) -> None:
        """Journal one mined round: (stage, label, actor, tx hash)."""
        seq = self._journal_seq.get(session_id, 0)
        self._journal_seq[session_id] = seq + 1
        self.kv.put(NS_JOURNAL, _journal_key(session_id, seq),
                    rlp.encode([KIND_ROUND, [
                        [stage.encode("utf-8"), label.encode("utf-8"),
                         actor.encode("utf-8"), tx_hash]
                        for stage, label, actor, tx_hash in txs]]))

    def stage_park(self, session_id: int) -> int:
        """Journal that the session enlisted with the batcher."""
        order = self.park_seq.get(0)
        self.park_seq.set(order + 1)
        seq = self._journal_seq.get(session_id, 0)
        self._journal_seq[session_id] = seq + 1
        self.kv.put(NS_JOURNAL, _journal_key(session_id, seq),
                    rlp.encode([KIND_PARK, order]))
        return order

    def load_journal(self, session_id: int) -> list[tuple[bytes, Any]]:
        """One session's journal, oldest first."""
        prefix = _session_key(session_id)
        entries: list[tuple[bytes, Any]] = []
        for key, raw in self.kv.items(NS_JOURNAL):
            if key[:4] != prefix:
                continue
            kind, payload = rlp.decode(raw)
            if kind == KIND_ROUND:
                entries.append((kind, [
                    (stage.decode("utf-8"), label.decode("utf-8"),
                     actor.decode("utf-8"), tx_hash)
                    for stage, label, actor, tx_hash in payload]))
            elif kind == KIND_PARK:
                entries.append((kind, rlp.decode_int(payload)))
            else:
                raise RecoveryError(
                    f"unknown journal entry kind {kind!r}")
        return entries

    def load_park_order(self) -> dict[int, int]:
        """session_id -> enlist order, for every journaled park."""
        order: dict[int, int] = {}
        for key, raw in self.kv.items(NS_JOURNAL):
            kind, payload = rlp.decode(raw)
            if kind == KIND_PARK:
                sid = struct.unpack(">I", key[:4])[0]
                order[sid] = rlp.decode_int(payload)
        return order

    # -- terminal summaries --------------------------------------------

    def stage_summary(self, state: _SessionState) -> None:
        """Stage a finished session's terminal summary."""
        driver = state.driver
        protocol = driver.protocol
        status = b"error" if state.error is not None else b"done"
        error_text = "" if state.error is None else str(state.error)
        deploy_hash = b""
        onchain = protocol.onchain
        if onchain is not None and onchain.deploy_receipt is not None:
            deploy_hash = onchain.deploy_receipt.transaction_hash
        dispute = protocol._dispute_outcome
        dispute_rec = [0, b"", b"", b""]
        if dispute is not None:
            dispute_rec = [
                1, dispute.instance_address.value,
                dispute.deploy_receipt.transaction_hash,
                dispute.resolve_receipt.transaction_hash]
        commitment = protocol.batch_commitment
        commit_rec: list = [0, [b"n", b""], 0, 0, 0]
        if commitment is not None:
            commit_rec = [
                1, encode_value(commitment.claim),
                commitment.challenge_deadline,
                1 if commitment.finalized else 0,
                1 if commitment.opened else 0]
        raw = rlp.encode([
            status,
            error_text.encode("utf-8"),
            protocol.stage.value.encode("utf-8"),
            [1 if driver.aborted else 0,
             1 if driver.missed_window else 0],
            driver.abort_reason.encode("utf-8"),
            encode_value(driver.truth),
            _encode_ledger(protocol.ledger.entries),
            deploy_hash,
            1 if protocol.signed_copies else 0,
            dispute_rec,
            commit_rec,
        ])
        self.kv.put(NS_SUMMARY, _session_key(driver.session_id), raw)

    def load_summary(self, session_id: int) -> Optional[SessionSummary]:
        """The terminal summary for one session, if it finished."""
        raw = self.kv.get(NS_SUMMARY, _session_key(session_id))
        if raw is None:
            return None
        (status, error_text, stage_value, flags, abort_reason, truth,
         ledger, deploy_hash, signed, dispute_rec, commit_rec) = \
            rlp.decode(raw)
        aborted, missed = flags
        dispute = None
        if rlp.decode_int(dispute_rec[0]):
            dispute = (dispute_rec[1], dispute_rec[2], dispute_rec[3])
        commitment = None
        if rlp.decode_int(commit_rec[0]):
            commitment = (
                decode_value(commit_rec[1]),
                rlp.decode_int(commit_rec[2]),
                bool(rlp.decode_int(commit_rec[3])),
                bool(rlp.decode_int(commit_rec[4])))
        return SessionSummary(
            status=status,
            error_text=error_text.decode("utf-8"),
            stage_value=stage_value.decode("utf-8"),
            aborted=bool(rlp.decode_int(aborted)),
            missed_window=bool(rlp.decode_int(missed)),
            abort_reason=abort_reason.decode("utf-8"),
            truth=decode_value(truth),
            ledger=_decode_ledger(ledger),
            deploy_tx_hash=deploy_hash,
            signed=bool(rlp.decode_int(signed)),
            dispute=dispute,
            commitment=commitment,
        )


# ---------------------------------------------------------------------------
# Recovery proper
# ---------------------------------------------------------------------------

def recover_sessions(engine) -> list[_SessionState]:
    """Rebuild the engine's session states from a committed store.

    Chain first (blocks, receipts, state, clock), then counters and
    batcher accounting, then every session: terminal ones from their
    summaries, mid-flight ones by journal-driven replay.  Returns the
    session list in driver order, positioned exactly at the crash
    frontier.
    """
    store = engine.store
    engine.simulator.chain.restore_from_store()
    for name, value in store.load_counters():
        if value:
            engine.registry.get(name).inc(value)
    batcher_state = store.load_batcher_state()
    if engine.batcher is not None and batcher_state is not None:
        settled, __, entries = batcher_state
        engine.batcher.sessions_settled = settled
        for entry in entries:
            engine.batcher.ledger.record_raw(
                entry.stage, entry.label, entry.gas, actor=entry.actor,
                block_number=entry.block_number)
    park_order = store.load_park_order()

    sessions: list[_SessionState] = []
    replayed = 0
    for driver in engine.drivers:
        summary = store.load_summary(driver.session_id)
        if summary is not None:
            sessions.append(_restore_terminal(engine, driver, summary))
        else:
            sessions.append(_replay_session(engine, driver, store))
            replayed += 1
    if obs.enabled():
        obs.inc(obs.names.METRIC_STORAGE_SESSIONS_REPLAYED, replayed)

    if engine.batcher is not None and park_order:
        # Re-enlistment during replay runs in session order; the
        # original run enlisted in round-arrival order.  Restore it so
        # batch composition (tree, leaf indices) is reproduced.
        fallback = len(park_order)
        engine.batcher.pending.sort(
            key=lambda p: park_order.get(p.state.session_id, fallback))
    return sessions


def _restore_terminal(engine, driver,
                      summary: SessionSummary) -> _SessionState:
    """Rebuild a finished session from its summary (no generator run)."""
    protocol = driver.protocol
    state = _SessionState(driver=driver, generator=driver.steps())
    state.done = True
    if summary.status == b"error":
        state.error = EngineError(summary.error_text)
    driver.aborted = summary.aborted
    driver.missed_window = summary.missed_window
    driver.abort_reason = summary.abort_reason
    driver.truth = summary.truth

    if summary.deploy_tx_hash:
        # Re-attach the on-chain half against the restored chain, and
        # re-run the (deterministic) signature exchange so outcome()
        # and dispute queries read live contract state.
        protocol.prepare_deploy(driver.plan["constructor_args"],
                                driver.plan["offchain_state"])
        receipt = engine.simulator.get_receipt(summary.deploy_tx_hash)
        protocol.attach_onchain(receipt)
        if summary.signed:
            protocol.collect_signatures()
    if summary.dispute is not None and protocol.onchain is not None:
        instance, deploy_hash, resolve_hash = summary.dispute
        protocol.record_dispute(
            Address(instance),
            engine.simulator.get_receipt(deploy_hash),
            engine.simulator.get_receipt(resolve_hash))
    if summary.commitment is not None:
        claim, deadline, finalized, opened = summary.commitment
        protocol.batch_commitment = RestoredCommitment(
            claim, deadline, finalized=finalized, opened=opened)
    protocol.stage = Stage(summary.stage_value)
    protocol.ledger.entries.clear()
    for entry in summary.ledger:
        protocol.ledger.record_raw(
            entry.stage, entry.label, entry.gas, actor=entry.actor,
            block_number=entry.block_number)
    return state


def _replay_session(engine, driver, store: RunStore) -> _SessionState:
    """Re-run a mid-flight driver against its journal.

    The generator is driven with the journaled receipts (fetched from
    the restored chain — they are never re-mined) and stops at the
    crash frontier with a live pending step for the scheduler.  Replay
    never queues transactions and never touches engine counters — both
    were already persisted by the crashed run.
    """
    sim = engine.simulator
    protocol = driver.protocol
    state = _SessionState(driver=driver, generator=driver.steps())
    entries = store.load_journal(driver.session_id)

    def advance(value):
        """Pump the generator; mid-replay exhaustion is a skew error."""
        try:
            if value is _START:
                return next(state.generator)
            return state.generator.send(value)
        except StopIteration:
            raise RecoveryError(
                f"session {driver.session_id}: generator finished "
                "during replay but no terminal summary was stored — "
                "journal/summary skew") from None

    _START = object()
    step = advance(_START)
    for kind, payload in entries:
        if kind == KIND_PARK:
            step = _skip_waits(driver, state, step)
            if not isinstance(step, WaitForBatch):
                raise RecoveryError(
                    f"session {driver.session_id}: journal says the "
                    f"session parked but replay yielded {step!r}")
            continue
        step = _skip_waits(driver, state, step)
        if not (isinstance(step, list)
                and all(isinstance(i, TxIntent) for i in step)):
            raise RecoveryError(
                f"session {driver.session_id}: journal holds a mined "
                f"round but replay yielded {step!r}")
        if len(step) != len(payload):
            raise RecoveryError(
                f"session {driver.session_id}: replay queued "
                f"{len(step)} transactions where the journal recorded "
                f"{len(payload)} — non-deterministic driver")
        receipts = []
        for intent, (stage, label, actor, tx_hash) in zip(step, payload):
            if (intent.stage, intent.label, intent.actor) != \
                    (stage, label, actor):
                raise RecoveryError(
                    f"session {driver.session_id}: replay diverged — "
                    f"journal recorded {stage}/{label}/{actor}, replay "
                    f"produced {intent.stage}/{intent.label}/"
                    f"{intent.actor}")
            receipt = sim.get_receipt(tx_hash)
            protocol.ledger.record(stage, label, receipt, actor)
            receipts.append(receipt)
        step = advance(receipts)

    # Crash frontier: hand the live step back to the scheduler.
    if isinstance(step, (WaitUntil, WaitForBatch)):
        state.pending = step
    elif isinstance(step, list) and step and \
            all(isinstance(i, TxIntent) for i in step):
        state.pending = step
    else:
        raise RecoveryError(
            f"session {driver.session_id}: replay frontier yielded "
            f"{step!r}; expected TxIntents, WaitUntil or WaitForBatch")
    return state


def _skip_waits(driver, state: _SessionState, step):
    """Drive past ``WaitUntil`` yields the original run warped over."""
    skips = 0
    while isinstance(step, WaitUntil):
        skips += 1
        if skips > _MAX_WAIT_SKIPS:
            raise RecoveryError(
                f"session {driver.session_id}: replay is stuck on "
                f"WaitUntil({step.timestamp}) — journal and driver "
                "disagree about the session's timeline")
        try:
            step = state.generator.send(None)
        except StopIteration:
            raise RecoveryError(
                f"session {driver.session_id}: generator finished "
                "while skipping a journaled wait") from None
    return step
