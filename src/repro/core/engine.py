"""Multi-session protocol engine with batch mining.

One :class:`~repro.core.protocol.OnOffChainProtocol` instance walks a
single contract through the four stages, mining a block per
transaction.  Real chains do not work that way: many independent
protocol sessions share one mempool and miners pack their transactions
into common blocks.  ``SessionEngine`` reproduces that regime — it
drives N sessions concurrently against one shared simulator, routes
every transaction through the mempool, and mines *batched* blocks
(``Blockchain.mine_block`` pulling ``Mempool.pop_batch``) instead of a
block per transaction.

Sessions are written as :class:`ProtocolDriver` generators that yield
either a batch of :class:`TxIntent` (transactions to queue; the engine
resumes the generator with the mined receipts, in order) or a
:class:`WaitUntil` marker (resume once the chain clock reaches a
deadline).  The engine interleaves all sessions cooperatively:
transaction work is always drained before the clock advances, so a
challenge never misses its window because some other session was
waiting out its own.

Two mining modes make the paper-scale comparison measurable:

* ``"batch"``  — queue every runnable session's transactions, then
  mine as few blocks as the block gas limit allows;
* ``"per-tx"`` — mine one block per transaction, replicating the
  auto-mining regime single-session code uses.

Per-session gas ledgers come out identical across modes (contracts
have isolated storage; only block numbers differ), which
``GasLedger.fingerprint`` makes checkable.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Optional, Sequence, Union

from repro import obs
from repro.chain.simulator import EthereumSimulator, SimAccount
from repro.chain.transaction import Transaction
from repro.core.analytics import EngineMetrics
from repro.obs.metrics import MetricsRegistry
from repro.core.exceptions import EngineError, SigningError
from repro.core.participants import Participant, Strategy
from repro.core.protocol import (
    OnOffChainProtocol,
    Stage,
    results_equal,
)
from repro.core.settlement import (
    AGGREGATOR_DEPLOY_GAS,
    COMMIT_GAS,
    DEFAULT_BATCH_WINDOW,
    FINALIZE_BATCH_GAS,
    MAX_BATCH_SIZE,
    OPEN_GAS,
    DirectSettlement,
    PendingLeaf,
    SettlementPolicy,
    build_policy,
)
from repro.crypto.keys import Address

# Declared gas limits for queued transactions.  ``Mempool.pop_batch``
# packs blocks by *declared* limit, not gas used, so these are kept
# tight (with ~2-4x headroom over measured usage) — sloppy limits
# collapse batching density.
DEPLOY_GAS = 2_500_000
TRANSFER_CALL_GAS = 150_000
SUBMIT_GAS = 250_000
FINALIZE_GAS = 300_000
DISPUTE_DEPLOY_GAS = 2_500_000
DISPUTE_RESOLVE_GAS = 800_000


@dataclass(frozen=True)
class TxIntent:
    """One transaction a session wants mined.

    ``stage``/``label``/``actor`` mirror the arguments of
    :meth:`GasLedger.record`; the engine records every mined intent
    into its session's ledger with them, keeping engine-driven ledgers
    byte-compatible with the synchronous path.
    """

    sender: SimAccount
    to: Optional[Address]  # None deploys a contract
    data: bytes = b""
    value: int = 0
    gas_limit: int = TRANSFER_CALL_GAS
    stage: str = ""
    label: str = ""
    actor: str = ""


@dataclass(frozen=True)
class WaitUntil:
    """Yielded by a driver to sleep until the chain clock reaches
    ``timestamp`` (the *next* block's timestamp, as with
    ``advance_time_to``)."""

    timestamp: int


@dataclass(frozen=True)
class WaitForBatch:
    """Yielded by a netted session once its signed final state is
    enlisted with the batcher: the session parks until the engine
    flushes the batch containing its ``ticket`` (commit, openings,
    disputes and finalize all run inside ``_settle_batch``)."""

    ticket: PendingLeaf


DriverStep = Union[list, WaitUntil, WaitForBatch]
DriverGenerator = Generator[DriverStep, Any, None]


class ProtocolDriver:
    """Adapts one protocol session to the engine's cooperative loop.

    Subclasses implement :meth:`steps` as a generator over the
    session's life; the shared implementation here covers the four
    stages for any two-phase app (fund → submit/challenge →
    finalize-or-dispute), with hooks for app-specific funding and
    timeline waits.
    """

    def __init__(self, protocol: OnOffChainProtocol,
                 session_id: int = 0,
                 settlement: Optional[SettlementPolicy] = None) -> None:
        self.protocol = protocol
        self.session_id = session_id
        #: How this session settles after unanimous agreement.  The
        #: engine overwrites this with its fleet-wide policy; the
        #: default keeps directly driven sessions on the legacy path.
        self.settlement: SettlementPolicy = settlement or \
            DirectSettlement()
        self.truth: Any = None
        #: Set when the session aborted before any money moved
        #: (a participant refused to sign — rule 1 of Table I).
        self.aborted = False
        self.abort_reason = ""
        #: Set when a false result could not be challenged in time and
        #: finalized instead (the challenge window had already closed).
        self.missed_window = False

    # -- hooks ---------------------------------------------------------

    @property
    def plan(self) -> dict:
        """The app's deployment plan (constructor args, state, ...)."""
        raise NotImplementedError

    def funding_intents(self) -> list[TxIntent]:
        """Transactions that escrow the app's money after signing."""
        raise NotImplementedError

    def submit_ready_at(self) -> Optional[int]:
        """Timestamp before which the result cannot be submitted."""
        return None

    # -- helpers -------------------------------------------------------

    @property
    def representative(self) -> Participant:
        """The session's representative (first participant)."""
        return self.protocol.participants[0]

    def encode_onchain(self, function_name: str, *args: Any) -> bytes:
        """ABI-encode a call to the session's on-chain half."""
        fn = self.protocol.onchain.abi.function(function_name)
        return fn.encode_call(list(args))

    def call_intent(self, participant: Participant, function_name: str,
                    *args: Any, value: int = 0,
                    gas_limit: int = TRANSFER_CALL_GAS) -> TxIntent:
        """Build a TxIntent calling the on-chain contract."""
        return TxIntent(
            sender=participant.account,
            to=self.protocol.onchain.address,
            data=self.encode_onchain(function_name, *args),
            value=value,
            gas_limit=gas_limit,
            stage=self.protocol.stage.value,
            label=function_name,
            actor=participant.name,
        )

    # -- the session ---------------------------------------------------

    def steps(self) -> DriverGenerator:
        """The driver generator: one session's full lifecycle."""
        protocol = self.protocol
        rep = self.representative

        # Stage 2a: deploy the on-chain half (deferred mining).
        init_code = protocol.prepare_deploy(
            self.plan["constructor_args"], self.plan["offchain_state"])
        [deploy_receipt] = yield [TxIntent(
            sender=rep.account, to=None, data=init_code,
            gas_limit=DEPLOY_GAS, stage=Stage.DEPLOYED.value,
            label="deploy onChain", actor=rep.name,
        )]
        protocol.attach_onchain(deploy_receipt)

        # Stage 2b: signature exchange is pure off-chain traffic.  A
        # refusal to sign aborts the whole session *before any money
        # moved* (rule 1 of Table I) — the engine treats that as a
        # graceful terminal state, not a scheduling failure.
        try:
            protocol.collect_signatures()
        except SigningError as exc:
            self.aborted = True
            self.abort_reason = str(exc)
            return

        # App-specific escrow (deposits / funding).
        funding = self.funding_intents()
        if funding:
            yield funding

        # Stages 3 and 4 are the settlement policy's: the result wait,
        # unanimous agreement, and either the per-session
        # submit/finalize pair (DirectSettlement, the legacy path) or
        # enlist-and-park in a netted batch (NettedSettlement).
        yield from self.settlement.settle(self)

    def dispute_steps(self, challenger: Participant) -> DriverGenerator:
        """Stage 4: the challenger reveals the signed copy.

        Shared by both settlement policies — a netted session that was
        opened escalates through exactly these transactions, so
        dispute gas stays bit-identical to the direct path.
        """
        protocol = self.protocol
        copy = protocol.signed_copies[challenger.name]
        copy.require_valid([p.address for p in protocol.participants])
        [dispute_deploy] = yield [TxIntent(
            sender=challenger.account, to=protocol.onchain.address,
            data=self.encode_onchain(
                "deployVerifiedInstance", copy.bytecode,
                *copy.vrs_arguments()),
            gas_limit=DISPUTE_DEPLOY_GAS, stage=Stage.DISPUTED.value,
            label="deployVerifiedInstance", actor=challenger.name,
        )]
        instance_address = Address(protocol.onchain.call("deployedAddr"))
        resolve_fn = protocol.compiled_offchain.abi.function(
            "returnDisputeResolution")
        [dispute_resolve] = yield [TxIntent(
            sender=challenger.account, to=instance_address,
            data=resolve_fn.encode_call([protocol.onchain.address]),
            gas_limit=DISPUTE_RESOLVE_GAS, stage=Stage.DISPUTED.value,
            label="returnDisputeResolution", actor=challenger.name,
        )]
        protocol.record_dispute(
            instance_address, dispute_deploy, dispute_resolve)

    def _pick_challenger(self) -> Participant:
        """The first participant willing to challenge, or EngineError.

        A fleet where every party is silent or dishonest cannot police
        a false result — that is a configuration error, surfaced
        loudly rather than silently finalizing lies.
        """
        challenger = next(
            (p for p in self.protocol.participants if p.will_challenge),
            None)
        if challenger is None:
            raise EngineError(
                f"session {self.session_id}: a dispute is needed but "
                "no honest participant is willing to challenge"
            )
        return challenger

    # -- outcome -------------------------------------------------------

    @property
    def settled(self) -> bool:
        """True once the session reached a terminal state (including a
        pre-funding abort after a signature refusal).  Delegated to the
        settlement policy, which knows what terminal means under its
        mode."""
        return self.aborted or self.settlement.session_settled(self)

    @property
    def disputed(self) -> bool:
        """True when the session settled through Dispute/Resolve."""
        return self.protocol.stage is Stage.RESOLVED


class BettingDriver(ProtocolDriver):
    """Drives one betting game (Table I) through the engine."""

    app = "betting"

    @property
    def plan(self) -> dict:
        """The betting plan backing this session."""
        return self.protocol.betting_plan

    def funding_intents(self) -> list[TxIntent]:
        """Both participants stake via ``deposit``."""
        return [
            self.call_intent(participant, "deposit",
                             value=self.plan["stake"])
            for participant in self.protocol.participants
        ]

    def submit_ready_at(self) -> Optional[int]:
        """Submission opens once the guessing window closed."""
        return self.plan["timeline"].t2 + 1


class EscrowDriver(ProtocolDriver):
    """Drives one escrow settlement through the engine."""

    app = "escrow"

    @property
    def plan(self) -> dict:
        """The escrow plan backing this session."""
        return self.protocol.escrow_plan

    def funding_intents(self) -> list[TxIntent]:
        """The buyer funds the escrow price."""
        buyer = self.protocol.participants[0]
        return [self.call_intent(buyer, "fund", value=self.plan["price"])]


class TenderDriver(ProtocolDriver):
    """Drives one sealed-tender award through the engine."""

    app = "tender"

    @property
    def plan(self) -> dict:
        """The tender plan backing this session."""
        return self.protocol.tender_plan

    def funding_intents(self) -> list[TxIntent]:
        """The buyer funds the tender budget."""
        buyer = self.protocol.participants[0]
        return [self.call_intent(buyer, "fund", value=self.plan["budget"])]


@dataclass
class _SessionState:
    driver: ProtocolDriver
    generator: DriverGenerator
    pending: Optional[DriverStep] = None  # last yield, not yet serviced
    done: bool = False
    error: Optional[BaseException] = None
    intents: list = field(default_factory=list)
    tx_hashes: list = field(default_factory=list)


class SessionEngine:
    """Runs many protocol sessions against one shared simulator.

    The scheduling loop alternates two phases until every session
    finishes: (1) queue and mine all runnable sessions' transaction
    batches, resuming each with its receipts; (2) when nothing has
    transaction work, warp the clock to the earliest ``WaitUntil``
    deadline and resume every session whose deadline passed.
    """

    def __init__(self, simulator: EthereumSimulator,
                 drivers: Iterable[ProtocolDriver] = (),
                 mining: str = "batch",
                 block_gas_limit: Optional[int] = None,
                 workers: Optional[int] = None,
                 settlement: Union[SettlementPolicy, str, None] = None,
                 batch_size: Optional[int] = None,
                 store=None, resume: bool = False,
                 pipeline: Optional[bool] = None) -> None:
        if mining not in ("batch", "per-tx"):
            raise EngineError(
                f"unknown mining mode {mining!r}; use 'batch' or 'per-tx'")
        self.simulator = simulator
        self.mining = mining
        self.block_gas_limit = block_gas_limit
        # Settlement policy: explicit argument wins, then the
        # simulator's validated config, then the legacy direct path.
        config = getattr(simulator, "config", None)
        if settlement is None:
            settlement = getattr(config, "settlement", "direct")
        if isinstance(settlement, str):
            settlement = build_policy(
                settlement, simulator,
                challenge_period=getattr(
                    config, "settlement_challenge_period",
                    DEFAULT_BATCH_WINDOW))
        self.settlement: SettlementPolicy = settlement
        #: The netted batcher, or None under direct settlement.
        self.batcher = getattr(settlement, "batcher", None)
        if batch_size is None:
            batch_size = getattr(config, "batch_size", 1)
        if not 1 <= int(batch_size) <= MAX_BATCH_SIZE:
            raise EngineError(
                f"batch size {batch_size} not in [1, {MAX_BATCH_SIZE}]")
        self.batch_size = int(batch_size)
        if workers is not None:
            # Late override so callers with an already-built simulator
            # (the CLI) can opt a fleet into parallel block execution.
            simulator.chain.workers = max(1, int(workers))
        # Two-stage round pipeline (--pipeline): sign/recover chunk
        # k+1 in background workers while chunk k mines.  Off by
        # default — on a one-core host the overlap is pure overhead.
        if pipeline is None:
            pipeline = bool(getattr(config, "pipeline", False))
        self.pipeline = bool(pipeline)
        self._pipeline = None  # lazy RoundPipeline
        self.drivers: list[ProtocolDriver] = list(drivers)
        # The engine counts into its own registry (the `engine.*` part
        # of the telemetry contract); EngineMetrics is a façade over
        # it.  A private registry keeps concurrent engines (e.g. the
        # batch-vs-per-tx comparison) from cross-counting; when global
        # telemetry is active every count is mirrored there too.
        self.registry = MetricsRegistry()
        for name in (obs.names.METRIC_ENGINE_SESSIONS,
                     obs.names.METRIC_ENGINE_DISPUTES,
                     obs.names.METRIC_ENGINE_BLOCKS,
                     obs.names.METRIC_ENGINE_TXS,
                     obs.names.METRIC_ENGINE_ROUNDS):
            self.registry.counter(name)
        self.registry.gauge(obs.names.METRIC_ENGINE_WALL_SECONDS)
        #: Durable run store (``--store=PATH``).  The engine owns the
        #: commit cadence: one WAL transaction per scheduling step, and
        #: the mempool is provably empty at every commit point.
        self.store = store
        self.resume = bool(resume)
        self._commits = 0
        # Crash-harness knobs: SIGKILL this process right after the
        # N-th store commit; "torn" additionally flushes garbage WAL
        # records without a commit marker first, manufacturing the
        # torn-tail shape recovery must discard.
        self._kill_after = int(
            os.environ.get("REPRO_STORE_KILL_AFTER_COMMITS") or 0)
        self._kill_mode = os.environ.get("REPRO_STORE_KILL_MODE", "kill")
        if store is not None:
            if self.resume and not store.bootstrapped():
                raise EngineError(
                    "cannot --resume: the store was never bootstrapped")
            if not self.resume and store.bootstrapped():
                raise EngineError(
                    "the store already holds a run; pass --resume to "
                    "recover it or point --store at a fresh directory")
            simulator.chain.attach_store(store.chain)
        elif self.resume:
            raise EngineError("--resume requires --store")

    def add(self, driver: ProtocolDriver) -> None:
        """Register one more session before :meth:`run`."""
        self.drivers.append(driver)

    def _count(self, name: str, amount: int = 1) -> None:
        """Increment a local engine counter, mirrored to global obs."""
        self.registry.get(name).inc(amount)
        if obs.enabled():
            obs.inc(name, amount)

    @property
    def blocks_mined(self) -> int:
        """Blocks the engine has scheduled so far (registry-backed)."""
        return int(self.registry.get(obs.names.METRIC_ENGINE_BLOCKS)
                   .total())

    @property
    def transactions(self) -> int:
        """Transactions the engine has mined so far (registry-backed)."""
        return int(self.registry.get(obs.names.METRIC_ENGINE_TXS)
                   .total())

    # -- the scheduler -------------------------------------------------

    def run(self) -> EngineMetrics:
        """Drive every session to completion; return fleet metrics."""
        started = time.perf_counter()
        with obs.span(obs.names.SPAN_ENGINE_RUN, mining=self.mining,
                      sessions=len(self.drivers),
                      workers=self.simulator.chain.workers,
                      settlement=self.settlement.name):
            for driver in self.drivers:
                driver.settlement = self.settlement
            if self.store is not None and self.resume:
                from repro.core.recovery import recover_sessions

                with obs.span(obs.names.SPAN_STORAGE_RECOVER,
                              sessions=len(self.drivers)):
                    self.store.verify_config(self._config_record())
                    sessions = recover_sessions(self)
                self._checkpoint()
            else:
                sessions = [
                    _SessionState(driver=driver,
                                  generator=driver.steps())
                    for driver in self.drivers
                ]
                for session in sessions:
                    self._resume(session, None)
                if self.store is not None:
                    # Bootstrap: the spawn-time chain (funded fleet
                    # accounts, genesis) plus the run config become the
                    # store's first committed transaction.
                    self.store.stage_config(self._config_record())
                    self.simulator.chain.persist_bootstrap()
                    self._checkpoint()

            try:
                while True:
                    tx_sessions = [
                        s for s in sessions
                        if not s.done and isinstance(s.pending, list)
                    ]
                    if tx_sessions:
                        self._mine_round(tx_sessions)
                        self._checkpoint()
                        continue
                    parked = [
                        s for s in sessions
                        if not s.done
                        and isinstance(s.pending, WaitForBatch)
                    ]
                    waiting = [
                        s for s in sessions
                        if not s.done and isinstance(s.pending, WaitUntil)
                    ]
                    # Flush a netted batch once it is full, or once no
                    # other session can make progress (tail flush) —
                    # transaction work and waits always drain first so a
                    # full batch never starves a live challenge window.
                    if parked and (len(parked) >= self.batch_size
                                   or not waiting):
                        self._settle_batch(parked)
                        self._checkpoint()
                        continue
                    if not waiting:
                        break
                    target = min(s.pending.timestamp for s in waiting)
                    self.simulator.advance_time_to(target)
                    horizon = self.simulator.chain.next_timestamp()
                    resumable = [s for s in waiting
                                 if s.pending.timestamp <= horizon]
                    for session in resumable:
                        self._resume(session, None)
            finally:
                if self._pipeline is not None:
                    self._pipeline.close()
                    self._pipeline = None

        if self.store is not None:
            failed = any(s.error is not None for s in sessions)
            self.store.status.set(b"error" if failed else b"complete")
            self._checkpoint()
        errors = [s for s in sessions if s.error is not None]
        if errors:
            raise EngineError(
                f"{len(errors)} of {len(sessions)} sessions failed; "
                f"first: {errors[0].error!r}"
            ) from errors[0].error
        return self._metrics(started)

    # -- durable checkpoints -------------------------------------------

    def _config_record(self) -> dict[str, str]:
        """The flags a store is bound to; ``--resume`` must match."""
        apps = sorted({getattr(d, "app", type(d).__name__)
                       for d in self.drivers})
        return {
            "sessions": str(len(self.drivers)),
            "mining": self.mining,
            "settlement": self.settlement.name,
            "batch_size": str(self.batch_size),
            "apps": ",".join(apps),
        }

    def _checkpoint(self) -> None:
        """Commit one WAL transaction covering the last scheduling
        step (blocks, state, session journals, counters)."""
        if self.store is None:
            return
        self.store.stage_engine_meta(self)
        self.store.kv.commit()
        self._commits += 1
        if self._kill_after and self._commits >= self._kill_after:
            # Crash harness: die without cleanup, right here.
            if self._kill_mode == "torn":
                self.store.kv.put(b"__crash", b"torn", b"\xde\xad")
                self.store.kv.flush_uncommitted()
            os.kill(os.getpid(), signal.SIGKILL)

    def _note_session(self, session: _SessionState) -> None:
        """Stage a terminal summary or a batcher-park journal entry."""
        if self.store is None:
            return
        if session.done:
            self.store.stage_summary(session)
        elif isinstance(session.pending, WaitForBatch):
            self.store.stage_park(session.driver.session_id)

    def _resume(self, session: _SessionState, value: Any) -> None:
        """Advance one generator to its next yield (or completion)."""
        try:
            with obs.span(obs.names.SPAN_ENGINE_SESSION_STEP,
                          session=session.driver.session_id):
                if value is None and session.pending is None:
                    step = next(session.generator)
                else:
                    step = session.generator.send(value)
        except StopIteration:
            session.done = True
            session.pending = None
            self._note_session(session)
            return
        except Exception as exc:  # session died; surface after the run
            session.done = True
            session.pending = None
            session.error = exc
            self._note_session(session)
            return
        if isinstance(step, (WaitUntil, WaitForBatch)):
            session.pending = step
            self._note_session(session)
        elif isinstance(step, list) and step and \
                all(isinstance(i, TxIntent) for i in step):
            session.pending = step
        else:
            session.done = True
            session.pending = None
            session.error = EngineError(
                f"session {session.driver.session_id} yielded "
                f"{step!r}; expected a non-empty list of TxIntent, "
                "WaitUntil or WaitForBatch"
            )
            self._note_session(session)

    def _mine_round(self, tx_sessions: list[_SessionState]) -> None:
        """Queue every runnable session's batch, mine, hand back
        receipts."""
        sim = self.simulator
        self._count(obs.names.METRIC_ENGINE_ROUNDS)
        with obs.span(obs.names.SPAN_ENGINE_MINE_ROUND,
                      sessions=len(tx_sessions), mining=self.mining):
            for session in tx_sessions:
                session.intents = list(session.pending)
                session.tx_hashes = []
            if self.pipeline and len(tx_sessions) > 1:
                self._queue_and_mine_pipelined(tx_sessions)
            elif self.mining == "per-tx":
                # One block per transaction — the auto-mining regime.
                for session in tx_sessions:
                    for intent in session.intents:
                        session.tx_hashes.append(self._queue(intent))
                        sim.mine(gas_limit=self.block_gas_limit)
                        self._count(obs.names.METRIC_ENGINE_BLOCKS)
            else:
                for session in tx_sessions:
                    for intent in session.intents:
                        session.tx_hashes.append(self._queue(intent))
                self._mine_queued()
            for session in tx_sessions:
                receipts = []
                for intent, tx_hash in zip(session.intents,
                                           session.tx_hashes):
                    receipt = sim.get_receipt(tx_hash)
                    if not receipt.status:
                        session.done = True
                        session.pending = None
                        session.error = EngineError(
                            f"session {session.driver.session_id}: "
                            f"{intent.label or 'transaction'} reverted: "
                            f"{receipt.error or 'no reason'}"
                        )
                        self._note_session(session)
                        break
                    session.driver.protocol.ledger.record(
                        intent.stage, intent.label, receipt, intent.actor)
                    if obs.enabled():
                        obs.inc(obs.names.METRIC_CHAIN_FN_GAS,
                                receipt.gas_used,
                                fn=intent.label or "(tx)")
                    receipts.append(receipt)
                else:
                    self._count(obs.names.METRIC_ENGINE_TXS,
                                len(receipts))
                    if self.store is not None:
                        # Journal the round before resuming: the
                        # summary a terminal resume stages must land
                        # in the same transaction as its last round.
                        self.store.stage_round(
                            session.driver.session_id,
                            [(i.stage, i.label, i.actor, h)
                             for i, h in zip(session.intents,
                                             session.tx_hashes)])
                    self._resume(session, receipts)

    def _queue(self, intent: TxIntent) -> bytes:
        return self.simulator.send_transaction(
            intent.sender, intent.to, data=intent.data,
            value=intent.value, gas_limit=intent.gas_limit,
        )

    # -- pipelined rounds ----------------------------------------------

    def _ensure_pipeline(self):
        if self._pipeline is None:
            from repro.core.pipeline import RoundPipeline

            self._pipeline = RoundPipeline()
        return self._pipeline

    def _queue_and_mine_pipelined(self,
                                  tx_sessions: list[_SessionState]
                                  ) -> None:
        """The round's queue+mine phase as a two-stage pipeline.

        The round is cut into chunks of sessions; while chunk *k* is
        admitted and mined here, chunk *k+1*'s transactions are signed
        and sender-recovered on the :class:`RoundPipeline` workers.
        Nonces for the whole round are fixed up front with per-sender
        running counters — byte-identical to the serial pool-aware
        allocation because chunking never reorders one sender's
        transactions — and RFC-6979 makes the worker-built signatures
        identical to the ones :meth:`_queue` would have produced, so
        ledgers and fingerprints cannot move.
        """
        from repro.core.pipeline import ROUND_CHUNKS

        sim = self.simulator
        pipeline = self._ensure_pipeline()
        nonces: dict[bytes, int] = {}
        rows: list[tuple[_SessionState, TxIntent]] = []
        plans: list[tuple] = []
        for session in tx_sessions:
            for intent in session.intents:
                sender = intent.sender.address.value
                if sender not in nonces:
                    nonces[sender] = sim.get_nonce(intent.sender)
                nonce = nonces[sender]
                nonces[sender] = nonce + 1
                rows.append((session, intent))
                plans.append((
                    intent.sender.key.secret, nonce, 1,
                    intent.gas_limit,
                    intent.to.value if intent.to is not None else None,
                    intent.value, intent.data))
        # Chunk boundaries follow session boundaries so one session's
        # transactions always mine together, as they do serially.
        per_chunk = -(-len(tx_sessions) // ROUND_CHUNKS)
        bounds: list[tuple[int, int]] = []
        row = 0
        for start in range(0, len(tx_sessions), per_chunk):
            size = sum(len(s.intents)
                       for s in tx_sessions[start:start + per_chunk])
            bounds.append((row, row + size))
            row += size
        handle = pipeline.submit(plans[bounds[0][0]:bounds[0][1]])
        for index, (start, end) in enumerate(bounds):
            prepared = pipeline.collect(handle)
            if index + 1 < len(bounds):
                next_start, next_end = bounds[index + 1]
                handle = pipeline.submit(plans[next_start:next_end])
            for offset, (v, r, s, sender) in enumerate(prepared):
                session, intent = rows[start + offset]
                plan = plans[start + offset]
                tx = Transaction(
                    nonce=plan[1], gas_price=plan[2],
                    gas_limit=plan[3], to=intent.to,
                    value=intent.value, data=intent.data,
                    v=v, r=r, s=s)
                if sender is not None:
                    # Admission finds the cache warm; an unrecoverable
                    # signature stays cold and raises the exact serial
                    # error inside ``mempool.add``.
                    tx.seed_sender(Address(sender))
                session.tx_hashes.append(
                    sim.send_signed_transaction(tx))
                if self.mining == "per-tx":
                    sim.mine(gas_limit=self.block_gas_limit)
                    self._count(obs.names.METRIC_ENGINE_BLOCKS)
            if self.mining != "per-tx":
                self._mine_queued()

    # -- netted batch settlement ---------------------------------------

    def _settle_batch(self, parked: list[_SessionState]) -> None:
        """Flush one netted batch: commit, police, open, dispute,
        finalize, then resume every member session.

        The whole batch settles with ONE ``commitBatch`` transaction
        (plus one aggregator deploy and one ``finalizeBatch``) carried
        by the batcher's own ledger.  Contested leaves are opened
        during the batch window and escalate through the unchanged
        per-session Dispute/Resolve machinery.
        """
        batcher = self.batcher
        if batcher is None:
            raise EngineError(
                "sessions are waiting for a batch but the engine has "
                "no netted settlement batcher")
        plan = batcher.prepare_batch(batcher.pending[:self.batch_size])
        states = {id(s.pending.ticket): s for s in parked}
        members = []
        for entry in plan.entries:
            state = states.get(id(entry))
            if state is None:
                raise EngineError(
                    "a batched session is not parked with the engine")
            members.append((entry, state))

        with obs.span(obs.names.SPAN_SETTLEMENT_COMMIT,
                      size=plan.size):
            [deploy_receipt] = self._mine_intents([TxIntent(
                sender=batcher.account, to=None, data=plan.init_code,
                gas_limit=AGGREGATOR_DEPLOY_GAS,
                label="deploy aggregator", actor=batcher.account.name,
            )])
            commit_fn = plan.abi.function("commitBatch")
            [commit_receipt] = self._mine_intents([TxIntent(
                sender=batcher.account,
                to=deploy_receipt.contract_address,
                data=commit_fn.encode_call([plan.tree.root, plan.size]),
                gas_limit=COMMIT_GAS,
                label="commitBatch", actor=batcher.account.name,
            )])
            batch = batcher.commit_prepared(
                plan, deploy_receipt, commit_receipt)

        # Police the batch: every participant checks the committed
        # leaf against the truth their session agreed off-chain, and
        # verifies the representative's signature over it.
        contested = []
        for entry, state in members:
            driver = state.driver
            commitment = entry.commitment
            honest = (entry.state.verify(entry.signer.address)
                      and results_equal(commitment.claim, driver.truth))
            if not honest:
                contested.append((entry, state,
                                  driver._pick_challenger()))

        # Contested leaves: reveal on the aggregator (inside the batch
        # window), then drive the existing dispute pair per session.
        for entry, state, challenger in contested:
            protocol = state.driver.protocol
            commitment = entry.commitment
            open_fn = batch.aggregator.abi.function("openLeaf")
            [open_receipt] = self._mine_intents([TxIntent(
                sender=challenger.account, to=batch.aggregator.address,
                data=open_fn.encode_call(
                    [commitment.leaf, commitment.index,
                     *commitment.proof]),
                gas_limit=OPEN_GAS,
                label="openLeaf", actor=challenger.name,
            )])
            protocol.record_leaf_opening(open_receipt, challenger.name)
        for entry, state, challenger in contested:
            self._pump(state,
                       state.driver.dispute_steps(challenger))

        # Wait out the window, close the batch, settle the members.
        with obs.span(obs.names.SPAN_SETTLEMENT_FINALIZE,
                      batch=batch.batch_id, size=batch.size):
            self.simulator.advance_time_to(batch.challenge_deadline)
            finalize_fn = batch.aggregator.abi.function("finalizeBatch")
            [finalize_receipt] = self._mine_intents([TxIntent(
                sender=batcher.account, to=batch.aggregator.address,
                data=finalize_fn.encode_call([]),
                gas_limit=FINALIZE_BATCH_GAS,
                label="finalizeBatch", actor=batcher.account.name,
            )])
            batcher.finalize_prepared(batch, finalize_receipt)

        for entry, state in members:
            self._resume(state, entry.commitment)

    def _mine_intents(self, intents: list[TxIntent]) -> list:
        """Queue and mine batch-level transactions (no session ledger).

        Gas accounting for these lands in the batcher's ledger (via
        ``commit_prepared``/``finalize_prepared``) or the session's
        (via ``record_leaf_opening``) — never here.  Any revert is a
        hard scheduling failure.
        """
        sim = self.simulator
        tx_hashes = []
        if self.mining == "per-tx":
            for intent in intents:
                tx_hashes.append(self._queue(intent))
                sim.mine(gas_limit=self.block_gas_limit)
                self._count(obs.names.METRIC_ENGINE_BLOCKS)
        else:
            for intent in intents:
                tx_hashes.append(self._queue(intent))
            self._mine_queued()
        receipts = []
        for intent, tx_hash in zip(intents, tx_hashes):
            receipt = sim.get_receipt(tx_hash)
            if not receipt.status:
                raise EngineError(
                    f"batch settlement: {intent.label or 'transaction'}"
                    f" reverted: {receipt.error or 'no reason'}")
            if obs.enabled():
                obs.inc(obs.names.METRIC_CHAIN_FN_GAS,
                        receipt.gas_used, fn=intent.label or "(tx)")
            receipts.append(receipt)
        self._count(obs.names.METRIC_ENGINE_TXS, len(receipts))
        return receipts

    def _mine_queued(self) -> None:
        """Mine every queued transaction into batched blocks."""
        sim = self.simulator
        while sim.pending():
            block = sim.mine(gas_limit=self.block_gas_limit)[0]
            self._count(obs.names.METRIC_ENGINE_BLOCKS)
            if not block.transactions:
                raise EngineError(
                    "mined an empty block while transactions are "
                    "pending — a queued transaction exceeds the "
                    "block gas limit"
                )

    def _pump(self, state: _SessionState,
              generator: DriverGenerator) -> None:
        """Drive a settlement sub-generator (the dispute pair) to
        completion, recording every mined intent into the session's
        ledger exactly as the main loop would."""
        sim = self.simulator
        try:
            step = next(generator)
        except StopIteration:
            return
        while True:
            if not (isinstance(step, list) and step
                    and all(isinstance(i, TxIntent) for i in step)):
                raise EngineError(
                    f"session {state.driver.session_id} yielded "
                    f"{step!r} during batch settlement; expected a "
                    "non-empty list of TxIntent")
            tx_hashes = []
            if self.mining == "per-tx":
                for intent in step:
                    tx_hashes.append(self._queue(intent))
                    sim.mine(gas_limit=self.block_gas_limit)
                    self._count(obs.names.METRIC_ENGINE_BLOCKS)
            else:
                for intent in step:
                    tx_hashes.append(self._queue(intent))
                self._mine_queued()
            receipts = []
            for intent, tx_hash in zip(step, tx_hashes):
                receipt = sim.get_receipt(tx_hash)
                if not receipt.status:
                    raise EngineError(
                        f"session {state.driver.session_id}: "
                        f"{intent.label or 'transaction'} reverted: "
                        f"{receipt.error or 'no reason'}")
                state.driver.protocol.ledger.record(
                    intent.stage, intent.label, receipt, intent.actor)
                if obs.enabled():
                    obs.inc(obs.names.METRIC_CHAIN_FN_GAS,
                            receipt.gas_used,
                            fn=intent.label or "(tx)")
                receipts.append(receipt)
            self._count(obs.names.METRIC_ENGINE_TXS, len(receipts))
            try:
                step = generator.send(receipts)
            except StopIteration:
                return

    def _metrics(self, started: float) -> EngineMetrics:
        """Finalise the run's counters and materialise the façade."""
        sessions = len(self.drivers)
        disputes = sum(1 for d in self.drivers if d.disputed)
        self._count(obs.names.METRIC_ENGINE_SESSIONS, sessions)
        self._count(obs.names.METRIC_ENGINE_DISPUTES, disputes)
        wall = time.perf_counter() - started
        self.registry.get(obs.names.METRIC_ENGINE_WALL_SECONDS).set(wall)
        if obs.enabled():
            obs.set_gauge(obs.names.METRIC_ENGINE_WALL_SECONDS, wall)
        batch_gas = self.batcher.total_gas() if self.batcher else 0
        return EngineMetrics.from_registry(
            self.registry, mining=self.mining,
            total_gas=sum(d.protocol.ledger.total()
                          for d in self.drivers) + batch_gas,
        )


_DRIVER_BY_APP = {
    "betting": BettingDriver,
    "escrow": EscrowDriver,
    "tender": TenderDriver,
}


def dishonest_session_indices(count: int, fraction: float) -> set[int]:
    """Deterministic, evenly spread session indices to make dishonest.

    ``fraction`` is rounded to a whole number of sessions; the indices
    are spread across the fleet so dishonesty is not clustered at the
    start (which would bias block packing in the comparison runs).
    """
    if not 0.0 <= fraction <= 1.0:
        raise EngineError(f"dishonest fraction {fraction} not in [0, 1]")
    k = round(count * fraction)
    if k <= 0:
        return set()
    return {(i * count) // k for i in range(k)}


def spawn_fleet(simulator: EthereumSimulator, count: int,
                app: str = "betting", dishonest_fraction: float = 0.0,
                funding: Optional[int] = None,
                dishonest_strategy: Strategy | str =
                Strategy.LIES_ABOUT_RESULT,
                remote_roles: Sequence[str] = (),
                **app_kwargs: Any) -> list[ProtocolDriver]:
    """Create ``count`` independent sessions of one app on one chain.

    Each session gets freshly funded accounts, so fleets scale past the
    simulator's pre-funded account list.  ``dishonest_fraction`` of the
    sessions get a representative playing ``dishonest_strategy``
    (default `Strategy.LIES_ABOUT_RESULT`, forcing those sessions
    through the Dispute/Resolve path).  This is the fault-injection
    seam the adversary subsystem plugs into: any
    :class:`~repro.core.participants.Strategy` (or its string value,
    e.g. ``"refuses-to-sign"``) can be injected here.

    ``remote_roles`` names roles (e.g. ``("bob",)``) whose Deploy/Sign
    signature comes from a separate participant process over the bus
    instead of being produced locally — the networked deployment's
    fleet shape.  Their accounts still use the same deterministic
    seeds, so the participant process derives identical keys.
    """
    if app not in _DRIVER_BY_APP:
        raise EngineError(
            f"unknown app {app!r}; choose from {sorted(_DRIVER_BY_APP)}")
    from repro.chain.simulator import DEFAULT_FUNDING

    if isinstance(dishonest_strategy, str):
        try:
            dishonest_strategy = Strategy(dishonest_strategy)
        except ValueError:
            raise EngineError(
                f"unknown dishonest strategy {dishonest_strategy!r}; "
                f"choose from {[s.value for s in Strategy]}"
            ) from None
    funding = DEFAULT_FUNDING if funding is None else funding
    liars = dishonest_session_indices(count, dishonest_fraction)
    drivers: list[ProtocolDriver] = []
    for index in range(count):
        strategy = (dishonest_strategy if index in liars
                    else Strategy.HONEST)

        def member(role: str, member_strategy: Strategy) -> Participant:
            account = simulator.create_account(
                f"fleet-{app}-{index}-{role}", funding=funding,
                name=f"s{index}-{role}")
            return Participant(account=account, name=f"s{index}-{role}",
                               strategy=member_strategy,
                               remote=role in remote_roles)

        if app == "betting":
            from repro.apps.betting import make_betting_protocol

            protocol = make_betting_protocol(
                simulator, member("alice", strategy),
                member("bob", Strategy.HONEST), **app_kwargs)
        elif app == "escrow":
            from repro.apps.escrow import make_escrow_protocol

            protocol = make_escrow_protocol(
                simulator, member("buyer", strategy),
                member("seller", Strategy.HONEST), **app_kwargs)
        else:
            from repro.apps.tender import make_tender_protocol

            protocol = make_tender_protocol(
                simulator, member("buyer", strategy),
                member("contractorA", Strategy.HONEST),
                member("contractorB", Strategy.HONEST), **app_kwargs)
        drivers.append(_DRIVER_BY_APP[app](protocol, session_id=index))
    return drivers
