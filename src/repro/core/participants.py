"""Participants and their (dis)honesty strategies.

The paper reasons about honest participants, a possibly dishonest
representative who "violates the agreement", and honest parties who
then escalate.  ``Participant`` makes those behaviours scriptable so
the protocol driver — and the benchmarks — can systematically exercise
every honest/dishonest branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.chain.simulator import SimAccount
from repro.crypto.keys import Address


class Strategy(Enum):
    """How a participant behaves during the protocol run."""

    HONEST = "honest"
    REFUSES_TO_SIGN = "refuses-to-sign"         # stalls Deploy/Sign
    LIES_ABOUT_RESULT = "lies-about-result"     # submits a false result
    REFUSES_TO_SETTLE = "refuses-to-settle"     # never submits/settles
    SILENT = "silent"                           # never challenges either
    DISPUTES_LATE = "disputes-late"             # challenges past deadline


@dataclass
class Participant:
    """One protocol participant bound to a funded chain account."""

    account: SimAccount
    name: str = ""
    strategy: Strategy = Strategy.HONEST
    #: A remote participant's Deploy/Sign signature is produced by a
    #: separate :class:`~repro.net.participant.ParticipantNode`
    #: process: the protocol posts a sign-request to the bus and waits
    #: instead of signing locally.
    remote: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.account.name or self.address.checksum[:10]

    @property
    def address(self) -> Address:
        """The participant's on-chain address."""
        return self.account.address

    @property
    def key(self):
        """The participant's signing key."""
        return self.account.key

    @property
    def is_honest(self) -> bool:
        """True for the fully honest strategy."""
        return self.strategy is Strategy.HONEST

    @property
    def will_sign(self) -> bool:
        """Whether this participant signs the off-chain copy."""
        return self.strategy is not Strategy.REFUSES_TO_SIGN

    @property
    def will_settle_honestly(self) -> bool:
        """Whether this participant submits the true result."""
        return self.strategy not in (
            Strategy.LIES_ABOUT_RESULT, Strategy.REFUSES_TO_SETTLE,
        )

    @property
    def will_challenge(self) -> bool:
        """Honest parties police the challenge window; SILENT ones
        don't, and a DISPUTES_LATE party only wakes up after the
        deadline (too late to count as a challenger)."""
        return self.strategy is Strategy.HONEST

    @property
    def challenges_late(self) -> bool:
        """True for the griefer who disputes only after the deadline."""
        return self.strategy is Strategy.DISPUTES_LATE

    def claimed_result(self, true_result):
        """What this participant *says* the off-chain result is."""
        if self.strategy is Strategy.LIES_ABOUT_RESULT:
            return _falsify(true_result)
        return true_result

    def __str__(self) -> str:
        return f"{self.name}({self.strategy.value})"


def _falsify(result):
    """A plausibly self-serving wrong answer for any value type."""
    if isinstance(result, bool):
        return not result
    if isinstance(result, int):
        return result + 1
    if isinstance(result, bytes):
        if not result:
            return b"\x01"
        return bytes([result[0] ^ 0xFF]) + result[1:]
    raise TypeError(f"cannot falsify a result of type {type(result).__name__}")
