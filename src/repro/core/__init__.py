"""The paper's contribution: hybrid on/off-chain smart contracts.

Split a whole contract into an on-chain contract (light/public
functions) and an off-chain contract (heavy/private functions), run the
four-stage protocol, and always keep honest participants able to
enforce the true result via the verified-instance mechanism.
"""

from repro.core.analytics import (
    EngineMetrics,
    GasEntry,
    GasLedger,
    ModelComparison,
    PrivacyReport,
    fleet_fingerprint,
    privacy_report_all_on_chain,
    privacy_report_hybrid,
)
from repro.core.annotations import SplitSpec
from repro.core.classify import (
    Classification,
    FunctionCategory,
    classify_contract,
    estimate_function_cost,
)
from repro.core.exceptions import (
    AgreementError,
    DisputeError,
    EngineError,
    ProtocolError,
    SettlementError,
    SigningError,
    SplitError,
    StageError,
)
from repro.core.dispute import DisputeResolution, resolve_dispute
from repro.core.engine import (
    BettingDriver,
    EscrowDriver,
    ProtocolDriver,
    SessionEngine,
    TenderDriver,
    TxIntent,
    WaitForBatch,
    WaitUntil,
    spawn_fleet,
)
from repro.core.settlement import (
    DirectSettlement,
    MerkleTree,
    NettedSettlement,
    SettlementBatcher,
    SettlementPolicy,
    SignedState,
    build_policy,
    sign_final_state,
)
from repro.core.participants import Participant, Strategy
from repro.core.protocol import (
    DisputeOutcome,
    OnOffChainProtocol,
    ProtocolOutcome,
    Stage,
    StageResult,
    results_equal,
)
from repro.core.splitter import SplitContracts, split_contract

__all__ = [
    "EngineMetrics",
    "GasEntry",
    "GasLedger",
    "ModelComparison",
    "PrivacyReport",
    "fleet_fingerprint",
    "privacy_report_all_on_chain",
    "privacy_report_hybrid",
    "SplitSpec",
    "Classification",
    "FunctionCategory",
    "classify_contract",
    "estimate_function_cost",
    "AgreementError",
    "DisputeError",
    "EngineError",
    "ProtocolError",
    "SettlementError",
    "SigningError",
    "SplitError",
    "StageError",
    "Participant",
    "Strategy",
    "DisputeResolution",
    "resolve_dispute",
    "BettingDriver",
    "EscrowDriver",
    "ProtocolDriver",
    "SessionEngine",
    "TenderDriver",
    "TxIntent",
    "WaitForBatch",
    "WaitUntil",
    "spawn_fleet",
    "DirectSettlement",
    "MerkleTree",
    "NettedSettlement",
    "SettlementBatcher",
    "SettlementPolicy",
    "SignedState",
    "build_policy",
    "sign_final_state",
    "DisputeOutcome",
    "OnOffChainProtocol",
    "ProtocolOutcome",
    "Stage",
    "StageResult",
    "results_equal",
    "SplitContracts",
    "split_contract",
]
