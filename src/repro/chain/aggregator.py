"""Rendered batch-settlement aggregator contract (netted settlement).

One aggregator instance settles a whole *batch* of protocol sessions:
the batcher commits a single Merkle root over every session's leaf
(``H(session_id ‖ signed final state ‖ bytecode hash)``) with one
``commitBatch`` transaction, a batch-level challenge window opens, and
after the deadline one ``finalizeBatch`` transaction closes the batch.
During the window any participant can *open* a leaf — reveal it on
chain together with its Merkle proof — which is the entry point to the
per-session Dispute/Resolve machinery.

Solis has no loops and its fixed arrays are storage-only, so the
Merkle proof cannot travel as an array parameter.  The renderer instead
emits one contract per tree depth: ``openLeaf`` takes the proof as
``depth`` individual ``bytes32`` parameters and the root recomputation
is unrolled at render time, one ``if``/``else`` pair hash per level
(the same expansion trick ``core/padding.py`` uses for the per-
participant signature arguments of ``deployVerifiedInstance``).
"""

from __future__ import annotations

from repro.lang.compiler import CompiledContract, compile_source

#: Contract name every rendered aggregator uses.
AGGREGATOR_NAME = "SettlementAggregator"

#: Deepest tree the renderer will emit (2**8 = 256 leaves per batch).
MAX_AGGREGATOR_DEPTH = 8

_I1 = "    "
_I2 = _I1 * 2


def _proof_params(depth: int) -> str:
    """The unrolled ``bytes32 p0, ...`` proof parameter list."""
    return "".join(f", bytes32 p{level}" for level in range(depth))


def _fold_lines(depth: int) -> str:
    """Unrolled root recomputation, one pair hash per tree level.

    At each level the ``index`` parity decides whether the running
    node is the left or the right child of its parent — exactly the
    pairing order ``MerkleTree`` uses off-chain.
    """
    lines = []
    for level in range(depth):
        lines.append(
            f"{_I2}if (path % 2 == 1) "
            f"{{ node = keccak256(p{level}, node); }} "
            f"else {{ node = keccak256(node, p{level}); }}\n"
            f"{_I2}path = path / 2;\n"
        )
    return "".join(lines)


def render_aggregator_contract(depth: int, challenge_period: int) -> str:
    """Render the aggregator source for one tree ``depth``.

    ``depth`` 0 is the degenerate batch of one: the root *is* the
    leaf and ``openLeaf`` takes no proof parameters at all.
    """
    if not 0 <= depth <= MAX_AGGREGATOR_DEPTH:
        raise ValueError(
            f"aggregator depth {depth} outside [0, "
            f"{MAX_AGGREGATOR_DEPTH}] (batches are capped at "
            f"{2 ** MAX_AGGREGATOR_DEPTH} leaves)")
    if challenge_period <= 0:
        raise ValueError(
            "a netted batch needs a positive challenge window — with "
            "no window a false leaf could never be opened")
    return f"""
pragma solis ^0.1.0;

contract {AGGREGATOR_NAME} {{
    address public batcher;
    bool public committed;
    bool public finalized;
    bytes32 public batchRoot;
    uint public batchSize;
    uint public challengeDeadline;
    uint public openedCount;
    mapping(uint => bool) public openedLeaf;

    event BatchCommitted(bytes32 root, uint size, uint deadline);
    event LeafOpened(uint index, bytes32 leaf);
    event BatchFinalized(bytes32 root, uint opened);

    constructor(address committer) public {{
        batcher = committer;
    }}

    function commitBatch(bytes32 root, uint size) public {{
        require(msg.sender == batcher);
        require(!committed);
        require(size > 0);
        committed = true;
        batchRoot = root;
        batchSize = size;
        challengeDeadline = block.timestamp + {challenge_period};
        emit BatchCommitted(root, size, challengeDeadline);
    }}

    function openLeaf(bytes32 leaf, uint index{_proof_params(depth)}) \
public {{
        require(committed);
        require(!finalized);
        require(block.timestamp < challengeDeadline);
        require(index < batchSize);
        require(!openedLeaf[index]);
        bytes32 node = leaf;
        uint path = index;
{_fold_lines(depth)}{_I2}require(node == batchRoot);
        openedLeaf[index] = true;
        openedCount = openedCount + 1;
        emit LeafOpened(index, leaf);
    }}

    function finalizeBatch() public {{
        require(msg.sender == batcher);
        require(committed);
        require(!finalized);
        require(block.timestamp >= challengeDeadline);
        finalized = true;
        emit BatchFinalized(batchRoot, openedCount);
    }}
}}
"""


def compile_aggregator(depth: int,
                       challenge_period: int) -> CompiledContract:
    """Render and compile one aggregator (deterministic per inputs)."""
    source = render_aggregator_contract(depth, challenge_period)
    return compile_source(source).contract(AGGREGATOR_NAME)
