"""Persistent forked worker pools with ordered broadcast channels.

PR 5's parallel executor and admission verifier used a fresh
``ProcessPoolExecutor`` per block (or a lazily created one that shipped
whole objects), which puts a ``fork()`` of the entire interpreter heap
on every block's critical path — BENCH_pr5 measured the result: the
parallel path *lost* to sequential (0.61x) even on conflict-free
blocks.

:class:`PersistentWorkerPool` forks its workers **once**.  Each worker
inherits the parent's address space copy-on-write (so the pre-block
world state replica costs nothing to ship) and then stays alive,
receiving two kinds of messages over a per-worker pipe:

* ``broadcast(payload)`` — delivered to *every* worker, in order, used
  to ship the incremental per-block state diffs that keep each
  replica exactly equal to the parent's pre-block state;
* ``run_tasks(payloads)`` — round-robin fan-out; results come back
  over one shared queue tagged with their sequence number, so the
  caller always sees input order.

Pipes deliver messages in order, so a broadcast sent before a batch of
tasks is guaranteed to be applied before any of those tasks run — no
acknowledgement round-trip is needed.

Failure semantics match the executors this replaces: any pipe error,
worker death or worker-side exception raises :class:`WorkerPoolError`
from the parent call, after which the pool must be closed — callers
degrade to their inline paths, which are always semantically
identical.  A failed *broadcast* on the worker side poisons that
worker (its replica can no longer be trusted), so it fails every
subsequent task instead of computing against divergent state.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from typing import Callable, Optional

from repro.exceptions import ReproError

#: Upper bound on waiting for one task batch; generous because tasks
#: are transaction-sized (milliseconds), but finite so a worker stuck
#: with an unpicklable result cannot hang the miner forever.
DEFAULT_TASK_TIMEOUT = 120.0


class WorkerPoolError(ReproError, RuntimeError):
    """The pool (or one of its workers) failed; close and degrade."""


class TaskHandle:
    """An in-flight batch submitted with :meth:`submit_tasks`.

    Opaque to callers: hold it and pass it back to :meth:`collect`.
    Handles of one pool may be collected in any order — results that
    arrive for a not-yet-collected handle are stashed, not lost.
    """

    __slots__ = ("start", "count")

    def __init__(self, start: int, count: int) -> None:
        self.start = start
        self.count = count


def _worker_loop(conn, result_queue, on_task: Callable,
                 on_broadcast: Optional[Callable]) -> None:
    """Worker-side message loop (runs in the forked child)."""
    poisoned: Optional[str] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away — die quietly
        kind = message[0]
        if kind == "stop":
            return
        if kind == "cast":
            try:
                if on_broadcast is not None:
                    on_broadcast(message[1])
            except Exception as exc:  # replica may have diverged
                poisoned = f"{type(exc).__name__}: {exc}"
            continue
        seq, payload = message[1], message[2]
        if poisoned is not None:
            result_queue.put((seq, False,
                              f"worker poisoned by broadcast: {poisoned}"))
            continue
        try:
            result = on_task(payload)
        except Exception as exc:
            result_queue.put((seq, False, f"{type(exc).__name__}: {exc}"))
            continue
        result_queue.put((seq, True, result))


class PersistentWorkerPool:
    """N forked workers, per-worker command pipes, one result queue."""

    def __init__(self, workers: int, on_task: Callable,
                 on_broadcast: Optional[Callable] = None,
                 task_timeout: float = DEFAULT_TASK_TIMEOUT) -> None:
        if not hasattr(os, "fork"):
            raise WorkerPoolError("persistent pools require fork()")
        self.workers = max(1, int(workers))
        self._task_timeout = task_timeout
        context = multiprocessing.get_context("fork")
        self._results = context.Queue()
        self._conns = []
        self._procs = []
        self._closed = False
        # Overlapping-batch bookkeeping: sequence numbers are global
        # across the pool's lifetime so two in-flight batches can share
        # the one result queue; results arriving for a handle other
        # than the one being collected wait in the stash.
        self._next_seq = 0
        self._stash: dict[int, object] = {}
        try:
            for _ in range(self.workers):
                read_end, write_end = context.Pipe(duplex=False)
                proc = context.Process(
                    target=_worker_loop,
                    args=(read_end, self._results, on_task, on_broadcast),
                    daemon=True,
                )
                proc.start()
                read_end.close()
                self._conns.append(write_end)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    # -- parent-side API -------------------------------------------------

    def broadcast(self, payload) -> None:
        """Send ``payload`` to every worker, ahead of later tasks."""
        self._ensure_open()
        try:
            for conn in self._conns:
                conn.send(("cast", payload))
        except Exception as exc:
            raise WorkerPoolError(f"broadcast failed: {exc}") from exc

    def run_tasks(self, payloads: list) -> list:
        """Fan ``payloads`` out round-robin; results in input order.

        Raises :class:`WorkerPoolError` on any worker-side failure or
        timeout — the caller must then close the pool (later results
        of the failed batch may still sit in the shared queue).
        """
        return self.collect(self.submit_tasks(payloads))

    def submit_tasks(self, payloads: list) -> TaskHandle:
        """Dispatch a batch WITHOUT waiting; returns a handle.

        The asynchronous half of :meth:`run_tasks`: the caller keeps
        the parent process productive (mining, settling) while the
        workers chew, then claims the results with :meth:`collect`.
        Several handles may be in flight at once.
        """
        self._ensure_open()
        start = self._next_seq
        try:
            for offset, payload in enumerate(payloads):
                seq = start + offset
                self._conns[seq % self.workers].send(("task", seq, payload))
        except Exception as exc:
            raise WorkerPoolError(f"task dispatch failed: {exc}") from exc
        self._next_seq = start + len(payloads)
        return TaskHandle(start, len(payloads))

    def collect(self, handle: TaskHandle) -> list:
        """Wait for one submitted batch; results in submit order.

        Results tagged for *other* in-flight handles are stashed for
        their own ``collect`` call, so collection order is free.
        """
        self._ensure_open()
        results: list = [None] * handle.count
        received = 0
        for seq in range(handle.start, handle.start + handle.count):
            if seq in self._stash:
                results[seq - handle.start] = self._stash.pop(seq)
                received += 1
        deadline = time.monotonic() + self._task_timeout
        while received < handle.count:
            try:
                seq, ok, value = self._results.get(timeout=1.0)
            except queue.Empty:
                if any(not proc.is_alive() for proc in self._procs):
                    raise WorkerPoolError("a worker process died") from None
                if time.monotonic() > deadline:
                    raise WorkerPoolError("task batch timed out") from None
                continue
            if not ok:
                raise WorkerPoolError(value)
            if handle.start <= seq < handle.start + handle.count:
                results[seq - handle.start] = value
                received += 1
            else:
                self._stash[seq] = value
        return results

    def _ensure_open(self) -> None:
        if self._closed:
            raise WorkerPoolError("pool is closed")

    def close(self) -> None:
        """Stop every worker and release the IPC plumbing (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
        try:
            self._results.close()
        except Exception:
            pass
