"""Account model: EOAs and contract accounts.

Mirrors Ethereum's account state (§4.1 of the yellow paper): nonce,
balance, code and storage.  An account with code is a Contract Account
(CA); one without is an Externally Owned Account (EOA) — the two account
types §II-A of the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Account:
    """Mutable state of one Ethereum account."""

    nonce: int = 0
    balance: int = 0
    code: bytes = b""
    storage: dict[int, int] = field(default_factory=dict)

    @property
    def is_contract(self) -> bool:
        """True for Contract Accounts (code-bearing)."""
        return bool(self.code)

    @property
    def is_empty(self) -> bool:
        """EIP-161 emptiness: no nonce, balance, or code."""
        return self.nonce == 0 and self.balance == 0 and not self.code

    def copy(self) -> "Account":
        """Deep copy (storage included)."""
        return Account(
            nonce=self.nonce,
            balance=self.balance,
            code=self.code,
            storage=dict(self.storage),
        )
