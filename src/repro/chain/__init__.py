"""Blockchain substrate: accounts, state, transactions, blocks, mining.

A deterministic single-node Ethereum stand-in (the role Kovan plays in
the paper) with a ganache-like :class:`EthereumSimulator` facade.
"""

from repro.chain.account import Account
from repro.chain.admission import BatchSenderRecovery
from repro.chain.block import Block, BlockHeader
from repro.chain.blockchain import Blockchain, ChainError
from repro.chain.contract import (
    ContractABI,
    DeployedContract,
    EventABI,
    FunctionABI,
)
from repro.chain.mempool import Mempool, MempoolError
from repro.chain.parallel import (
    BlockApplyResult,
    BlockApplyStats,
    ParallelBlockExecutor,
)
from repro.chain.processor import (
    InvalidTransaction,
    apply_transaction,
    decode_revert_reason,
    run_transaction,
)
from repro.chain.aggregator import (
    AGGREGATOR_NAME,
    MAX_AGGREGATOR_DEPTH,
    compile_aggregator,
    render_aggregator_contract,
)
from repro.chain.receipt import Receipt
from repro.chain.simulator import (
    ETHER,
    GWEI,
    CallFailed,
    EthereumSimulator,
    SettlementConfigError,
    SimAccount,
    SimulatorConfig,
    SimulatorConfigError,
    TransactionFailed,
)
from repro.chain.state import Overlay, RecordingView, WorldState
from repro.chain.transaction import Transaction, TransactionError

__all__ = [
    "Account",
    "BatchSenderRecovery",
    "Block",
    "BlockHeader",
    "Blockchain",
    "ChainError",
    "ContractABI",
    "DeployedContract",
    "EventABI",
    "FunctionABI",
    "Mempool",
    "MempoolError",
    "BlockApplyResult",
    "BlockApplyStats",
    "ParallelBlockExecutor",
    "InvalidTransaction",
    "apply_transaction",
    "decode_revert_reason",
    "run_transaction",
    "AGGREGATOR_NAME",
    "MAX_AGGREGATOR_DEPTH",
    "compile_aggregator",
    "render_aggregator_contract",
    "Receipt",
    "ETHER",
    "GWEI",
    "CallFailed",
    "EthereumSimulator",
    "SettlementConfigError",
    "SimAccount",
    "SimulatorConfig",
    "SimulatorConfigError",
    "TransactionFailed",
    "WorldState",
    "Overlay",
    "RecordingView",
    "Transaction",
    "TransactionError",
]
