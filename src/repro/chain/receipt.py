"""Transaction receipts and log matching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.keys import Address
from repro.evm.vm import Log


@dataclass(frozen=True)
class Receipt:
    """Outcome of one mined transaction."""

    transaction_hash: bytes
    transaction_index: int
    block_number: int
    sender: Address
    to: Optional[Address]
    status: bool
    gas_used: int
    cumulative_gas_used: int
    contract_address: Optional[Address] = None
    logs: tuple[Log, ...] = field(default_factory=tuple)
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        """True when execution did not revert."""
        return self.status

    def logs_for(self, address: Address) -> list[Log]:
        """Logs emitted by a specific contract."""
        return [log for log in self.logs if log.address == address]

    def logs_with_topic(self, topic: int | bytes) -> list[Log]:
        """Logs whose first topic matches (event filtering)."""
        if isinstance(topic, bytes):
            topic = int.from_bytes(topic, "big")
        return [log for log in self.logs if log.topics and log.topics[0] == topic]
