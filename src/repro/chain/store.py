"""Chain-facing persistence: namespaces over one durable KVStore.

:class:`ChainStore` is the seam between the chain objects and the
WAL-backed :class:`~repro.storage.kv.KVStore`: it owns one
:class:`~repro.storage.storable.StorableDict` per chain namespace
(accounts, leaf digests, blocks, receipts, dropped transactions, chain
metadata, mempool journal) with the RLP codecs bound in.  Writes stage
into the store's open WAL transaction; the *engine* decides when a
transaction commits (after its spawn bootstrap, after every mined
round, after every settled batch), so the chain never half-persists a
block.

The mempool journal is an append-only audit trail of admission,
eviction and selection events.  It is never replayed: the engine only
commits at points where the pool is provably empty (every queued
transaction of a round is mined in that same round), so recovery
rebuilds the pool as empty and the journal exists for post-mortem
inspection — see ``docs/persistence.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.chain.receipt import Receipt
from repro.crypto import rlp
from repro.storage.codec import (
    decode_account,
    decode_block,
    decode_receipt,
    encode_account,
    encode_block,
    encode_receipt,
)
from repro.storage.kv import KVStore
from repro.storage.storable import StorableDict, StorableValue

#: One namespace per chain concern.  Namespaces are part of the store
#: format — renaming one invalidates existing stores.
NS_ACCOUNT = b"acct"
NS_DIGEST = b"dig"
NS_BLOCK = b"blk"
NS_RECEIPT = b"rcpt"
NS_DROP = b"drop"
NS_META = b"chainmeta"
NS_MEMPOOL = b"mpool"

#: Mempool journal event tags.
MEMPOOL_ADD = b"add"
MEMPOOL_EVICT = b"evict"
MEMPOOL_POP = b"pop"
MEMPOOL_CLEAR = b"clear"


def block_key(number: int) -> bytes:
    """Fixed-width big-endian key so lexicographic = numeric order."""
    return number.to_bytes(8, "big")


def _encode_int(value: int) -> bytes:
    return value.to_bytes(8, "big")


def _decode_int(raw: bytes) -> int:
    return int.from_bytes(raw, "big")


def _encode_text(value: str) -> bytes:
    return value.encode("utf-8")


def _decode_text(raw: bytes) -> str:
    return raw.decode("utf-8")


class ChainStore:
    """Typed namespace views the chain persists itself through."""

    def __init__(self, kv: KVStore) -> None:
        self.kv = kv
        self.accounts = StorableDict(
            kv, NS_ACCOUNT, encode=encode_account, decode=decode_account)
        self.digests = StorableDict(kv, NS_DIGEST)
        self.blocks = StorableDict(
            kv, NS_BLOCK, encode=encode_block, decode=decode_block)
        self.receipts = StorableDict(
            kv, NS_RECEIPT, encode=encode_receipt, decode=decode_receipt)
        self.dropped = StorableDict(
            kv, NS_DROP, encode=_encode_text, decode=_decode_text)
        self.latest_block = StorableValue(
            kv, NS_META, b"latest",
            encode=_encode_int, decode=_decode_int)
        self.time_offset = StorableValue(
            kv, NS_META, b"time_offset",
            encode=_encode_int, decode=_decode_int)
        self._mempool_seq = kv.count(NS_MEMPOOL)

    # -- blocks --------------------------------------------------------

    def stage_block(self, block, dropped: Optional[list] = None) -> None:
        """Stage one mined block, its receipts and its drop records."""
        self.blocks[block_key(block.number)] = block
        for receipt in block.receipts:
            self.receipts[receipt.transaction_hash] = receipt
        for tx_hash, reason in (dropped or []):
            self.dropped[tx_hash] = reason
        self.latest_block.set(block.number)

    def load_blocks(self) -> list:
        """Every persisted block, in chain order."""
        return [block for __, block in self.blocks.items()]

    def load_receipts(self) -> dict[bytes, Receipt]:
        """tx hash -> receipt for every persisted receipt."""
        return dict(self.receipts.items())

    def load_dropped(self) -> dict[bytes, str]:
        """tx hash -> drop reason for every dropped transaction."""
        return dict(self.dropped.items())

    # -- mempool audit journal -----------------------------------------

    def journal_mempool(self, event: bytes, tx_hash: bytes) -> None:
        """Append one admission/eviction/selection event (audit only)."""
        key = self._mempool_seq.to_bytes(8, "big")
        self._mempool_seq += 1
        self.kv.put(NS_MEMPOOL, key, rlp.encode([event, tx_hash]))

    def mempool_events(self) -> list[tuple[bytes, bytes]]:
        """The journal as (event, tx_hash) pairs, oldest first."""
        return [tuple(rlp.decode(raw))
                for __, raw in self.kv.items(NS_MEMPOOL)]
