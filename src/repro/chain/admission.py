"""Parallel ECDSA sender recovery at mempool admission.

Admitting a transaction forces :attr:`Transaction.sender`, a full
secp256k1 public-key recovery — the single most expensive pure-CPU
operation on the admission path (PR 3 benchmarked it at ~1 ms even
with the fixed-base comb).  A fleet submitting hundreds of
transactions per round serialises all of that on one core.

:class:`BatchSenderRecovery` fans the recoveries out over a
:class:`~repro.chain.workers.PersistentWorkerPool` — forked once, kept
warm across batches so the per-batch cost is message passing, not
``fork()`` — and seeds each transaction's ``sender`` cache with the
worker's answer (see :meth:`Transaction.seed_sender`), so the
subsequent ``Mempool.add`` finds the address precomputed.  The
semantics are bit-for-bit those of sequential admission: the worker
runs the same EIP-2 low-s check and the same recovery code, and any
worker-side failure is re-raised as the same :class:`TransactionError`
string the sequential path would have produced.

When no pool can be created (or ``workers <= 1``) recovery simply runs
inline — the sequential fallback required by the batch-verifier seam.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro import obs
from repro.chain.transaction import Transaction, TransactionError
from repro.chain.workers import PersistentWorkerPool


def _recover_sender(tx: Transaction) -> tuple[bool, object]:
    """Worker-side recovery: ``(True, raw_address)`` or ``(False, msg)``.

    Exceptions cannot cross the pool boundary without losing their
    type, so failures travel as the message string and the parent
    re-raises :class:`TransactionError` with it.
    """
    try:
        return True, tx.sender.value
    except TransactionError as exc:
        return False, str(exc)


def _recover_sender_chunk(txs: list) -> list:
    """Worker-side BATCH recovery: one verdict list per chunk.

    All low-s transactions in the chunk share one
    :func:`repro.crypto.keys.recover_address_batch` pass (Montgomery
    batch inversions + one shared affine normalisation); anything the
    batch cannot recover — and any non-canonical signature — re-runs
    the single-shot :attr:`Transaction.sender` path so the error
    message is byte-identical to sequential admission's.
    """
    from repro.crypto.keys import recover_address_batch

    verdicts: list = [None] * len(txs)
    batch_indices = []
    batch_items = []
    for index, tx in enumerate(txs):
        signature = tx.signature
        if not signature.is_low_s:
            # The cheap EIP-2 rejection; take the single path for the
            # exact TransactionError message.
            verdicts[index] = _recover_sender(tx)
            continue
        digest = tx.signing_hash(
            tx.nonce, tx.gas_price, tx.gas_limit,
            tx.to, tx.value, tx.data,
        )
        batch_indices.append(index)
        batch_items.append((digest, signature))
    if batch_items:
        addresses = recover_address_batch(batch_items)
        for index, address in zip(batch_indices, addresses):
            if address is not None:
                verdicts[index] = (True, address.value)
            else:
                # Rare: unrecoverable signature.  Re-run single-shot
                # for the exact error string.
                verdicts[index] = _recover_sender(txs[index])
    return verdicts


class BatchSenderRecovery:
    """Recovers transaction senders in parallel, seeding their caches.

    The pool is created lazily on first use and reused across batches
    (workers hold no state besides warm caches); :meth:`close` shuts
    it down.  Construction never fails — pool problems degrade to
    inline recovery permanently.
    """

    def __init__(self, workers: int = 0,
                 use_processes: Optional[bool] = None) -> None:
        if workers <= 0:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        if use_processes is None:
            use_processes = self.workers > 1 and hasattr(os, "fork")
        self.use_processes = bool(use_processes)
        self._pool: Optional[PersistentWorkerPool] = None

    def _ensure_pool(self) -> Optional[PersistentWorkerPool]:
        if not self.use_processes:
            return None
        if self._pool is None:
            try:
                self._pool = PersistentWorkerPool(
                    self.workers, _recover_sender_chunk)
            except Exception:
                self.use_processes = False
                return None
        return self._pool

    def recover(self, transactions: Iterable[Transaction]
                ) -> list[tuple[Transaction, Optional[str]]]:
        """Seed ``sender`` on every transaction; report per-tx errors.

        Returns ``(transaction, error_message_or_None)`` pairs in
        input order.  Transactions whose cache is already populated
        are passed through untouched.
        """
        txs = list(transactions)
        pending = [tx for tx in txs if "sender" not in tx.__dict__]
        pool = self._ensure_pool() if len(pending) > 1 else None
        verdicts: dict[int, tuple[bool, object]] = {}
        if pool is not None:
            # One strided chunk per worker: the pool's unit of work is
            # a whole sub-batch, so each worker amortises its modular
            # inversions across len(chunk) signatures instead of
            # paying them per signature.
            chunk_count = min(self.workers, len(pending))
            chunks = [pending[start::chunk_count]
                      for start in range(chunk_count)]
            try:
                chunk_results = pool.run_tasks(chunks)
            except Exception:
                # A broken pool (killed worker, pickling trouble)
                # must not lose the batch: recover inline instead.
                self.use_processes = False
                self.close()
                chunks = [pending]
                chunk_results = [_recover_sender_chunk(pending)]
        else:
            chunks = [pending] if pending else []
            chunk_results = [_recover_sender_chunk(pending)] if pending else []
        if obs.enabled():
            for chunk in chunks:
                obs.observe(obs.names.METRIC_CRYPTO_BATCH_SIZE, len(chunk))
        for chunk, results in zip(chunks, chunk_results):
            for tx, verdict in zip(chunk, results):
                verdicts[id(tx)] = verdict

        from repro.crypto.keys import Address

        out: list[tuple[Transaction, Optional[str]]] = []
        recovered = 0
        for tx in txs:
            verdict = verdicts.get(id(tx))
            if verdict is None:  # cache was already warm
                out.append((tx, None))
                continue
            ok, payload = verdict
            if ok:
                tx.seed_sender(Address(payload))
                recovered += 1
                out.append((tx, None))
            else:
                out.append((tx, payload))
        if recovered and obs.enabled():
            obs.inc(obs.names.METRIC_PARALLEL_ADMISSIONS, recovered)
        return out

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
