"""A ganache-like Ethereum simulator facade.

Bundles the blockchain, a set of pre-funded deterministic accounts, and
web3-style helpers (deploy / transact / call / time-warp) — the same
developer surface the paper's authors had against Kovan, minus the
network.  Auto-mining is on by default: every transaction lands in its
own block, which keeps receipts immediate and tests deterministic.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro import obs
from repro.crypto.keys import Address, PrivateKey
from repro.chain.block import Block
from repro.chain.blockchain import (
    DEFAULT_BLOCK_GAS_LIMIT,
    DEFAULT_BLOCK_INTERVAL,
    Blockchain,
    ChainError,
)
from repro.chain.contract import ContractABI, DeployedContract
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction
from repro.exceptions import ReproError

ETHER = 10 ** 18
GWEI = 10 ** 9
DEFAULT_FUNDING = 1_000 * ETHER


class TransactionFailed(ReproError, RuntimeError):
    """A transaction was mined but reverted (carries the receipt)."""

    def __init__(self, receipt: Receipt) -> None:
        super().__init__(
            f"transaction reverted in block {receipt.block_number}: "
            f"{receipt.error or 'no reason'}"
        )
        self.receipt = receipt


class CallFailed(ReproError, RuntimeError):
    """A read-only call reverted."""


class SimulatorConfigError(ReproError, ValueError):
    """A :class:`SimulatorConfig` knob is out of its valid range."""


class SettlementConfigError(SimulatorConfigError):
    """The settlement knobs (``settlement``/``batch_size``/window) are
    inconsistent — rejected at construction, before any chain exists."""


#: Settlement modes :class:`SimulatorConfig` accepts (mirrors
#: ``repro.core.settlement.SETTLEMENTS`` without importing upward).
_SETTLEMENT_MODES = ("direct", "netted")

#: Mirrors ``repro.core.settlement.MAX_BATCH_SIZE`` (2 ** max depth of
#: the rendered aggregator) without importing upward.
_MAX_BATCH_SIZE = 256


@dataclass(frozen=True)
class SimulatorConfig:
    """Construction knobs for :class:`EthereumSimulator`.

    The preferred construction is keyword-only::

        sim = EthereumSimulator(config=SimulatorConfig(auto_mine=False))

    ``block_gas_limit`` and ``block_interval`` flow through to the
    underlying :class:`~repro.chain.blockchain.Blockchain`, which is
    what the multi-session engine tunes for batch mining.  The
    settlement knobs (``settlement``, ``batch_size``,
    ``settlement_challenge_period``) are validated here, at
    construction — a bad combination raises
    :class:`SettlementConfigError` before any chain state exists.
    """

    num_accounts: int = 10
    funding: int = DEFAULT_FUNDING
    auto_mine: bool = True
    genesis_timestamp: int = 1_550_000_000
    block_gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT
    block_interval: int = DEFAULT_BLOCK_INTERVAL
    #: Speculative execution lanes per mined block (1 = sequential).
    workers: int = 1
    #: Force (True) or forbid (False) process-pool speculation; None
    #: picks processes whenever ``os.fork`` exists and ``workers > 1``.
    parallel_processes: Optional[bool] = None
    #: Force (True) or forbid (False) the EVM bytecode-to-Python JIT
    #: for this simulator's executions; None keeps the module default
    #: (enabled, honouring ``REPRO_EVM_JIT``).  See ``repro.evm.jit``.
    evm_jit: Optional[bool] = None
    #: How engine-driven sessions settle: ``"direct"`` (one on-chain
    #: submit/finalize pair per session) or ``"netted"`` (one
    #: ``commitBatch`` transaction per batch of sessions).
    settlement: str = "direct"
    #: Sessions per netted batch (must stay 1 under direct mode).
    batch_size: int = 1
    #: Batch-level challenge window, seconds (netted mode only).
    settlement_challenge_period: int = 3_600

    def __post_init__(self) -> None:
        """Reject inconsistent knob combinations at construction."""
        if self.num_accounts < 0:
            raise SimulatorConfigError(
                f"num_accounts {self.num_accounts} must be >= 0")
        if self.block_gas_limit <= 0:
            raise SimulatorConfigError(
                f"block_gas_limit {self.block_gas_limit} must be > 0")
        if self.block_interval <= 0:
            raise SimulatorConfigError(
                f"block_interval {self.block_interval} must be > 0")
        if self.workers < 1:
            raise SimulatorConfigError(
                f"workers {self.workers} must be >= 1")
        if self.settlement not in _SETTLEMENT_MODES:
            raise SettlementConfigError(
                f"unknown settlement mode {self.settlement!r}; "
                f"choose from {_SETTLEMENT_MODES}")
        if self.batch_size < 1:
            raise SettlementConfigError(
                f"batch_size {self.batch_size} must be >= 1")
        if self.batch_size > _MAX_BATCH_SIZE:
            raise SettlementConfigError(
                f"batch_size {self.batch_size} exceeds the aggregator "
                f"cap of {_MAX_BATCH_SIZE}")
        if self.settlement == "direct" and self.batch_size != 1:
            raise SettlementConfigError(
                "batch_size > 1 needs settlement='netted' — direct "
                "settlement submits per session")
        if self.settlement == "netted" \
                and self.settlement_challenge_period <= 0:
            raise SettlementConfigError(
                "netted settlement needs a positive "
                "settlement_challenge_period — with no batch window a "
                "false leaf could never be opened")


@dataclass
class SimAccount:
    """A pre-funded externally owned account."""

    key: PrivateKey
    name: str = ""

    @property
    def address(self) -> Address:
        """The account's address."""
        return self.key.address

    def __str__(self) -> str:
        return self.name or self.address.checksum


class EthereumSimulator:
    """Single-node test chain with funded accounts and auto-mining."""

    def __init__(self, num_accounts: Optional[int] = None,
                 funding: Optional[int] = None,
                 auto_mine: Optional[bool] = None,
                 genesis_timestamp: Optional[int] = None, *,
                 config: Optional[SimulatorConfig] = None) -> None:
        legacy = {
            name: value for name, value in (
                ("num_accounts", num_accounts),
                ("funding", funding),
                ("auto_mine", auto_mine),
                ("genesis_timestamp", genesis_timestamp),
            ) if value is not None
        }
        if config is not None and legacy:
            raise TypeError(
                "pass either config=SimulatorConfig(...) or the legacy "
                f"arguments, not both: {sorted(legacy)}"
            )
        if config is None:
            if legacy:
                warnings.warn(
                    "EthereumSimulator(num_accounts, funding, auto_mine, "
                    "genesis_timestamp) is deprecated; use "
                    "EthereumSimulator(config=SimulatorConfig(...))",
                    DeprecationWarning, stacklevel=2,
                )
            config = SimulatorConfig(**legacy)
        self.config = config
        self.chain = Blockchain(
            genesis_timestamp=config.genesis_timestamp,
            block_gas_limit=config.block_gas_limit,
            block_interval=config.block_interval,
            workers=config.workers,
            parallel_processes=config.parallel_processes,
            evm_jit=config.evm_jit,
        )
        self.auto_mine = config.auto_mine
        self.accounts: list[SimAccount] = []
        for index in range(config.num_accounts):
            account = SimAccount(
                key=PrivateKey.from_seed(f"simulator-account-{index}"),
                name=f"account{index}",
            )
            self.chain.state.add_balance(account.address, config.funding)
            self.accounts.append(account)
        self.chain.state.clear_journal()

    # -- accounts ---------------------------------------------------------

    def create_account(self, seed: str, funding: int = DEFAULT_FUNDING,
                       name: str = "") -> SimAccount:
        """Create and fund an additional deterministic account."""
        account = SimAccount(key=PrivateKey.from_seed(seed), name=name or seed)
        self.chain.state.add_balance(account.address, funding)
        self.chain.state.clear_journal()
        return account

    def get_balance(self, who: Address | SimAccount) -> int:
        """Current wei balance of ``address``."""
        address = who.address if isinstance(who, SimAccount) else who
        return self.chain.state.get_balance(address)

    def get_nonce(self, who: Address | SimAccount) -> int:
        """Current nonce of ``address``."""
        address = who.address if isinstance(who, SimAccount) else who
        return self.chain.state.get_nonce(address)

    # -- time ----------------------------------------------------------------

    @property
    def current_timestamp(self) -> int:
        """The chain's current timestamp (latest block time)."""
        return self.chain.latest_block.timestamp

    def increase_time(self, seconds: int) -> None:
        """Warp the next block's timestamp forward."""
        self.chain.increase_time(seconds)

    def advance_time_to(self, timestamp: int) -> None:
        """Warp so the *next* block is at or after ``timestamp``."""
        target_delta = timestamp - (
            self.chain.latest_block.timestamp + self.chain.block_interval
        )
        if target_delta > 0:
            self.chain.increase_time(target_delta)

    def mine(self, blocks: int = 1,
             gas_limit: Optional[int] = None) -> list[Block]:
        """Mine ``blocks`` blocks, packing pending transactions.

        With ``auto_mine=False`` this is the other half of the
        :meth:`pending`/:meth:`mine` pair: queue transactions with
        :meth:`send_transaction`, inspect them with :meth:`pending`,
        then mine explicitly.  Returns the mined blocks so callers can
        see exactly what was packed.
        """
        return [self.chain.mine_block(gas_limit=gas_limit)
                for __ in range(blocks)]

    def pending(self) -> list[Transaction]:
        """Transactions queued in the mempool, in miner order."""
        return self.chain.mempool.pending()

    # -- snapshots (ganache evm_snapshot / evm_revert) -----------------------

    def snapshot(self) -> int:
        """Capture the full chain state; returns a snapshot id.

        Reverting restores world state, blocks, receipts and the clock
        — the ganache ``evm_snapshot`` idiom tests use to explore
        alternative futures from a common setup.  Unsupported once a
        durable store is attached: reverting in memory would silently
        diverge from the committed WAL (``docs/persistence.md``).
        """
        if self.chain._store is not None:
            raise ChainError(
                "snapshot/revert is unsupported on a chain backed by a "
                "durable store — an in-memory revert cannot rewind the "
                "committed WAL")
        if not hasattr(self, "_snapshots"):
            self._snapshots: dict[int, tuple] = {}
            self._snapshot_counter = 0
        self._snapshot_counter += 1
        chain = self.chain
        self._snapshots[self._snapshot_counter] = (
            chain.state.copy(),
            list(chain.blocks),
            dict(chain._receipts),
            dict(chain._dropped),
            chain._time_offset,
        )
        return self._snapshot_counter

    def revert(self, snapshot_id: int) -> None:
        """Restore a snapshot taken by :meth:`snapshot`."""
        snapshots = getattr(self, "_snapshots", {})
        if snapshot_id not in snapshots:
            raise ChainError(f"unknown snapshot id {snapshot_id}")
        state, blocks, receipts, dropped, offset = \
            snapshots.pop(snapshot_id)
        chain = self.chain
        chain.state = state
        chain.blocks = blocks
        chain._receipts = receipts
        chain._dropped = dropped
        chain._time_offset = offset
        chain.mempool.clear()
        # Later snapshots reference futures that no longer exist.
        for later in [sid for sid in snapshots if sid > snapshot_id]:
            snapshots.pop(later)

    # -- transactions ------------------------------------------------------------

    def send_transaction(self, sender: SimAccount, to: Optional[Address],
                         data: bytes = b"", value: int = 0,
                         gas_limit: int = 3_000_000,
                         gas_price: int = 1) -> bytes:
        """Sign and queue a transaction without mining; returns its hash.

        Manual-mining workflow: queue several transactions, then call
        :meth:`mine` once to pack them into a single block, and fetch
        receipts via :meth:`get_receipt`.  Nonces are allocated from
        pending state (pool-aware), so one sender can queue many.
        """
        pending_same_sender = sum(
            1 for tx in self.chain.mempool.pending()
            if tx.sender == sender.address
        )
        tx = Transaction.create_signed(
            private_key=sender.key,
            nonce=self.get_nonce(sender) + pending_same_sender,
            to=to,
            value=value,
            data=data,
            gas_limit=gas_limit,
            gas_price=gas_price,
        )
        return self.chain.send_transaction(tx)

    def send_signed_transaction(self, transaction: Transaction) -> bytes:
        """Queue one pre-signed transaction; returns its hash.

        The engine's pipelined rounds sign in worker processes and
        submit here — admission (including the sender-recovery check)
        is identical to :meth:`send_transaction`'s.
        """
        return self.chain.send_transaction(transaction)

    def send_raw_transactions(self, transactions: list[Transaction]
                              ) -> list[bytes]:
        """Queue pre-signed transactions in one admission batch.

        Sender recovery runs through the chain's parallel ECDSA
        admission pool when ``config.workers > 1``; returns the hashes
        of the admitted transactions (rejected ones are dropped, as on
        the gossip path of a real node).
        """
        return self.chain.send_transactions(transactions)

    def get_receipt(self, tx_hash: bytes) -> Receipt:
        """Receipt of a mined transaction (raises if unknown/pending)."""
        return self.chain.get_receipt(tx_hash)

    def transact(self, sender: SimAccount, to: Optional[Address],
                 data: bytes = b"", value: int = 0,
                 gas_limit: int = 3_000_000, gas_price: int = 1,
                 require_success: bool = True) -> Receipt:
        """Sign, send and (auto-)mine a transaction; return its receipt."""
        if not self.auto_mine:
            raise ChainError(
                "auto_mine is off: use send_transaction() + mine() and "
                "fetch the receipt manually"
            )
        tx_hash = self.send_transaction(
            sender, to, data=data, value=value,
            gas_limit=gas_limit, gas_price=gas_price,
        )
        self.chain.mine_block()
        receipt = self.chain.get_receipt(tx_hash)
        if require_success and not receipt.status:
            raise TransactionFailed(receipt)
        return receipt

    def transfer(self, sender: SimAccount, to: Address | SimAccount,
                 value: int) -> Receipt:
        """Plain value transfer."""
        address = to.address if isinstance(to, SimAccount) else to
        return self.transact(sender, address, value=value, gas_limit=50_000)

    def deploy_bytecode(self, sender: SimAccount, init_code: bytes,
                        value: int = 0,
                        gas_limit: int = 6_000_000) -> Receipt:
        """Deploy raw init bytecode; receipt carries the new address."""
        return self.transact(
            sender, to=None, data=init_code, value=value, gas_limit=gas_limit
        )

    def deploy(self, sender: SimAccount, init_code: bytes, abi: ContractABI,
               constructor_args: Sequence[Any] = (), value: int = 0,
               gas_limit: int = 6_000_000) -> DeployedContract:
        """Deploy a compiled contract and return a bound handle."""
        data = init_code + abi.encode_constructor_args(constructor_args)
        with obs.span(obs.names.SPAN_CHAIN_DEPLOY,
                      contract=abi.contract_name):
            receipt = self.deploy_bytecode(sender, data, value=value,
                                           gas_limit=gas_limit)
        if obs.enabled():
            obs.inc(obs.names.METRIC_CHAIN_FN_GAS, receipt.gas_used,
                    fn="(deploy)")
        assert receipt.contract_address is not None
        return DeployedContract(
            address=receipt.contract_address,
            abi=abi,
            simulator=self,
            deploy_receipt=receipt,
        )

    def contract_at(self, address: Address, abi: ContractABI) -> DeployedContract:
        """Bind an ABI to an already-deployed address."""
        return DeployedContract(address=address, abi=abi, simulator=self)

    # -- read-only execution ---------------------------------------------------------

    def call(self, to: Address, data: bytes = b"",
             sender: Optional[SimAccount] = None, value: int = 0,
             gas_limit: int = 8_000_000) -> bytes:
        """eth_call: execute against a copy of state, discard changes."""
        from repro.evm.vm import EVM, Message

        state_copy = self.chain.state.copy()
        caller = (sender or self.accounts[0]).address
        if value:
            state_copy.add_balance(caller, value)
        message = Message(
            sender=caller, to=to, value=value, data=data,
            gas=gas_limit, origin=caller,
        )
        evm = EVM(state_copy, self.chain.block_context(),
                  jit=self.chain.evm_jit)
        with obs.span(obs.names.SPAN_CHAIN_CALL):
            result = evm.execute(message)
        if not result.success:
            from repro.chain.processor import decode_revert_reason

            reason = decode_revert_reason(result.return_data)
            raise CallFailed(
                f"call reverted: {reason or result.error or 'no reason'}"
            )
        return result.return_data

    def profile(self, sender: SimAccount, to: Optional[Address],
                data: bytes = b"", value: int = 0,
                gas_limit: int = 8_000_000, depth_limit: int | None = 0):
        """Gas-profile a message on a state copy (nothing committed).

        Returns a :class:`repro.evm.tracer.GasProfile` decomposing the
        execution gas by opcode and category.  ``depth_limit=0`` gives
        an exclusive decomposition of the outermost frame.
        """
        from repro.evm.tracer import GasProfiler
        from repro.evm.vm import EVM, Message

        state_copy = self.chain.state.copy()
        if to is not None:
            state_copy.increment_nonce(sender.address)
        profiler = GasProfiler(depth_limit=depth_limit)
        message = Message(
            sender=sender.address, to=to, value=value, data=data,
            gas=gas_limit, origin=sender.address,
        )
        evm = EVM(state_copy, self.chain.block_context(), tracer=profiler)
        result = evm.execute(message)
        if not result.success:
            raise CallFailed(
                f"profiled execution reverted: {result.error}"
            )
        return profiler.profile

    def estimate_gas(self, sender: SimAccount, to: Optional[Address],
                     data: bytes = b"", value: int = 0) -> int:
        """Gas a transaction would use, without committing anything."""
        from repro.evm import gas as gas_schedule
        from repro.evm.vm import EVM, Message

        state_copy = self.chain.state.copy()
        intrinsic = gas_schedule.intrinsic_gas(data, to is None)
        if to is not None:
            state_copy.increment_nonce(sender.address)
        message = Message(
            sender=sender.address, to=to, value=value, data=data,
            gas=self.chain.block_gas_limit - intrinsic,
            origin=sender.address,
        )
        evm = EVM(state_copy, self.chain.block_context(),
                  jit=self.chain.evm_jit)
        result = evm.execute(message)
        if not result.success:
            raise CallFailed(f"estimate reverted: {result.error or 'no reason'}")
        refund = min(result.gas_refund, (intrinsic + result.gas_used) // 2)
        return intrinsic + result.gas_used - refund
