"""Blocks and block headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.crypto import rlp
from repro.crypto.keccak import keccak256
from repro.crypto.keys import Address
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction


@dataclass(frozen=True)
class BlockHeader:
    """The consensus-relevant block fields."""

    number: int
    parent_hash: bytes
    state_root: bytes
    timestamp: int
    miner: Address
    gas_limit: int
    gas_used: int
    transactions_root: bytes

    def encode(self) -> bytes:
        """RLP-encode the header fields for hashing."""
        return rlp.encode([
            self.number,
            self.parent_hash,
            self.state_root,
            self.timestamp,
            self.miner.value,
            self.gas_limit,
            self.gas_used,
            self.transactions_root,
        ])

    @cached_property
    def hash(self) -> bytes:
        """keccak256 of the RLP-encoded header."""
        return keccak256(self.encode())


@dataclass(frozen=True)
class Block:
    """A mined block: header + ordered transactions + receipts."""

    header: BlockHeader
    transactions: tuple[Transaction, ...] = field(default_factory=tuple)
    receipts: tuple[Receipt, ...] = field(default_factory=tuple)

    @property
    def number(self) -> int:
        """The header's block number."""
        return self.header.number

    @property
    def timestamp(self) -> int:
        """The header's timestamp."""
        return self.header.timestamp

    @property
    def hash(self) -> bytes:
        """The header's hash."""
        return self.header.hash

    @property
    def gas_used(self) -> int:
        """Total gas used by the block's transactions."""
        return self.header.gas_used


def transactions_root(transactions: list[Transaction]) -> bytes:
    """Commitment over the ordered transaction list."""
    return keccak256(rlp.encode([tx.encode() for tx in transactions]))
