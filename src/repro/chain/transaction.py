"""Signed transactions.

Classic (pre-EIP-1559) Ethereum transactions: RLP-serialised
``[nonce, gas_price, gas_limit, to, value, data, v, r, s]`` with the
sender recovered from the ECDSA signature over the unsigned payload's
Keccak-256 hash.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

from repro.crypto import rlp
from repro.crypto.ecdsa import Signature
from repro.crypto.keccak import keccak256
from repro.crypto.keys import Address, PrivateKey, recover_address
from repro.exceptions import ReproError


class TransactionError(ReproError, ValueError):
    """Raised for malformed or invalid transactions."""


@dataclass(frozen=True)
class Transaction:
    """An immutable signed transaction."""

    nonce: int
    gas_price: int
    gas_limit: int
    to: Optional[Address]  # None => contract creation
    value: int
    data: bytes
    v: int
    r: int
    s: int

    @property
    def is_create(self) -> bool:
        """True for contract-creation transactions (no recipient)."""
        return self.to is None

    @property
    def signature(self) -> Signature:
        """The (v, r, s) signature triple, if signed."""
        return Signature(v=self.v, r=self.r, s=self.s)

    @staticmethod
    def _signing_payload(nonce: int, gas_price: int, gas_limit: int,
                         to: Optional[Address], value: int,
                         data: bytes) -> bytes:
        return rlp.encode([
            nonce, gas_price, gas_limit,
            to.value if to is not None else b"",
            value, data,
        ])

    @classmethod
    def signing_hash(cls, nonce: int, gas_price: int, gas_limit: int,
                     to: Optional[Address], value: int, data: bytes) -> bytes:
        """Hash that the sender signs."""
        return keccak256(
            cls._signing_payload(nonce, gas_price, gas_limit, to, value, data)
        )

    @classmethod
    def create_signed(cls, private_key: PrivateKey, nonce: int,
                      to: Optional[Address], value: int, data: bytes = b"",
                      gas_limit: int = 3_000_000,
                      gas_price: int = 1) -> "Transaction":
        """Build and sign a transaction in one step."""
        digest = cls.signing_hash(nonce, gas_price, gas_limit, to, value, data)
        sig = private_key.sign(digest)
        return cls(
            nonce=nonce, gas_price=gas_price, gas_limit=gas_limit,
            to=to, value=value, data=data, v=sig.v, r=sig.r, s=sig.s,
        )

    @cached_property
    def sender(self) -> Address:
        """Recover the sender address from the signature.

        High-s signatures are rejected outright (EIP-2, Homestead):
        accepting the malleated twin would let the same payload exist
        under two different transaction hashes and pollute the
        ``recover_address`` memo with duplicate entries.
        """
        digest = self.signing_hash(
            self.nonce, self.gas_price, self.gas_limit,
            self.to, self.value, self.data,
        )
        signature = self.signature
        if not signature.is_low_s:
            raise TransactionError(
                "non-canonical signature: s is in the upper half of the "
                "curve order (EIP-2 requires low-s transactions)"
            )
        try:
            return recover_address(digest, signature)
        except ValueError as exc:
            raise TransactionError(f"unrecoverable signature: {exc}") from exc

    def seed_sender(self, address: Address) -> None:
        """Pre-populate the :attr:`sender` cache with a recovered
        address.

        The batch admission pool recovers signatures in worker
        processes; the worker's :func:`cached_property` result cannot
        travel back through the frozen dataclass, so the parent seeds
        the cache explicitly (``cached_property`` stores through
        ``__dict__``, which ``frozen=True`` does not protect).
        """
        self.__dict__["sender"] = address

    def encode(self) -> bytes:
        """Full RLP wire encoding (with signature)."""
        return rlp.encode([
            self.nonce, self.gas_price, self.gas_limit,
            self.to.value if self.to is not None else b"",
            self.value, self.data, self.v, self.r, self.s,
        ])

    @classmethod
    def decode(cls, raw: bytes) -> "Transaction":
        """Parse the RLP wire encoding."""
        items = rlp.decode(raw)
        if not isinstance(items, list) or len(items) != 9:
            raise TransactionError("transaction RLP must have 9 fields")
        nonce, gas_price, gas_limit, to, value, data, v, r, s = items
        return cls(
            nonce=rlp.decode_int(nonce),
            gas_price=rlp.decode_int(gas_price),
            gas_limit=rlp.decode_int(gas_limit),
            to=Address(to) if to else None,
            value=rlp.decode_int(value),
            data=data,
            v=rlp.decode_int(v),
            r=rlp.decode_int(r),
            s=rlp.decode_int(s),
        )

    @cached_property
    def hash(self) -> bytes:
        """Transaction hash (keccak of the signed encoding)."""
        return keccak256(self.encode())

    @property
    def hash_hex(self) -> str:
        """The transaction hash as a 0x-prefixed hex string."""
        return "0x" + self.hash.hex()

    def upfront_cost(self) -> int:
        """Max wei the sender must hold: value + gas_limit * gas_price."""
        return self.value + self.gas_limit * self.gas_price
