"""Transaction processor: the yellow-paper state transition function.

Validates a transaction against world state, charges intrinsic and
execution gas, applies the message via the EVM, settles refunds (capped
at half the gas used) and pays the miner — the accounting that makes
"Gas" in this simulator mean what it means in the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.crypto.keys import Address
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.evm import gas
from repro.evm.vm import EVM, BlockContext, ExecutionResult, Message
from repro.exceptions import ReproError


class InvalidTransaction(ReproError, ValueError):
    """The transaction cannot be included in a block at all."""


_ERROR_STRING_SELECTOR = bytes.fromhex("08c379a0")


def decode_revert_reason(return_data: bytes) -> Optional[str]:
    """Extract the message from a Solidity ``Error(string)`` payload.

    Returns None when the revert carried no (decodable) reason.
    """
    if len(return_data) < 4 + 64 or \
            return_data[:4] != _ERROR_STRING_SELECTOR:
        return None
    body = return_data[4:]
    try:
        offset = int.from_bytes(body[0:32], "big")
        length = int.from_bytes(body[offset:offset + 32], "big")
        raw = body[offset + 32:offset + 32 + length]
        if len(raw) != length:
            return None
        return raw.decode("utf-8", errors="replace")
    except (IndexError, ValueError):
        return None


@dataclass
class TransactionOutcome:
    """Result of applying one transaction to state."""

    status: bool
    gas_used: int
    return_data: bytes
    contract_address: Optional[Address]
    logs: tuple
    error: Optional[str]


def validate_transaction(state: WorldState, tx: Transaction) -> None:
    """Raise :class:`InvalidTransaction` if ``tx`` cannot execute."""
    sender = tx.sender
    expected_nonce = state.get_nonce(sender)
    if tx.nonce != expected_nonce:
        raise InvalidTransaction(
            f"nonce mismatch: tx has {tx.nonce}, account at {expected_nonce}"
        )
    balance = state.get_balance(sender)
    if balance < tx.upfront_cost():
        raise InvalidTransaction(
            f"insufficient funds: balance {balance} < cost {tx.upfront_cost()}"
        )
    intrinsic = gas.intrinsic_gas(tx.data, tx.is_create)
    if tx.gas_limit < intrinsic:
        raise InvalidTransaction(
            f"gas limit {tx.gas_limit} below intrinsic gas {intrinsic}"
        )


def run_transaction(state, block: BlockContext, tx: Transaction,
                    collector=None, jit: Optional[bool] = None
                    ) -> tuple[TransactionOutcome, dict]:
    """The pure state-transition function over any state backend.

    ``state`` is anything implementing the :class:`WorldState` surface
    — the world state itself on the sequential path, or a
    :class:`~repro.chain.state.RecordingView` when a speculative lane
    executes the transaction against an overlay.  Unlike
    :func:`apply_transaction` this neither clears the undo journal nor
    talks to the global telemetry: the optional ``collector`` (a
    :class:`~repro.obs.gasprof.TxGasCollector`) receives the EVM steps
    and is returned untouched so the caller can settle it once the
    transaction's fate (committed, re-executed, dropped) is known.

    Returns ``(outcome, profile)`` where ``profile`` holds the keyword
    arguments :func:`repro.obs.end_transaction` needs.
    """
    validate_transaction(state, tx)
    sender = tx.sender

    # Buy gas up front.
    state.set_balance(
        sender, state.get_balance(sender) - tx.gas_limit * tx.gas_price
    )
    intrinsic = gas.intrinsic_gas(tx.data, tx.is_create)
    execution_gas = tx.gas_limit - intrinsic

    if not tx.is_create:
        # Creation nonce bumping happens inside the EVM (so that the
        # CREATE address derivation sees the pre-increment value).
        state.increment_nonce(sender)

    message = Message(
        sender=sender,
        to=tx.to,
        value=tx.value,
        data=tx.data,
        gas=execution_gas,
        origin=sender,
        gas_price=tx.gas_price,
    )
    evm = EVM(state, block, tracer=collector, jit=jit)
    result: ExecutionResult = evm.execute(message)

    gas_used = intrinsic + result.gas_used
    refund = 0
    if result.success:
        refund = min(result.gas_refund, gas_used // 2)
        gas_used -= refund
    profile = {
        "execution_gas": result.gas_used,
        "intrinsic": intrinsic,
        "refund": refund,
        "gas_used": gas_used,
    }

    # Reimburse the sender and pay the miner.
    state.add_balance(sender, (tx.gas_limit - gas_used) * tx.gas_price)
    state.add_balance(block.coinbase, gas_used * tx.gas_price)

    error = result.error
    if error == "revert":
        reason = decode_revert_reason(result.return_data)
        if reason is not None:
            error = f"revert: {reason}"

    outcome = TransactionOutcome(
        status=result.success,
        gas_used=gas_used,
        return_data=result.return_data,
        contract_address=result.created_address,
        logs=tuple(result.logs),
        error=error,
    )
    return outcome, profile


def apply_transaction(state: WorldState, block: BlockContext,
                      tx: Transaction,
                      jit: Optional[bool] = None) -> TransactionOutcome:
    """Execute ``tx`` against ``state``, committing all side effects."""
    # When telemetry is active, the EVM reports every outer-frame step
    # into a per-transaction opcode-gas collector (see repro.obs).
    collector = obs.begin_transaction()
    outcome, profile = run_transaction(state, block, tx,
                                       collector=collector, jit=jit)
    if collector is not None:
        obs.end_transaction(collector, **profile)
    state.clear_journal()
    return outcome
