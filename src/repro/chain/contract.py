"""Contract ABI descriptions and a web3-style contract handle.

`ContractABI` is what the Solis compiler emits next to bytecode; the
`DeployedContract` handle binds an ABI to an on-chain address and a
simulator so application code reads like web3.py:

    betting.transact("deposit", sender=alice, value=1 * ETHER)
    winner = betting.call("getWinner")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro import obs
from repro.crypto import abi as abi_codec
from repro.crypto.keys import Address
from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chain.receipt import Receipt
    from repro.chain.simulator import EthereumSimulator, SimAccount


class AbiLookupError(ReproError, KeyError):
    """Raised when a function or event is missing from an ABI."""


@dataclass(frozen=True)
class FunctionABI:
    """Description of one externally callable function."""

    name: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    payable: bool = False
    constant: bool = False

    @property
    def selector(self) -> bytes:
        """First four bytes of the signature hash."""
        return abi_codec.function_selector(self.name, self.inputs)

    @property
    def signature(self) -> str:
        """Canonical ``name(type,...)`` signature string."""
        return abi_codec.function_signature(self.name, self.inputs)

    def encode_call(self, args: Sequence[Any]) -> bytes:
        """ABI-encode a call: selector plus encoded arguments."""
        return abi_codec.encode_call(self.name, self.inputs, args)

    def decode_output(self, data: bytes) -> Any:
        """Decode return data per the declared output types."""
        if not self.outputs:
            return None
        values = abi_codec.decode_arguments(self.outputs, data)
        return values[0] if len(values) == 1 else tuple(values)


@dataclass(frozen=True)
class EventABI:
    """Description of one event type."""

    name: str
    inputs: tuple[str, ...] = ()

    @property
    def topic(self) -> bytes:
        """keccak256 topic identifying this event in logs."""
        return abi_codec.event_topic(self.name, self.inputs)

    def decode(self, data: bytes) -> list[Any]:
        """Decode one log's data per the event's input types."""
        return abi_codec.decode_arguments(self.inputs, data)


@dataclass(frozen=True)
class ContractABI:
    """The full external interface of a contract."""

    contract_name: str
    functions: tuple[FunctionABI, ...] = ()
    events: tuple[EventABI, ...] = ()
    constructor_inputs: tuple[str, ...] = ()

    def function(self, name: str) -> FunctionABI:
        """Look up a function by name (AbiLookupError if absent)."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise AbiLookupError(
            f"{self.contract_name} has no function {name!r}; "
            f"has: {[fn.name for fn in self.functions]}"
        )

    def event(self, name: str) -> EventABI:
        """Look up an event by name (AbiLookupError if absent)."""
        for ev in self.events:
            if ev.name == name:
                return ev
        raise AbiLookupError(f"{self.contract_name} has no event {name!r}")

    def encode_constructor_args(self, args: Sequence[Any]) -> bytes:
        """ABI-encode constructor arguments for deployment."""
        return abi_codec.encode_arguments(self.constructor_inputs, args)


@dataclass
class DeployedContract:
    """A contract address bound to an ABI and a simulator."""

    address: Address
    abi: ContractABI
    simulator: "EthereumSimulator"
    deploy_receipt: Optional["Receipt"] = field(default=None, repr=False)

    def transact(self, function_name: str, *args: Any,
                 sender: "SimAccount", value: int = 0,
                 gas_limit: int = 3_000_000, gas_price: int = 1,
                 require_success: bool = True) -> "Receipt":
        """Send a state-changing transaction and mine it."""
        fn = self.abi.function(function_name)
        data = fn.encode_call(args)
        with obs.span(obs.names.SPAN_CHAIN_TX, fn=function_name,
                      contract=self.abi.contract_name):
            receipt = self.simulator.transact(
                sender=sender, to=self.address, data=data,
                value=value, gas_limit=gas_limit, gas_price=gas_price,
                require_success=require_success,
            )
        if obs.enabled():
            obs.inc(obs.names.METRIC_CHAIN_FN_GAS, receipt.gas_used,
                    fn=function_name)
        return receipt

    def call(self, function_name: str, *args: Any,
             sender: Optional["SimAccount"] = None, value: int = 0) -> Any:
        """Execute read-only (no state change, no gas spent on-chain)."""
        fn = self.abi.function(function_name)
        data = fn.encode_call(args)
        output = self.simulator.call(
            to=self.address, data=data, sender=sender, value=value,
        )
        return fn.decode_output(output)

    def decode_events(self, receipt: "Receipt", event_name: str) -> list[list[Any]]:
        """Decode all logs in a receipt matching one of this ABI's events."""
        event = self.abi.event(event_name)
        topic = int.from_bytes(event.topic, "big")
        return [
            event.decode(log.data)
            for log in receipt.logs_for(self.address)
            if log.topics and log.topics[0] == topic
        ]

    @property
    def balance(self) -> int:
        """The contract account's current wei balance."""
        return self.simulator.get_balance(self.address)

    @property
    def code(self) -> bytes:
        """The runtime bytecode stored at the contract address."""
        return self.simulator.chain.state.get_code(self.address)
