"""Journaled world state and speculative overlay views.

:class:`WorldState` implements the :class:`repro.evm.vm.StateBackend`
protocol with a change journal so nested message frames can snapshot
and revert in O(changes) — the semantics the EVM's CALL/CREATE/REVERT
machinery depends on.  A state-root commitment (hash over the sorted
account contents) stands in for Ethereum's Merkle-Patricia trie root.

:class:`RecordingView` is the optimistic-concurrency half: a
copy-on-write overlay over a base ``WorldState`` that records the
transaction's read set (account fields and storage slots served from
the base) and buffers every write.  The parallel block executor runs
one view per speculative lane, then commits overlays in block order —
a lane whose read set intersects an earlier lane's write set is
re-executed on the committed state (see ``repro.chain.parallel``).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro import obs
from repro.crypto import rlp
from repro.crypto.keccak import keccak256
from repro.crypto.keys import Address
from repro.chain.account import Account

#: Hot-account cache size once a durable store is attached: accounts
#: beyond this are evicted (clean, digest kept) after each persist and
#: fault back in from the store on demand.
DEFAULT_HOT_ACCOUNTS = 1_024

# Journal entry tags (shared by WorldState and RecordingView journals;
# the first three double as read/write-set key namespaces).
_BALANCE = "balance"
_NONCE = "nonce"
_CODE = "code"
_STORAGE = "storage"
_CREATE = "create"
_COINBASE_DELTA = "cbdelta"

#: Sentinel for "this overlay key had no previous value" in view
#: journals (None is a legal code value, so a distinct marker is used).
_MISSING = object()


class WorldState:
    """All accounts, with snapshot/revert via an undo journal."""

    def __init__(self) -> None:
        self._accounts: dict[bytes, Account] = {}
        self._journal: list[tuple] = []
        # Content-derived caches so state_root() is O(dirty accounts),
        # not O(total code + storage): every mutation evicts the
        # touched account's leaf digest (and its code hash when the
        # code itself changes).
        self._digests: dict[bytes, bytes] = {}
        self._code_hashes: dict[bytes, bytes] = {}
        # Durable-store plumbing (inert until attach_store): mutated
        # accounts awaiting persistence and an LRU of hot accounts
        # (dict insertion order is the recency order).
        self._store = None
        self._dirty: set[bytes] = set()
        self._hot: dict[bytes, None] = {}
        self._hot_limit = DEFAULT_HOT_ACCOUNTS
        # Diff tracking (inert until begin_diff_tracking): key-grained
        # record of every account/slot mutated since the last drain,
        # used to ship incremental replica updates to persistent
        # worker pools.  Reverted mutations stay marked — the drain
        # reads *current* values, so a superset of keys is only
        # redundant, never wrong.
        self._diff_tracking = False
        self._diff_accounts: set[bytes] = set()
        self._diff_slots: set[tuple[bytes, int]] = set()

    # -- durable store ---------------------------------------------------

    def attach_store(self, store,
                     hot_limit: int = DEFAULT_HOT_ACCOUNTS) -> None:
        """Back this state with a :class:`~repro.chain.store.ChainStore`.

        Writes stage into the store at :meth:`persist_dirty` /
        :meth:`persist_all` time (the chain calls them at block
        boundaries); reads fault evicted accounts back in on demand.
        """
        self._store = store
        self._hot_limit = max(1, hot_limit)

    def _note_dirty(self, raw: bytes) -> None:
        if self._store is not None:
            self._dirty.add(raw)

    def _touch(self, raw: bytes) -> None:
        self._hot.pop(raw, None)
        self._hot[raw] = None

    def _fault_in(self, raw: bytes) -> Account | None:
        """Load an evicted account back from the durable store."""
        account = self._store.accounts.get(raw)
        if account is None:
            return None
        self._accounts[raw] = account
        if obs.enabled():
            obs.inc(obs.names.METRIC_STORAGE_ACCOUNTS_FAULTED)
        return account

    # -- account access -------------------------------------------------

    def _get(self, address: Address) -> Account | None:
        account = self._accounts.get(address.value)
        if self._store is None:
            return account
        if account is None:
            account = self._fault_in(address.value)
        if account is not None:
            self._touch(address.value)
        return account

    def _get_or_create(self, address: Address) -> Account:
        account = self._get(address)
        if account is None:
            account = Account()
            self._accounts[address.value] = account
            self._journal.append((_CREATE, address.value))
            if self._diff_tracking:
                self._diff_accounts.add(address.value)
            if self._store is not None:
                self._note_dirty(address.value)
                self._touch(address.value)
        return account

    def account_exists(self, address: Address) -> bool:
        """True if the account exists and is non-empty (EIP-161)."""
        account = self._get(address)
        return account is not None and not account.is_empty

    def create_account(self, address: Address) -> None:
        """Ensure an account record exists for ``address``."""
        self._get_or_create(address)

    def get_balance(self, address: Address) -> int:
        """Current wei balance of ``address`` (0 if absent)."""
        account = self._get(address)
        return account.balance if account else 0

    def set_balance(self, address: Address, value: int) -> None:
        """Overwrite the wei balance of ``address``."""
        if value < 0:
            raise ValueError("balance cannot go negative")
        account = self._get_or_create(address)
        self._journal.append((_BALANCE, address.value, account.balance))
        self._digests.pop(address.value, None)
        self._note_dirty(address.value)
        if self._diff_tracking:
            self._diff_accounts.add(address.value)
        account.balance = value

    def add_balance(self, address: Address, delta: int) -> None:
        """Credit ``delta`` wei (convenience for mining rewards/funding)."""
        self.set_balance(address, self.get_balance(address) + delta)

    def get_nonce(self, address: Address) -> int:
        """Current nonce of ``address`` (0 if absent)."""
        account = self._get(address)
        return account.nonce if account else 0

    def increment_nonce(self, address: Address) -> None:
        """Bump the nonce of ``address`` by one."""
        account = self._get_or_create(address)
        self._journal.append((_NONCE, address.value, account.nonce))
        self._digests.pop(address.value, None)
        self._note_dirty(address.value)
        if self._diff_tracking:
            self._diff_accounts.add(address.value)
        account.nonce += 1

    def set_nonce(self, address: Address, value: int) -> None:
        """Overwrite the nonce of ``address`` (overlay commits need the
        absolute value a speculative lane computed, not an increment)."""
        if value < 0:
            raise ValueError("nonce cannot go negative")
        account = self._get_or_create(address)
        self._journal.append((_NONCE, address.value, account.nonce))
        self._digests.pop(address.value, None)
        self._note_dirty(address.value)
        if self._diff_tracking:
            self._diff_accounts.add(address.value)
        account.nonce = value

    def get_code(self, address: Address) -> bytes:
        """Runtime bytecode at ``address`` (empty if absent)."""
        account = self._get(address)
        return account.code if account else b""

    def set_code(self, address: Address, code: bytes) -> None:
        """Install runtime bytecode at ``address``."""
        account = self._get_or_create(address)
        self._journal.append((_CODE, address.value, account.code))
        self._digests.pop(address.value, None)
        self._code_hashes.pop(address.value, None)
        self._note_dirty(address.value)
        if self._diff_tracking:
            self._diff_accounts.add(address.value)
        account.code = code

    def get_storage(self, address: Address, key: int) -> int:
        """Storage slot ``key`` at ``address`` (0 if unset)."""
        account = self._get(address)
        if account is None:
            return 0
        return account.storage.get(key, 0)

    def set_storage(self, address: Address, key: int, value: int) -> None:
        """Write storage slot ``key`` at ``address``."""
        account = self._get_or_create(address)
        old = account.storage.get(key, 0)
        self._journal.append((_STORAGE, address.value, key, old))
        self._digests.pop(address.value, None)
        self._note_dirty(address.value)
        if self._diff_tracking:
            self._diff_slots.add((address.value, key))
        if value == 0:
            account.storage.pop(key, None)
        else:
            account.storage[key] = value

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> int:
        """Mark the current journal position."""
        return len(self._journal)

    def revert_to(self, snapshot_id: int) -> None:
        """Undo every change made after ``snapshot_id``."""
        while len(self._journal) > snapshot_id:
            entry = self._journal.pop()
            tag = entry[0]
            self._digests.pop(entry[1], None)
            if tag == _CODE or tag == _CREATE:
                self._code_hashes.pop(entry[1], None)
            if tag == _BALANCE:
                self._accounts[entry[1]].balance = entry[2]
            elif tag == _NONCE:
                self._accounts[entry[1]].nonce = entry[2]
            elif tag == _CODE:
                self._accounts[entry[1]].code = entry[2]
            elif tag == _STORAGE:
                __, raw, key, old = entry
                storage = self._accounts[raw].storage
                if old == 0:
                    storage.pop(key, None)
                else:
                    storage[key] = old
            elif tag == _CREATE:
                del self._accounts[entry[1]]

    def discard_snapshot(self, snapshot_id: int) -> None:
        """Accept changes since ``snapshot_id`` (journal kept for parents)."""
        # Entries must remain until the outermost frame commits, so this
        # is deliberately a no-op; clear_journal() trims per transaction.

    def clear_journal(self) -> None:
        """Drop undo history — call once per committed transaction."""
        self._journal.clear()

    # -- replica diff shipping -------------------------------------------

    def begin_diff_tracking(self) -> None:
        """Start recording mutated account/slot keys for replica sync.

        The persistent parallel pool calls this immediately before
        forking its workers: the children's replicas equal this state
        at that instant, and every later mutation is captured here so
        :meth:`drain_state_diff` can ship exactly what changed.
        """
        self._diff_tracking = True
        self._diff_accounts.clear()
        self._diff_slots.clear()

    def end_diff_tracking(self) -> None:
        """Stop recording and drop any pending keys."""
        self._diff_tracking = False
        self._diff_accounts.clear()
        self._diff_slots.clear()

    def drain_state_diff(self) -> Optional["StateDiff"]:
        """Current values of everything mutated since the last drain.

        Values are read *now* (not at mutation time), so interleaved
        snapshot/revert cycles collapse to their net effect, and an
        account whose creation was reverted ships as a deletion
        record.  Returns None when nothing changed.
        """
        if not (self._diff_accounts or self._diff_slots):
            return None
        accounts: dict[bytes, Optional[tuple]] = {}
        for raw in self._diff_accounts:
            account = self._get(Address(raw))
            accounts[raw] = (
                None if account is None
                else (account.balance, account.nonce, account.code)
            )
        slots: dict[tuple[bytes, int], int] = {}
        for raw, key in self._diff_slots:
            slots[(raw, key)] = self.get_storage(Address(raw), key)
        self._diff_accounts.clear()
        self._diff_slots.clear()
        return StateDiff(accounts=accounts, slots=slots)

    # -- inspection ----------------------------------------------------------

    def iter_accounts(self) -> Iterator[tuple[Address, Account]]:
        """Iterate (address, account) pairs in insertion order."""
        for raw, account in self._accounts.items():
            yield Address(raw), account

    def _leaf_digest(self, raw: bytes, account: Account) -> bytes:
        """Hash of one account's full contents, cached until mutated."""
        digest = self._digests.get(raw)
        if digest is not None:
            return digest
        code_hash = self._code_hashes.get(raw)
        if code_hash is None:
            code_hash = keccak256(account.code)
            self._code_hashes[raw] = code_hash
        storage_items = [
            [key.to_bytes(32, "big"), value.to_bytes(32, "big")]
            for key, value in sorted(account.storage.items())
        ]
        digest = keccak256(rlp.encode([
            raw,
            account.nonce,
            account.balance,
            code_hash,
            storage_items,
        ]))
        self._digests[raw] = digest
        return digest

    def state_root(self) -> bytes:
        """Deterministic commitment over the full state.

        A hash over the RLP of sorted per-account digests — a stand-in
        for the Merkle-Patricia state root with the same commitment
        property.  Only accounts mutated since the previous call are
        re-hashed, so mining a block costs O(touched accounts), not
        O(world size).  Under a durable store the commitment spans the
        union of resident accounts and cached digests: an evicted
        account contributes its (by construction fresh) cached digest
        without being faulted back in.
        """
        keys = set(self._accounts) | set(self._digests)
        items = []
        for raw in sorted(keys):
            digest = self._digests.get(raw)
            if digest is None:
                digest = self._leaf_digest(raw, self._accounts[raw])
            items.append([raw, digest])
        return keccak256(rlp.encode(items))

    # -- persistence -----------------------------------------------------

    def persist_all(self) -> None:
        """Stage every resident account (and its digest) to the store.

        The bootstrap write when a fresh store is attached to an
        already-populated state (genesis accounts, fleet funding):
        after this, :meth:`persist_dirty` incrementality is sound
        because nothing pre-dates the store.
        """
        store = self._store
        for raw, account in self._accounts.items():
            store.accounts[raw] = account
            store.digests[raw] = self._leaf_digest(raw, account)
            self._touch(raw)
        self._dirty.clear()

    def persist_dirty(self) -> None:
        """Stage accounts mutated since the last persist, then evict.

        Called at block boundaries, *after* :meth:`state_root` — so
        every dirty account's leaf digest is freshly cached and is
        persisted alongside the account (recovery loads all digests and
        faults account bodies lazily).  Clean accounts beyond the hot
        limit are then evicted, oldest-touched first; their digests
        stay resident to keep :meth:`state_root` exact.
        """
        store = self._store
        for raw in sorted(self._dirty):
            account = self._accounts.get(raw)
            if account is None:
                continue  # creation reverted before the block closed
            store.accounts[raw] = account
            store.digests[raw] = self._leaf_digest(raw, account)
        self._dirty.clear()
        self._evict_cold()

    def _evict_cold(self) -> None:
        """Drop oldest-touched accounts beyond the hot limit."""
        if self._journal:
            # Undo records reference resident accounts by identity;
            # never evict under an open journal frame.
            return
        excess = len(self._accounts) - self._hot_limit
        if excess <= 0:
            return
        evicted = 0
        for raw in list(self._hot):
            if evicted >= excess:
                break
            account = self._accounts.get(raw)
            if account is None:
                self._hot.pop(raw, None)
                continue
            # Digest must outlive the account for state_root().
            self._leaf_digest(raw, account)
            del self._accounts[raw]
            self._hot.pop(raw, None)
            evicted += 1
        if evicted and obs.enabled():
            obs.inc(obs.names.METRIC_STORAGE_ACCOUNTS_EVICTED, evicted)

    def restore_from_store(self) -> None:
        """Reset to the store's committed state (crash recovery).

        Loads every persisted leaf digest — the full state commitment —
        and faults account bodies in lazily on first access.
        """
        store = self._store
        self._accounts.clear()
        self._journal.clear()
        self._digests.clear()
        self._code_hashes.clear()
        self._dirty.clear()
        self._hot.clear()
        for raw, digest in store.digests.items():
            self._digests[raw] = digest

    def copy(self) -> "WorldState":
        """Deep copy (used for read-only eth_call-style execution).

        The copy starts with an *empty* undo journal: journal entries
        describe mutations made to the parent, so carrying them over
        would let ``revert_to`` on the copy walk undo records for
        changes the copy never made.
        """
        clone = WorldState()
        clone._accounts = {
            raw: account.copy() for raw, account in self._accounts.items()
        }
        clone._digests = dict(self._digests)
        clone._code_hashes = dict(self._code_hashes)
        clone._journal.clear()
        # The clone may *read* through the store (fault-in) but is
        # never persisted: persist_dirty/persist_all only run on the
        # canonical chain state via the block-boundary hook.
        clone._store = self._store
        clone._hot_limit = self._hot_limit
        return clone


class StateDiff:
    """Incremental replica update: absolute values, not deltas.

    ``accounts`` maps raw addresses to ``(balance, nonce, code)``
    tuples — or None for accounts that no longer exist (a creation
    that was reverted after the replica last synced).  ``slots`` maps
    ``(raw_address, key)`` to the slot's current value (0 = absent).
    Applying the same diff twice is idempotent by construction.
    """

    __slots__ = ("accounts", "slots")

    def __init__(self, accounts: dict, slots: dict) -> None:
        self.accounts = accounts
        self.slots = slots

    def __getstate__(self) -> tuple:
        return (self.accounts, self.slots)

    def __setstate__(self, state: tuple) -> None:
        self.accounts, self.slots = state

    def apply_to(self, state: WorldState) -> None:
        """Bring a replica up to the drained state (worker side).

        Mutates account records directly — the replica never reverts
        across a sync point, so no journal entries are needed — and
        keeps the digest caches coherent for good measure.
        """
        for raw, fields in self.accounts.items():
            if fields is None:
                state._accounts.pop(raw, None)
                state._digests.pop(raw, None)
                state._code_hashes.pop(raw, None)
                continue
            account = state._accounts.get(raw)
            if account is None:
                account = Account()
                state._accounts[raw] = account
            balance, nonce, code = fields
            if account.code != code:
                state._code_hashes.pop(raw, None)
            account.balance = balance
            account.nonce = nonce
            account.code = code
            state._digests.pop(raw, None)
        for (raw, key), value in self.slots.items():
            account = state._accounts.get(raw)
            if account is None:
                if value == 0:
                    continue  # deleted account's stale slot key
                account = Account()
                state._accounts[raw] = account
            if value == 0:
                account.storage.pop(key, None)
            else:
                account.storage[key] = value
            state._digests.pop(raw, None)


class RecordingView:
    """Read/write-set recording overlay over a base :class:`WorldState`.

    Implements the same surface the transaction processor and the EVM
    use on ``WorldState`` (the :class:`~repro.evm.vm.StateBackend`
    protocol plus ``add_balance``/``clear_journal``), but never mutates
    the base: writes land in overlay dictionaries and every value served
    *from the base* is recorded in :attr:`reads`.  Keys are
    ``(kind, address_bytes)`` for balance/nonce/code and
    ``(kind, address_bytes, slot)`` for storage.

    Reads that hit the view's own overlay are *not* recorded — a
    transaction reading its own write depends on itself, not on the
    base snapshot — which is exactly the read set optimistic
    concurrency control validates at commit time.

    The block coinbase is special-cased: ``add_balance(coinbase, fee)``
    (the miner payment every transaction makes) accumulates a
    commutative :attr:`coinbase_delta` outside the read/write sets, so
    fee payments alone never serialise a block.  Any *other* access to
    the coinbase account's balance sets :attr:`coinbase_touched`, which
    forces the lane to re-execute sequentially.
    """

    def __init__(self, base: WorldState,
                 coinbase: Optional[Address] = None) -> None:
        self._base = base
        self._coinbase = coinbase.value if coinbase is not None else None
        #: Keys served from the base state (the lane's read set).
        self.reads: set[tuple] = set()
        self._balances: dict[bytes, int] = {}
        self._nonces: dict[bytes, int] = {}
        self._codes: dict[bytes, bytes] = {}
        self._storage: dict[tuple[bytes, int], int] = {}
        self._created: set[bytes] = set()
        #: Commutative miner-fee credit, applied at commit time.
        self.coinbase_delta = 0
        #: True when the lane read or overwrote the coinbase balance
        #: directly; such lanes must be re-executed sequentially.
        self.coinbase_touched = False
        self._journal: list[tuple] = []

    # -- account access -------------------------------------------------

    def get_balance(self, address: Address) -> int:
        """Balance as seen by this lane (overlay, else recorded base)."""
        raw = address.value
        if raw == self._coinbase:
            self.coinbase_touched = True
            base = self._balances.get(raw)
            if base is None:
                base = self._base.get_balance(address)
            return base + self.coinbase_delta
        if raw in self._balances:
            return self._balances[raw]
        self.reads.add((_BALANCE, raw))
        return self._base.get_balance(address)

    def set_balance(self, address: Address, value: int) -> None:
        """Overwrite a balance in the overlay."""
        if value < 0:
            raise ValueError("balance cannot go negative")
        raw = address.value
        if raw == self._coinbase:
            self.coinbase_touched = True
        self._journal.append(
            (_BALANCE, raw, self._balances.get(raw, _MISSING)))
        self._balances[raw] = value

    def add_balance(self, address: Address, delta: int) -> None:
        """Credit ``delta`` wei; coinbase credits become a commutative
        delta applied at commit, outside the conflict sets."""
        if address.value == self._coinbase:
            self._journal.append((_COINBASE_DELTA, self.coinbase_delta))
            self.coinbase_delta += delta
            return
        self.set_balance(address, self.get_balance(address) + delta)

    def get_nonce(self, address: Address) -> int:
        """Nonce as seen by this lane."""
        raw = address.value
        if raw in self._nonces:
            return self._nonces[raw]
        self.reads.add((_NONCE, raw))
        return self._base.get_nonce(address)

    def increment_nonce(self, address: Address) -> None:
        """Bump the nonce by one (in the overlay)."""
        new = self.get_nonce(address) + 1
        raw = address.value
        self._journal.append(
            (_NONCE, raw, self._nonces.get(raw, _MISSING)))
        self._nonces[raw] = new

    def get_code(self, address: Address) -> bytes:
        """Runtime bytecode as seen by this lane."""
        raw = address.value
        if raw in self._codes:
            return self._codes[raw]
        self.reads.add((_CODE, raw))
        return self._base.get_code(address)

    def set_code(self, address: Address, code: bytes) -> None:
        """Install bytecode in the overlay."""
        raw = address.value
        self._journal.append(
            (_CODE, raw, self._codes.get(raw, _MISSING)))
        self._codes[raw] = code

    def get_storage(self, address: Address, key: int) -> int:
        """Storage slot as seen by this lane."""
        slot = (address.value, key)
        if slot in self._storage:
            return self._storage[slot]
        self.reads.add((_STORAGE, address.value, key))
        return self._base.get_storage(address, key)

    def set_storage(self, address: Address, key: int, value: int) -> None:
        """Write a storage slot in the overlay."""
        slot = (address.value, key)
        self._journal.append(
            (_STORAGE, slot[0], key, self._storage.get(slot, _MISSING)))
        self._storage[slot] = value

    def account_exists(self, address: Address) -> bool:
        """EIP-161 non-emptiness, derived from the effective fields.

        Reads all three fields so any earlier write that could flip
        emptiness lands in the read set (conservative but sound).
        """
        return bool(self.get_balance(address) or self.get_nonce(address)
                    or self.get_code(address))

    def create_account(self, address: Address) -> None:
        """Ensure an account record exists at commit time."""
        raw = address.value
        if raw not in self._created:
            self._journal.append((_CREATE, raw))
            self._created.add(raw)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> int:
        """Mark the current view-journal position."""
        return len(self._journal)

    def revert_to(self, snapshot_id: int) -> None:
        """Undo overlay writes made after ``snapshot_id``.

        The read set is deliberately *not* rolled back: a read made in
        a reverted frame still influenced control flow, so commit-time
        validation must see it.
        """
        while len(self._journal) > snapshot_id:
            entry = self._journal.pop()
            tag = entry[0]
            if tag == _BALANCE:
                self._restore(self._balances, entry[1], entry[2])
            elif tag == _NONCE:
                self._restore(self._nonces, entry[1], entry[2])
            elif tag == _CODE:
                self._restore(self._codes, entry[1], entry[2])
            elif tag == _STORAGE:
                __, raw, key, old = entry
                self._restore(self._storage, (raw, key), old)
            elif tag == _CREATE:
                self._created.discard(entry[1])
            elif tag == _COINBASE_DELTA:
                self.coinbase_delta = entry[1]

    @staticmethod
    def _restore(overlay: dict, key, old) -> None:
        """Put one overlay entry back to its pre-write state."""
        if old is _MISSING:
            overlay.pop(key, None)
        else:
            overlay[key] = old

    def discard_snapshot(self, snapshot_id: int) -> None:
        """Accept changes since ``snapshot_id`` (same no-op contract as
        :meth:`WorldState.discard_snapshot`)."""

    def clear_journal(self) -> None:
        """Drop the view's undo history (the overlay itself stays)."""
        self._journal.clear()

    # -- commit ----------------------------------------------------------

    @property
    def writes(self) -> frozenset:
        """The lane's write set, derived from the overlay contents."""
        keys: set[tuple] = set()
        for raw in self._balances:
            keys.add((_BALANCE, raw))
        for raw in self._nonces:
            keys.add((_NONCE, raw))
        for raw in self._codes:
            keys.add((_CODE, raw))
        for raw, key in self._storage:
            keys.add((_STORAGE, raw, key))
        return frozenset(keys)

    def overlay(self) -> "Overlay":
        """Snapshot the buffered writes as a picklable overlay record."""
        return Overlay(
            balances=dict(self._balances),
            nonces=dict(self._nonces),
            codes=dict(self._codes),
            storage=dict(self._storage),
            created=tuple(self._created),
            coinbase_delta=self.coinbase_delta,
        )

    def commit_to(self, base: WorldState) -> None:
        """Apply the buffered writes (and coinbase delta) to ``base``.

        Goes through the base's journaled setters, so a
        ``base.snapshot()`` taken before the commit can still revert it
        and the per-account digest caches stay coherent.
        """
        self.overlay().apply_to(base, self._coinbase)


class Overlay:
    """The write buffer of one speculative lane, detached from its view.

    Lane results cross a process boundary in the parallel executor, so
    this carries plain dictionaries only — no reference to the base
    state or the view that produced it.
    """

    __slots__ = ("balances", "nonces", "codes", "storage", "created",
                 "coinbase_delta")

    def __init__(self, balances: dict[bytes, int],
                 nonces: dict[bytes, int], codes: dict[bytes, bytes],
                 storage: dict[tuple[bytes, int], int],
                 created: tuple[bytes, ...],
                 coinbase_delta: int) -> None:
        self.balances = balances
        self.nonces = nonces
        self.codes = codes
        self.storage = storage
        self.created = created
        self.coinbase_delta = coinbase_delta

    def __getstate__(self) -> tuple:
        return (self.balances, self.nonces, self.codes, self.storage,
                self.created, self.coinbase_delta)

    def __setstate__(self, state: tuple) -> None:
        (self.balances, self.nonces, self.codes, self.storage,
         self.created, self.coinbase_delta) = state

    def apply_to(self, base: WorldState,
                 coinbase: Optional[bytes]) -> None:
        """Write every buffered value into ``base`` (journaled)."""
        for raw in self.created:
            base.create_account(Address(raw))
        for raw, value in self.balances.items():
            base.set_balance(Address(raw), value)
        for raw, value in self.nonces.items():
            base.set_nonce(Address(raw), value)
        for raw, code in self.codes.items():
            base.set_code(Address(raw), code)
        for (raw, key), value in self.storage.items():
            base.set_storage(Address(raw), key, value)
        if self.coinbase_delta and coinbase is not None:
            base.add_balance(Address(coinbase), self.coinbase_delta)
