"""Journaled world state.

Implements the :class:`repro.evm.vm.StateBackend` protocol with a
change journal so nested message frames can snapshot and revert in
O(changes) — the semantics the EVM's CALL/CREATE/REVERT machinery
depends on.  A state-root commitment (hash over the sorted account
contents) stands in for Ethereum's Merkle-Patricia trie root.
"""

from __future__ import annotations

from typing import Iterator

from repro.crypto import rlp
from repro.crypto.keccak import keccak256
from repro.crypto.keys import Address
from repro.chain.account import Account

# Journal entry tags.
_BALANCE = "balance"
_NONCE = "nonce"
_CODE = "code"
_STORAGE = "storage"
_CREATE = "create"


class WorldState:
    """All accounts, with snapshot/revert via an undo journal."""

    def __init__(self) -> None:
        self._accounts: dict[bytes, Account] = {}
        self._journal: list[tuple] = []
        # Content-derived caches so state_root() is O(dirty accounts),
        # not O(total code + storage): every mutation evicts the
        # touched account's leaf digest (and its code hash when the
        # code itself changes).
        self._digests: dict[bytes, bytes] = {}
        self._code_hashes: dict[bytes, bytes] = {}

    # -- account access -------------------------------------------------

    def _get(self, address: Address) -> Account | None:
        return self._accounts.get(address.value)

    def _get_or_create(self, address: Address) -> Account:
        account = self._accounts.get(address.value)
        if account is None:
            account = Account()
            self._accounts[address.value] = account
            self._journal.append((_CREATE, address.value))
        return account

    def account_exists(self, address: Address) -> bool:
        """True if the account exists and is non-empty (EIP-161)."""
        account = self._get(address)
        return account is not None and not account.is_empty

    def create_account(self, address: Address) -> None:
        """Ensure an account record exists for ``address``."""
        self._get_or_create(address)

    def get_balance(self, address: Address) -> int:
        """Current wei balance of ``address`` (0 if absent)."""
        account = self._get(address)
        return account.balance if account else 0

    def set_balance(self, address: Address, value: int) -> None:
        """Overwrite the wei balance of ``address``."""
        if value < 0:
            raise ValueError("balance cannot go negative")
        account = self._get_or_create(address)
        self._journal.append((_BALANCE, address.value, account.balance))
        self._digests.pop(address.value, None)
        account.balance = value

    def add_balance(self, address: Address, delta: int) -> None:
        """Credit ``delta`` wei (convenience for mining rewards/funding)."""
        self.set_balance(address, self.get_balance(address) + delta)

    def get_nonce(self, address: Address) -> int:
        """Current nonce of ``address`` (0 if absent)."""
        account = self._get(address)
        return account.nonce if account else 0

    def increment_nonce(self, address: Address) -> None:
        """Bump the nonce of ``address`` by one."""
        account = self._get_or_create(address)
        self._journal.append((_NONCE, address.value, account.nonce))
        self._digests.pop(address.value, None)
        account.nonce += 1

    def get_code(self, address: Address) -> bytes:
        """Runtime bytecode at ``address`` (empty if absent)."""
        account = self._get(address)
        return account.code if account else b""

    def set_code(self, address: Address, code: bytes) -> None:
        """Install runtime bytecode at ``address``."""
        account = self._get_or_create(address)
        self._journal.append((_CODE, address.value, account.code))
        self._digests.pop(address.value, None)
        self._code_hashes.pop(address.value, None)
        account.code = code

    def get_storage(self, address: Address, key: int) -> int:
        """Storage slot ``key`` at ``address`` (0 if unset)."""
        account = self._get(address)
        if account is None:
            return 0
        return account.storage.get(key, 0)

    def set_storage(self, address: Address, key: int, value: int) -> None:
        """Write storage slot ``key`` at ``address``."""
        account = self._get_or_create(address)
        old = account.storage.get(key, 0)
        self._journal.append((_STORAGE, address.value, key, old))
        self._digests.pop(address.value, None)
        if value == 0:
            account.storage.pop(key, None)
        else:
            account.storage[key] = value

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> int:
        """Mark the current journal position."""
        return len(self._journal)

    def revert_to(self, snapshot_id: int) -> None:
        """Undo every change made after ``snapshot_id``."""
        while len(self._journal) > snapshot_id:
            entry = self._journal.pop()
            tag = entry[0]
            self._digests.pop(entry[1], None)
            if tag == _CODE or tag == _CREATE:
                self._code_hashes.pop(entry[1], None)
            if tag == _BALANCE:
                self._accounts[entry[1]].balance = entry[2]
            elif tag == _NONCE:
                self._accounts[entry[1]].nonce = entry[2]
            elif tag == _CODE:
                self._accounts[entry[1]].code = entry[2]
            elif tag == _STORAGE:
                __, raw, key, old = entry
                storage = self._accounts[raw].storage
                if old == 0:
                    storage.pop(key, None)
                else:
                    storage[key] = old
            elif tag == _CREATE:
                del self._accounts[entry[1]]

    def discard_snapshot(self, snapshot_id: int) -> None:
        """Accept changes since ``snapshot_id`` (journal kept for parents)."""
        # Entries must remain until the outermost frame commits, so this
        # is deliberately a no-op; clear_journal() trims per transaction.

    def clear_journal(self) -> None:
        """Drop undo history — call once per committed transaction."""
        self._journal.clear()

    # -- inspection ----------------------------------------------------------

    def iter_accounts(self) -> Iterator[tuple[Address, Account]]:
        """Iterate (address, account) pairs in insertion order."""
        for raw, account in self._accounts.items():
            yield Address(raw), account

    def _leaf_digest(self, raw: bytes, account: Account) -> bytes:
        """Hash of one account's full contents, cached until mutated."""
        digest = self._digests.get(raw)
        if digest is not None:
            return digest
        code_hash = self._code_hashes.get(raw)
        if code_hash is None:
            code_hash = keccak256(account.code)
            self._code_hashes[raw] = code_hash
        storage_items = [
            [key.to_bytes(32, "big"), value.to_bytes(32, "big")]
            for key, value in sorted(account.storage.items())
        ]
        digest = keccak256(rlp.encode([
            raw,
            account.nonce,
            account.balance,
            code_hash,
            storage_items,
        ]))
        self._digests[raw] = digest
        return digest

    def state_root(self) -> bytes:
        """Deterministic commitment over the full state.

        A hash over the RLP of sorted per-account digests — a stand-in
        for the Merkle-Patricia state root with the same commitment
        property.  Only accounts mutated since the previous call are
        re-hashed, so mining a block costs O(touched accounts), not
        O(world size).
        """
        items = [
            [raw, self._leaf_digest(raw, self._accounts[raw])]
            for raw in sorted(self._accounts)
        ]
        return keccak256(rlp.encode(items))

    def copy(self) -> "WorldState":
        """Deep copy (used for read-only eth_call-style execution).

        The copy starts with an *empty* undo journal: journal entries
        describe mutations made to the parent, so carrying them over
        would let ``revert_to`` on the copy walk undo records for
        changes the copy never made.
        """
        clone = WorldState()
        clone._accounts = {
            raw: account.copy() for raw, account in self._accounts.items()
        }
        clone._digests = dict(self._digests)
        clone._code_hashes = dict(self._code_hashes)
        clone._journal.clear()
        return clone
