"""Transaction pool.

Orders pending transactions the way miners do: by gas price
(descending), then arrival order; per-sender transactions are kept in
nonce order so account nonces always apply sequentially.  One
``(sender, nonce)`` slot holds at most one transaction —
replace-by-gas-price on admission, mirroring geth's ``PriceBump``
rule — and transactions whose nonce has already been consumed on
chain are evicted at batch-selection time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.chain.transaction import Transaction, TransactionError
from repro.crypto.keys import Address
from repro.exceptions import ReproError


class MempoolError(ReproError, ValueError):
    """Raised when a transaction cannot be admitted to the pool."""


@dataclass(order=True)
class _PoolEntry:
    sort_key: tuple[int, int] = field(compare=True)
    transaction: Transaction = field(compare=False)


class Mempool:
    """Pending transactions awaiting inclusion in a block."""

    def __init__(self) -> None:
        self._entries: list[_PoolEntry] = []
        self._hashes: set[bytes] = set()
        self._slots: dict[tuple[bytes, int], _PoolEntry] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def _remove(self, entry: _PoolEntry) -> None:
        """Drop one entry from every index."""
        self._entries.remove(entry)
        self._hashes.discard(entry.transaction.hash)
        tx = entry.transaction
        self._slots.pop((tx.sender.value, tx.nonce), None)

    def add(self, transaction: Transaction) -> None:
        """Admit a transaction (deduplicated by hash, sender checked).

        A transaction occupying an already-pending ``(sender, nonce)``
        slot replaces the incumbent only when it bids a strictly
        higher gas price; an equal-or-lower bid is rejected as an
        underpriced replacement.  Without this rule two same-slot
        transactions could coexist and the loser would linger in the
        pool forever — only one of them can ever mine.
        """
        if transaction.hash in self._hashes:
            raise MempoolError("transaction already in pool")
        try:
            transaction.sender  # force signature recovery
        except TransactionError as exc:
            raise MempoolError(
                f"rejecting unsignable transaction: {exc}") from exc
        slot = (transaction.sender.value, transaction.nonce)
        incumbent = self._slots.get(slot)
        if incumbent is not None:
            if transaction.gas_price <= incumbent.transaction.gas_price:
                raise MempoolError(
                    f"replacement transaction underpriced: nonce "
                    f"{transaction.nonce} is pending at gas price "
                    f"{incumbent.transaction.gas_price}, got "
                    f"{transaction.gas_price}"
                )
            self._remove(incumbent)
        entry = _PoolEntry(
            sort_key=(-transaction.gas_price, next(self._counter)),
            transaction=transaction,
        )
        self._entries.append(entry)
        self._hashes.add(transaction.hash)
        self._slots[slot] = entry
        if obs.enabled():
            obs.set_gauge(obs.names.METRIC_MEMPOOL_DEPTH,
                          len(self._entries))

    def evict_stale(self,
                    account_nonce: Callable[[Address], int]
                    ) -> list[Transaction]:
        """Drop transactions whose nonce the chain already consumed.

        ``account_nonce`` maps a sender address to its current account
        nonce; any pending transaction with a lower nonce can never
        mine again and is evicted.  Returns the evicted transactions.
        """
        stale = [
            entry for entry in self._entries
            if entry.transaction.nonce
            < account_nonce(entry.transaction.sender)
        ]
        for entry in stale:
            self._remove(entry)
        return [entry.transaction for entry in stale]

    def pop_batch(self, gas_limit: int,
                  account_nonce: Optional[Callable[[Address], int]] = None
                  ) -> list[Transaction]:
        """Take the best transactions fitting under ``gas_limit``.

        Per-sender nonce order is preserved: a later-nonce transaction
        never jumps ahead of an earlier one from the same sender.
        When the miner supplies ``account_nonce`` (the chain's current
        account-nonce view), stale-nonce transactions are evicted
        before selection so they can neither block a sender's queue
        nor linger in the pool forever.
        """
        if account_nonce is not None:
            self.evict_stale(account_nonce)
        self._entries.sort()
        chosen: list[Transaction] = []
        gas_budget = gas_limit

        # Lowest pending nonce per sender — a transaction is only
        # eligible once every lower-nonce sibling has been taken.
        min_nonce: dict[bytes, int] = {}
        for entry in self._entries:
            tx = entry.transaction
            key = tx.sender.value
            min_nonce[key] = min(min_nonce.get(key, tx.nonce), tx.nonce)

        progress = True
        while progress:
            progress = False
            for index, entry in enumerate(self._entries):
                tx = entry.transaction
                key = tx.sender.value
                if tx.gas_limit > gas_budget:
                    continue
                if tx.nonce != min_nonce[key]:
                    continue
                chosen.append(tx)
                gas_budget -= tx.gas_limit
                min_nonce[key] = tx.nonce + 1
                self._hashes.discard(tx.hash)
                self._slots.pop((key, tx.nonce), None)
                del self._entries[index]
                progress = True
                break
        if obs.enabled():
            obs.observe(obs.names.METRIC_MEMPOOL_BATCH_TXS, len(chosen))
            obs.set_gauge(obs.names.METRIC_MEMPOOL_DEPTH,
                          len(self._entries))
        return chosen

    def clear(self) -> None:
        """Drop every pending transaction."""
        self._entries.clear()
        self._hashes.clear()
        self._slots.clear()

    def pending(self) -> list[Transaction]:
        """Snapshot of pending transactions (pool order)."""
        return [entry.transaction for entry in sorted(self._entries)]
