"""Transaction pool.

Orders pending transactions the way miners do: by gas price
(descending), then arrival order; per-sender transactions are kept in
nonce order so account nonces always apply sequentially.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro import obs
from repro.chain.transaction import Transaction, TransactionError
from repro.exceptions import ReproError


class MempoolError(ReproError, ValueError):
    """Raised when a transaction cannot be admitted to the pool."""


@dataclass(order=True)
class _PoolEntry:
    sort_key: tuple[int, int] = field(compare=True)
    transaction: Transaction = field(compare=False)


class Mempool:
    """Pending transactions awaiting inclusion in a block."""

    def __init__(self) -> None:
        self._entries: list[_PoolEntry] = []
        self._hashes: set[bytes] = set()
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, transaction: Transaction) -> None:
        """Admit a transaction (deduplicated by hash, sender checked)."""
        if transaction.hash in self._hashes:
            raise MempoolError("transaction already in pool")
        try:
            transaction.sender  # force signature recovery
        except TransactionError as exc:
            raise MempoolError(
                f"rejecting unsignable transaction: {exc}") from exc
        self._entries.append(_PoolEntry(
            sort_key=(-transaction.gas_price, next(self._counter)),
            transaction=transaction,
        ))
        self._hashes.add(transaction.hash)
        if obs.enabled():
            obs.set_gauge(obs.names.METRIC_MEMPOOL_DEPTH,
                          len(self._entries))

    def pop_batch(self, gas_limit: int) -> list[Transaction]:
        """Take the best transactions fitting under ``gas_limit``.

        Per-sender nonce order is preserved: a later-nonce transaction
        never jumps ahead of an earlier one from the same sender.
        """
        self._entries.sort()
        chosen: list[Transaction] = []
        gas_budget = gas_limit

        # Lowest pending nonce per sender — a transaction is only
        # eligible once every lower-nonce sibling has been taken.
        min_nonce: dict[bytes, int] = {}
        for entry in self._entries:
            tx = entry.transaction
            key = tx.sender.value
            min_nonce[key] = min(min_nonce.get(key, tx.nonce), tx.nonce)

        progress = True
        while progress:
            progress = False
            for index, entry in enumerate(self._entries):
                tx = entry.transaction
                key = tx.sender.value
                if tx.gas_limit > gas_budget:
                    continue
                if tx.nonce != min_nonce[key]:
                    continue
                chosen.append(tx)
                gas_budget -= tx.gas_limit
                min_nonce[key] = tx.nonce + 1
                self._hashes.discard(tx.hash)
                del self._entries[index]
                progress = True
                break
        if obs.enabled():
            obs.observe(obs.names.METRIC_MEMPOOL_BATCH_TXS, len(chosen))
            obs.set_gauge(obs.names.METRIC_MEMPOOL_DEPTH,
                          len(self._entries))
        return chosen

    def clear(self) -> None:
        """Drop every pending transaction."""
        self._entries.clear()
        self._hashes.clear()

    def pending(self) -> list[Transaction]:
        """Snapshot of pending transactions (pool order)."""
        return [entry.transaction for entry in sorted(self._entries)]
