"""Transaction pool.

Orders pending transactions the way miners do: by gas price
(descending), then arrival order; per-sender transactions are kept in
nonce order so account nonces always apply sequentially.  One
``(sender, nonce)`` slot holds at most one transaction —
replace-by-gas-price on admission, mirroring geth's ``PriceBump``
rule — and transactions whose nonce has already been consumed on
chain are evicted at batch-selection time.

Batch selection is a heap over per-sender queue heads: each sender's
lowest pending nonce competes on its gas-price/arrival key, and taking
it promotes the next *consecutive* nonce into the heap.  That is
O(n log n) in pool size — the linear rescan it replaced was O(n²) and
dominated block packing at fleet scale — and provably picks the same
transactions in the same order: at every step both algorithms choose
the best-keyed transaction among those that are their sender's lowest
pending nonce and still fit the remaining gas budget.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.chain.transaction import Transaction, TransactionError
from repro.crypto.keys import Address
from repro.exceptions import ReproError


class MempoolError(ReproError, ValueError):
    """Raised when a transaction cannot be admitted to the pool."""


@dataclass(order=True)
class _PoolEntry:
    sort_key: tuple[int, int] = field(compare=True)
    transaction: Transaction = field(compare=False)


class Mempool:
    """Pending transactions awaiting inclusion in a block."""

    def __init__(self) -> None:
        self._hashes: set[bytes] = set()
        self._slots: dict[tuple[bytes, int], _PoolEntry] = {}
        self._counter = itertools.count()
        #: Optional ``(event: bytes, tx_hash: bytes)`` callback staging
        #: admission/eviction/selection events into a durable audit
        #: journal (``ChainStore.journal_mempool``).  Audit-only: the
        #: engine commits at empty-pool boundaries, so recovery never
        #: replays these events.
        self.journal: Optional[Callable[[bytes, bytes], None]] = None

    def __len__(self) -> int:
        return len(self._slots)

    def _remove(self, entry: _PoolEntry) -> None:
        """Drop one entry from every index."""
        tx = entry.transaction
        self._hashes.discard(tx.hash)
        self._slots.pop((tx.sender.value, tx.nonce), None)

    def add(self, transaction: Transaction) -> None:
        """Admit a transaction (deduplicated by hash, sender checked).

        A transaction occupying an already-pending ``(sender, nonce)``
        slot replaces the incumbent only when it bids a strictly
        higher gas price; an equal-or-lower bid is rejected as an
        underpriced replacement.  Without this rule two same-slot
        transactions could coexist and the loser would linger in the
        pool forever — only one of them can ever mine.
        """
        if transaction.hash in self._hashes:
            raise MempoolError("transaction already in pool")
        try:
            transaction.sender  # force signature recovery
        except TransactionError as exc:
            raise MempoolError(
                f"rejecting unsignable transaction: {exc}") from exc
        slot = (transaction.sender.value, transaction.nonce)
        incumbent = self._slots.get(slot)
        if incumbent is not None:
            if transaction.gas_price <= incumbent.transaction.gas_price:
                raise MempoolError(
                    f"replacement transaction underpriced: nonce "
                    f"{transaction.nonce} is pending at gas price "
                    f"{incumbent.transaction.gas_price}, got "
                    f"{transaction.gas_price}"
                )
            self._remove(incumbent)
        entry = _PoolEntry(
            sort_key=(-transaction.gas_price, next(self._counter)),
            transaction=transaction,
        )
        self._hashes.add(transaction.hash)
        self._slots[slot] = entry
        if self.journal is not None:
            self.journal(b"add", transaction.hash)
        if obs.enabled():
            obs.set_gauge(obs.names.METRIC_MEMPOOL_DEPTH,
                          len(self._slots))

    def add_batch(self, transactions: list[Transaction],
                  verifier=None
                  ) -> list[tuple[Transaction, Optional[str]]]:
        """Admit many transactions, recovering senders up front.

        ``verifier`` is a
        :class:`~repro.chain.admission.BatchSenderRecovery` (or
        anything with its ``recover`` method); when given, every
        signature is recovered — possibly in parallel worker
        processes — before any admission runs, so :meth:`add` finds
        each ``sender`` cache warm.  Admission itself stays strictly
        sequential in input order, preserving replace-by-gas-price
        semantics exactly.

        Returns ``(transaction, error_message_or_None)`` pairs in
        input order — ``None`` means admitted and now in the pool.
        """
        if verifier is not None:
            recovered = verifier.recover(transactions)
        else:
            recovered = [(tx, None) for tx in transactions]
        verdicts: list[tuple[Transaction, Optional[str]]] = []
        for tx, error in recovered:
            if error is not None:
                verdicts.append((tx, error))
                continue
            try:
                self.add(tx)
            except MempoolError as exc:
                verdicts.append((tx, str(exc)))
            else:
                verdicts.append((tx, None))
        return verdicts

    def evict_stale(self,
                    account_nonce: Callable[[Address], int]
                    ) -> list[Transaction]:
        """Drop transactions whose nonce the chain already consumed.

        ``account_nonce`` maps a sender address to its current account
        nonce; any pending transaction with a lower nonce can never
        mine again and is evicted.  Returns the evicted transactions.
        """
        stale = [
            entry for entry in self._slots.values()
            if entry.transaction.nonce
            < account_nonce(entry.transaction.sender)
        ]
        for entry in stale:
            self._remove(entry)
            if self.journal is not None:
                self.journal(b"evict", entry.transaction.hash)
        return [entry.transaction for entry in stale]

    def pop_batch(self, gas_limit: int,
                  account_nonce: Optional[Callable[[Address], int]] = None
                  ) -> list[Transaction]:
        """Take the best transactions fitting under ``gas_limit``.

        Per-sender nonce order is preserved: a later-nonce transaction
        never jumps ahead of an earlier one from the same sender, and
        a nonce gap parks the tail of that sender's queue.  When the
        miner supplies ``account_nonce`` (the chain's current
        account-nonce view), stale-nonce transactions are evicted
        before selection so they can neither block a sender's queue
        nor linger in the pool forever.
        """
        if account_nonce is not None:
            self.evict_stale(account_nonce)
        chosen: list[Transaction] = []
        gas_budget = gas_limit

        # Per-sender queues, highest nonce first so .pop() yields the
        # next-lowest pending nonce.
        queues: dict[bytes, list[_PoolEntry]] = {}
        for (sender, _nonce), entry in self._slots.items():
            queues.setdefault(sender, []).append(entry)
        heads: list[tuple[tuple[int, int], bytes]] = []
        for sender, queue in queues.items():
            queue.sort(key=lambda e: e.transaction.nonce, reverse=True)
            heads.append((queue[-1].sort_key, sender))
        heapq.heapify(heads)

        while heads:
            _, sender = heapq.heappop(heads)
            queue = queues[sender]
            tx = queue[-1].transaction
            if tx.gas_limit > gas_budget:
                # The budget only shrinks, so this head can never fit
                # again — and its later nonces may not overtake it.
                continue
            queue.pop()
            chosen.append(tx)
            gas_budget -= tx.gas_limit
            self._hashes.discard(tx.hash)
            del self._slots[(sender, tx.nonce)]
            if queue and queue[-1].transaction.nonce == tx.nonce + 1:
                heapq.heappush(heads, (queue[-1].sort_key, sender))
        if self.journal is not None:
            for tx in chosen:
                self.journal(b"pop", tx.hash)
        if obs.enabled():
            obs.observe(obs.names.METRIC_MEMPOOL_BATCH_TXS, len(chosen))
            obs.set_gauge(obs.names.METRIC_MEMPOOL_DEPTH,
                          len(self._slots))
        return chosen

    def clear(self) -> None:
        """Drop every pending transaction."""
        if self.journal is not None and self._slots:
            self.journal(b"clear", b"")
        self._hashes.clear()
        self._slots.clear()

    def pending(self) -> list[Transaction]:
        """Snapshot of pending transactions (pool order)."""
        return [entry.transaction
                for entry in sorted(self._slots.values())]
