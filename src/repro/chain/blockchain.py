"""The blockchain: genesis, mining, receipts, chain queries.

A deterministic single-node chain.  Blocks are produced on demand
(``mine_block``), which is how test networks like ganache behave and is
exactly what the paper's protocol needs: transaction ordering, block
timestamps for the T0..T3 deadlines, and per-transaction gas receipts.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.crypto.keys import Address
from repro.chain.admission import BatchSenderRecovery
from repro.chain.block import Block, BlockHeader, transactions_root
from repro.chain.mempool import Mempool
from repro.chain.parallel import BlockApplyStats, ParallelBlockExecutor
from repro.chain.processor import InvalidTransaction, apply_transaction
from repro.chain.receipt import Receipt
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.evm.vm import BlockContext
from repro.exceptions import ReproError

_GENESIS_PARENT = b"\x00" * 32
DEFAULT_BLOCK_GAS_LIMIT = 8_000_000
DEFAULT_BLOCK_INTERVAL = 15  # seconds, mainnet-like


class ChainError(ReproError, ValueError):
    """Raised for chain-level failures (unknown blocks, bad queries)."""


class Blockchain:
    """An append-only chain of blocks over a journaled world state."""

    def __init__(self, coinbase: Optional[Address] = None,
                 genesis_timestamp: int = 1_550_000_000,
                 block_gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT,
                 block_interval: int = DEFAULT_BLOCK_INTERVAL,
                 workers: int = 1,
                 parallel_processes: Optional[bool] = None,
                 evm_jit: Optional[bool] = None) -> None:
        self.state = WorldState()
        self.mempool = Mempool()
        self.coinbase = coinbase or Address.from_int(0xC0FFEE)
        self.block_gas_limit = block_gas_limit
        self.block_interval = block_interval
        #: Speculative execution lanes per block; 1 = classic
        #: sequential apply.  ``parallel_processes`` can force the
        #: in-process lane fallback (tests) or process pools.
        self.workers = max(1, int(workers))
        self._parallel_processes = parallel_processes
        #: Tri-state EVM JIT override threaded into every execution
        #: (None = the module-level default, see ``repro.evm.jit``).
        self.evm_jit = evm_jit
        self._executor: Optional[ParallelBlockExecutor] = None
        self._admission: Optional[BatchSenderRecovery] = None
        #: Aggregate speculation counters over every parallel block.
        self.parallel_stats = BlockApplyStats()
        self._receipts: dict[bytes, Receipt] = {}
        self._dropped: dict[bytes, str] = {}
        self._store = None
        genesis_header = BlockHeader(
            number=0,
            parent_hash=_GENESIS_PARENT,
            state_root=self.state.state_root(),
            timestamp=genesis_timestamp,
            miner=self.coinbase,
            gas_limit=block_gas_limit,
            gas_used=0,
            transactions_root=transactions_root([]),
        )
        self.blocks: list[Block] = [Block(header=genesis_header)]
        self._time_offset = 0

    # -- durable store ------------------------------------------------------

    def attach_store(self, store) -> None:
        """Wire a :class:`~repro.chain.store.ChainStore` through the
        chain: world state persists at block boundaries, every mined
        block/receipt is staged, and the mempool journals admission
        events.  Staged writes become durable when the *caller* (the
        engine) commits the store — the chain itself never commits, so
        one round's blocks, receipts and state land atomically.
        """
        self._store = store
        self.state.attach_store(store)
        self.mempool.journal = store.journal_mempool

    def persist_bootstrap(self) -> None:
        """Stage the full current chain into a freshly attached store."""
        store = self._store
        for block in self.blocks:
            store.stage_block(block)
        for tx_hash, reason in self._dropped.items():
            store.dropped[tx_hash] = reason
        store.time_offset.set(self._time_offset)
        self.state.persist_all()

    def restore_from_store(self) -> None:
        """Reset chain, receipts, clock and state to the store's
        committed contents (crash recovery)."""
        store = self._store
        self.blocks = store.load_blocks()
        if not self.blocks:
            raise ChainError("the store holds no blocks — nothing to "
                             "restore (was the run ever bootstrapped?)")
        self._receipts = store.load_receipts()
        self._dropped = store.load_dropped()
        self._time_offset = store.time_offset.get(0)
        # Every store commit happens with an empty pool (each round
        # mines everything it queued), so recovery starts empty.
        self.mempool.clear()
        # The store rewrites world state wholesale, bypassing the
        # journaled setters the worker replicas sync through — any
        # live pool would silently diverge, so drop it first.
        self.close_workers()
        self.state.restore_from_store()

    # -- time ---------------------------------------------------------------

    @property
    def latest_block(self) -> Block:
        """The most recently mined block (the genesis block at start)."""
        return self.blocks[-1]

    def next_timestamp(self) -> int:
        """Timestamp the next mined block will carry."""
        return (self.latest_block.timestamp + self.block_interval
                + self._time_offset)

    def increase_time(self, seconds: int) -> None:
        """Warp the clock forward (ganache ``evm_increaseTime``)."""
        if seconds < 0:
            raise ChainError("time can only move forward")
        self._time_offset += seconds

    # -- transactions ----------------------------------------------------------

    def send_transaction(self, transaction: Transaction) -> bytes:
        """Queue a signed transaction; returns its hash."""
        self.mempool.add(transaction)
        return transaction.hash

    def send_transactions(self, transactions: list[Transaction]
                          ) -> list[bytes]:
        """Queue many signed transactions, recovering senders in a
        worker pool when the chain runs with ``workers > 1``.

        Returns the hashes of the admitted transactions; rejected
        ones (bad signatures, underpriced replacements) are silently
        dropped, mirroring what a real node's gossip layer does.
        """
        verifier = None
        if self.workers > 1 and len(transactions) > 1:
            if self._admission is None:
                self._admission = BatchSenderRecovery(
                    workers=self.workers,
                    use_processes=self._parallel_processes,
                )
            verifier = self._admission
        verdicts = self.mempool.add_batch(transactions, verifier=verifier)
        return [tx.hash for tx, error in verdicts if error is None]

    def block_context(self, timestamp: Optional[int] = None,
                      number: Optional[int] = None) -> BlockContext:
        """Environment for executing against the (pending) next block."""
        return BlockContext(
            coinbase=self.coinbase,
            timestamp=timestamp if timestamp is not None else self.next_timestamp(),
            number=number if number is not None else self.latest_block.number + 1,
            gas_limit=self.block_gas_limit,
            block_hash_fn=self._block_hash,
        )

    def _block_hash(self, number: int) -> bytes:
        if 0 <= number < len(self.blocks):
            return self.blocks[number].hash
        return b"\x00" * 32

    # -- block execution -------------------------------------------------------

    def _apply_sequential(self, context: BlockContext,
                          transactions: list[Transaction]
                          ) -> list[tuple]:
        """Classic one-after-another apply; the reference semantics."""
        executed: list[tuple] = []
        for tx in transactions:
            try:
                outcome = apply_transaction(self.state, context, tx,
                                            jit=self.evm_jit)
            except InvalidTransaction as exc:
                executed.append((tx, None, str(exc)))
                continue
            executed.append((tx, outcome, None))
        return executed

    def _apply_parallel(self, context: BlockContext,
                        transactions: list[Transaction]) -> list[tuple]:
        """Speculative lanes + ordered commit; bit-identical results."""
        if self._executor is None:
            self._executor = ParallelBlockExecutor(
                workers=self.workers,
                use_processes=self._parallel_processes,
                evm_jit=self.evm_jit,
            )
        with obs.span(obs.names.SPAN_CHAIN_PARALLEL_APPLY,
                      workers=self._executor.workers,
                      txs=len(transactions)) as apply_span:
            result = self._executor.apply_block(
                self.state, context, transactions,
                block_hashes=[block.hash for block in self.blocks])
            stats = result.stats
            apply_span.set_label(
                conflicts=stats.conflicts,
                reexecutions=stats.reexecutions,
            )
        self.parallel_stats.merge(stats)
        if obs.enabled():
            obs.inc(obs.names.METRIC_PARALLEL_LANES, stats.lanes)
            obs.inc(obs.names.METRIC_PARALLEL_COMMITS,
                    stats.speculative_commits)
            obs.inc(obs.names.METRIC_PARALLEL_CONFLICTS, stats.conflicts)
            obs.inc(obs.names.METRIC_PARALLEL_REEXECUTIONS,
                    stats.reexecutions)
            obs.set_gauge(obs.names.METRIC_PARALLEL_CONFLICT_RATE,
                          stats.conflict_rate)
        return result.results

    def mine_block(self, gas_limit: Optional[int] = None) -> Block:
        """Pack pending transactions into a new block and execute them.

        ``gas_limit`` overrides the chain's block gas limit for this
        one block — the batch-mining engine uses it to study packing
        density without reconfiguring the chain.
        """
        block_gas_limit = (gas_limit if gas_limit is not None
                           else self.block_gas_limit)
        timestamp = self.next_timestamp()
        self._time_offset = 0
        number = self.latest_block.number + 1
        context = self.block_context(timestamp=timestamp, number=number)

        with obs.span(obs.names.SPAN_CHAIN_MINE_BLOCK,
                      number=number) as mine_span:
            transactions = self.mempool.pop_batch(
                block_gas_limit, account_nonce=self.state.get_nonce)
            if self.workers > 1 and len(transactions) > 1:
                executed = self._apply_parallel(context, transactions)
            else:
                executed = self._apply_sequential(context, transactions)
            receipts: list[Receipt] = []
            included: list[Transaction] = []
            dropped_now: list[tuple[bytes, str]] = []
            cumulative_gas = 0
            for index, (tx, outcome, reason) in enumerate(executed):
                if outcome is None:
                    # Invalid at execution time (e.g. nonce gap): drop,
                    # record.  The index gap it leaves matches the
                    # sequential executor's receipts exactly.
                    self._dropped[tx.hash] = reason
                    dropped_now.append((tx.hash, reason))
                    continue
                cumulative_gas += outcome.gas_used
                receipt = Receipt(
                    transaction_hash=tx.hash,
                    transaction_index=index,
                    block_number=number,
                    sender=tx.sender,
                    to=tx.to,
                    status=outcome.status,
                    gas_used=outcome.gas_used,
                    cumulative_gas_used=cumulative_gas,
                    contract_address=outcome.contract_address,
                    logs=outcome.logs,
                    error=outcome.error,
                )
                receipts.append(receipt)
                included.append(tx)
                self._receipts[tx.hash] = receipt
            mine_span.set_label(txs=len(included))
            obs.add_gas(cumulative_gas)
        if obs.enabled():
            obs.inc(obs.names.METRIC_CHAIN_BLOCKS)
            obs.inc(obs.names.METRIC_CHAIN_TXS, len(included))
            obs.observe(obs.names.METRIC_CHAIN_BLOCK_TXS, len(included))
            obs.observe(obs.names.METRIC_CHAIN_BLOCK_GAS, cumulative_gas)

        header = BlockHeader(
            number=number,
            parent_hash=self.latest_block.hash,
            state_root=self.state.state_root(),
            timestamp=timestamp,
            miner=self.coinbase,
            gas_limit=block_gas_limit,
            gas_used=cumulative_gas,
            transactions_root=transactions_root(included),
        )
        block = Block(
            header=header,
            transactions=tuple(included),
            receipts=tuple(receipts),
        )
        self.blocks.append(block)
        if self._store is not None:
            # Stage (not commit): the header's state_root was just
            # computed, so every dirty account's digest is fresh and
            # persists alongside its body.
            self._store.stage_block(block, dropped=dropped_now)
            self._store.time_offset.set(self._time_offset)
            self.state.persist_dirty()
        return block

    # -- worker lifecycle --------------------------------------------------------

    def close_workers(self) -> None:
        """Shut down the persistent execution/admission worker pools.

        Idempotent and safe on a ``workers=1`` chain.  Pools are
        re-created lazily on the next parallel block (or batch
        admission), so this is a checkpoint, not a mode change —
        benches and tests call it to release the forked children
        deterministically instead of leaning on daemon-process
        cleanup at interpreter exit.
        """
        if self._executor is not None:
            self._executor.close()
        if self._admission is not None:
            self._admission.close()
            self._admission = None

    # -- queries ----------------------------------------------------------------

    def get_receipt(self, tx_hash: bytes) -> Receipt:
        """Receipt of a mined transaction (raises if unknown/dropped)."""
        receipt = self._receipts.get(tx_hash)
        if receipt is None:
            reason = self._dropped.get(tx_hash)
            if reason is not None:
                raise ChainError(f"transaction was dropped: {reason}")
            raise ChainError("unknown transaction hash")
        return receipt

    def get_block(self, number: int) -> Block:
        """The block at ``number``, or None when out of range."""
        if not 0 <= number < len(self.blocks):
            raise ChainError(f"no block number {number}")
        return self.blocks[number]

    def total_gas_used(self) -> int:
        """Sum of gas used by every mined transaction (miner workload)."""
        return sum(block.gas_used for block in self.blocks)
