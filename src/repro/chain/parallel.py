"""Optimistic parallel block execution (Block-STM-style OCC).

The sequential miner applies a block's transactions one after another.
Fleet workloads (PR 1's 100-session engine runs) are dominated by that
single-threaded loop even though the sessions touch disjoint accounts
by construction.  This module executes every transaction of a block
*speculatively* against a per-transaction
:class:`~repro.chain.state.RecordingView` of the pre-block state, then
commits the buffered overlays **in block order**, validating each
lane's read set against the union of the write sets committed before
it:

* read set ∩ earlier write sets = ∅  → the speculative result is
  exactly what sequential execution would have produced; commit the
  overlay as-is;
* any intersection (or a forced flag: the lane read the coinbase
  balance, or crashed) → re-execute the transaction sequentially on
  the committed state, through a fresh recording view so its write set
  feeds the validation of later lanes.

Commit order equals block order, so receipts, per-session gas ledgers
and state roots are bit-identical to the sequential executor — the
invariant ``tools/bench_runner.py`` gates on.

Speculation runs on a **persistent** forked worker pool when the
platform allows (see :mod:`repro.chain.workers`): the workers fork
once, inheriting the pre-block state copy-on-write as their replica,
and every subsequent block broadcasts an incremental
:class:`~repro.chain.state.StateDiff` (dirty accounts/slots plus new
block hashes) before its lanes are dispatched — the fork-per-block
cost that made PR 5's executor lose to sequential is gone.  Only the
small :class:`LaneResult` records cross back.  When processes are
unavailable the executor falls back to in-process lanes — same
semantics, no concurrency.  Telemetry stays exact in both modes: lanes
carry their own :class:`~repro.obs.gasprof.TxGasCollector` and the
committer settles it only for the execution that actually went into
the block (the per-block broadcast carries the parent's telemetry
flag, so a pool forked before ``telemetry()`` was activated still
collects).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.chain.processor import InvalidTransaction, run_transaction
from repro.chain.state import Overlay, RecordingView, WorldState
from repro.chain.transaction import Transaction
from repro.chain.workers import PersistentWorkerPool
from repro.evm.vm import BlockContext


@dataclass
class LaneResult:
    """Everything one speculative lane ships back to the committer."""

    #: Position of the transaction in the block being built.
    index: int
    #: The speculative outcome (None when the lane raised).
    outcome: Optional[object]
    #: Keys the lane served from the pre-block state.
    reads: frozenset
    #: Keys the lane buffered writes for.
    writes: frozenset
    #: The buffered writes themselves.
    overlay: Optional[Overlay]
    #: Lane must be re-executed regardless of its read set (coinbase
    #: balance access, or an unexpected crash during speculation).
    forced: bool = False
    #: Set when validation failed against the pre-block state; the
    #: commit loop decides whether that verdict survives.
    invalid_reason: Optional[str] = None
    #: Per-transaction opcode-gas collector (telemetry-on runs only).
    collector: Optional[object] = None
    #: Keyword arguments for ``obs.end_transaction``.
    profile: Optional[dict] = None


@dataclass
class BlockApplyStats:
    """Counters describing one (or an aggregate of) parallel applies."""

    lanes: int = 0
    speculative_commits: int = 0
    conflicts: int = 0
    reexecutions: int = 0
    blocks: int = 0

    @property
    def conflict_rate(self) -> float:
        """Fraction of lanes whose speculative result was discarded."""
        if not self.lanes:
            return 0.0
        return self.reexecutions / self.lanes

    def merge(self, other: "BlockApplyStats") -> None:
        """Fold another block's counters into this aggregate."""
        self.lanes += other.lanes
        self.speculative_commits += other.speculative_commits
        self.conflicts += other.conflicts
        self.reexecutions += other.reexecutions
        self.blocks += other.blocks


@dataclass
class BlockApplyResult:
    """Ordered per-transaction outcomes of one parallel block apply."""

    #: ``(transaction, outcome_or_None, drop_reason_or_None)`` in block
    #: order — exactly what the sequential loop would have produced.
    results: list = field(default_factory=list)
    stats: BlockApplyStats = field(default_factory=BlockApplyStats)


def _execute_lane(base: WorldState, context: BlockContext,
                  tx: Transaction, index: int,
                  collect: Optional[bool] = None,
                  jit: Optional[bool] = None) -> LaneResult:
    """Run one transaction speculatively against a recording view.

    ``collect`` forces the telemetry decision (persistent workers get
    the parent's flag over the broadcast channel — their own global
    telemetry state is frozen at fork time and may be stale);
    in-process lanes default to the live ``obs.enabled()``.
    """
    view = RecordingView(base, coinbase=context.coinbase)
    collector = None
    if obs.enabled() if collect is None else collect:
        from repro.obs.gasprof import TxGasCollector

        collector = TxGasCollector()
    try:
        outcome, profile = run_transaction(view, context, tx,
                                           collector=collector, jit=jit)
    except InvalidTransaction as exc:
        # Possibly a phantom: the lane validated against the pre-block
        # state, but an earlier transaction may fix the nonce/balance.
        # The commit loop re-executes when the read set says so.
        return LaneResult(
            index=index, outcome=None, reads=frozenset(view.reads),
            writes=frozenset(), overlay=None,
            forced=view.coinbase_touched, invalid_reason=str(exc),
        )
    except Exception:  # never trust a speculative crash
        return LaneResult(
            index=index, outcome=None, reads=frozenset(view.reads),
            writes=frozenset(), overlay=None, forced=True,
        )
    return LaneResult(
        index=index, outcome=outcome, reads=frozenset(view.reads),
        writes=view.writes, overlay=view.overlay(),
        forced=view.coinbase_touched, collector=collector,
        profile=profile,
    )


# Fork-inherited replica environment.  The parent sets ``_W_STATE``
# immediately before forking the persistent pool (with diff tracking
# armed on that exact state), so every worker inherits — copy-on-write,
# nothing pickled — a replica that is bit-identical to the parent's
# state at fork time.  Per-block ``_pool_broadcast`` messages then keep
# the replica current.
_W_STATE: Optional[WorldState] = None
_W_HASHES: list = []
_W_CONTEXT: Optional[BlockContext] = None
_W_COLLECT = False
_W_JIT: Optional[bool] = None


def _w_block_hash(number: int) -> bytes:
    """Worker-side BLOCKHASH source, mirroring
    ``Blockchain._block_hash`` over the broadcast hash list (the
    chain's own ``block_hash_fn`` is a bound closure that cannot cross
    the fork boundary for post-fork blocks)."""
    if 0 <= number < len(_W_HASHES):
        return _W_HASHES[number]
    return b"\x00" * 32


def _pool_broadcast(payload: tuple) -> None:
    """Apply one block's prologue to this worker's replica."""
    global _W_CONTEXT, _W_COLLECT, _W_JIT
    diff, fields, new_hashes, collect, jit = payload
    if diff is not None:
        diff.apply_to(_W_STATE)
    _W_HASHES.extend(new_hashes)
    _W_CONTEXT = BlockContext(block_hash_fn=_w_block_hash, **fields)
    _W_COLLECT = collect
    _W_JIT = jit


def _pool_lane(payload: tuple) -> LaneResult:
    """Worker-side task entry point: execute one lane on the replica."""
    index, tx = payload
    return _execute_lane(_W_STATE, _W_CONTEXT, tx, index,
                         collect=_W_COLLECT, jit=_W_JIT)


class ParallelBlockExecutor:
    """Applies a block's transactions with speculative lanes + ordered
    commit, falling back to in-process speculation when worker
    processes are unavailable."""

    def __init__(self, workers: int = 1,
                 use_processes: Optional[bool] = None,
                 evm_jit: Optional[bool] = None) -> None:
        self.workers = max(1, int(workers))
        if use_processes is None:
            use_processes = self.workers > 1 and hasattr(os, "fork")
        self.use_processes = bool(use_processes)
        #: Tri-state EVM JIT override threaded into every lane and
        #: re-execution (None = the module-level default).
        self.evm_jit = evm_jit
        self._pool: Optional[PersistentWorkerPool] = None
        self._tracked_state: Optional[WorldState] = None
        self._hashes_shipped = 0

    # -- speculation -----------------------------------------------------

    def _speculate(self, state: WorldState, context: BlockContext,
                   transactions: list[Transaction],
                   block_hashes: Optional[list] = None
                   ) -> list[LaneResult]:
        """Execute every transaction against the frozen pre-block
        state, on the persistent worker pool when possible."""
        if self.use_processes:
            try:
                return self._speculate_processes(state, context,
                                                 transactions,
                                                 block_hashes)
            except Exception:
                # Pool creation, IPC or a worker failed (sandboxes,
                # pickling, resource limits, poisoned replica): drop
                # the pool and degrade to in-process lanes for this
                # and every later block.
                self.close()
                self.use_processes = False
        return [
            _execute_lane(state, context, tx, index, jit=self.evm_jit)
            for index, tx in enumerate(transactions)
        ]

    def _speculate_processes(self, state: WorldState,
                             context: BlockContext,
                             transactions: list[Transaction],
                             block_hashes: Optional[list]
                             ) -> list[LaneResult]:
        """Fan lanes out over the persistent forked worker pool."""
        global _W_STATE, _W_HASHES
        if self._pool is None or state is not self._tracked_state:
            self.close()
            # Arm diff tracking *before* forking: every parent-side
            # mutation from here on is captured, so the forked replica
            # plus the drained diffs always equals the parent's
            # pre-block state.
            state.begin_diff_tracking()
            self._tracked_state = state
            self._hashes_shipped = 0
            _W_STATE, _W_HASHES = state, []
            try:
                self._pool = PersistentWorkerPool(
                    self.workers, _pool_lane, _pool_broadcast)
            finally:
                # The children hold their copy-on-write references;
                # the parent's globals are only a fork vehicle.
                _W_STATE, _W_HASHES = None, []
        diff = state.drain_state_diff()
        new_hashes = ([] if block_hashes is None
                      else list(block_hashes[self._hashes_shipped:]))
        fields = {
            "coinbase": context.coinbase,
            "timestamp": context.timestamp,
            "number": context.number,
            "difficulty": context.difficulty,
            "gas_limit": context.gas_limit,
        }
        self._pool.broadcast(
            (diff, fields, new_hashes, obs.enabled(), self.evm_jit))
        self._hashes_shipped += len(new_hashes)
        return self._pool.run_tasks(
            [(index, tx) for index, tx in enumerate(transactions)])

    def close(self) -> None:
        """Release the persistent pool and stop diff tracking on the
        state it replicated.  Idempotent; the executor lazily creates
        a fresh pool on the next parallel block."""
        if self._pool is not None:
            try:
                self._pool.close()
            except Exception:
                pass
            self._pool = None
        if self._tracked_state is not None:
            self._tracked_state.end_diff_tracking()
            self._tracked_state = None
        self._hashes_shipped = 0

    # -- ordered commit --------------------------------------------------

    def apply_block(self, state: WorldState, context: BlockContext,
                    transactions: list[Transaction],
                    block_hashes: Optional[list] = None
                    ) -> BlockApplyResult:
        """Speculate over ``transactions`` and commit in block order.

        Mutates ``state`` exactly as the sequential executor would;
        the returned results list is ordered and complete (dropped
        transactions carry their reason instead of an outcome).
        ``block_hashes`` is the chain's current block-hash list — the
        process path ships its unseen tail to the worker replicas so
        BLOCKHASH resolves identically there.
        """
        lanes = self._speculate(state, context, transactions,
                                block_hashes)
        stats = BlockApplyStats(lanes=len(lanes), blocks=1)
        result = BlockApplyResult(stats=stats)
        committed_writes: set[tuple] = set()

        for lane in lanes:
            tx = transactions[lane.index]
            dirty_reads = lane.reads & committed_writes
            if not lane.forced and not dirty_reads:
                if lane.invalid_reason is not None:
                    # Validated against state no earlier transaction
                    # touched: genuinely invalid, same as sequential.
                    result.results.append(
                        (tx, None, lane.invalid_reason))
                    continue
                lane.overlay.apply_to(state, context.coinbase.value)
                state.clear_journal()
                committed_writes |= lane.writes
                if lane.collector is not None:
                    obs.end_transaction(lane.collector, **lane.profile)
                result.results.append((tx, lane.outcome, None))
                stats.speculative_commits += 1
                continue

            if dirty_reads:
                stats.conflicts += 1
            stats.reexecutions += 1
            view = RecordingView(state, coinbase=context.coinbase)
            collector = obs.begin_transaction()
            try:
                outcome, profile = run_transaction(view, context, tx,
                                                   collector=collector,
                                                   jit=self.evm_jit)
            except InvalidTransaction as exc:
                result.results.append((tx, None, str(exc)))
                continue
            view.commit_to(state)
            state.clear_journal()
            committed_writes |= view.writes
            if collector is not None:
                obs.end_transaction(collector, **profile)
            result.results.append((tx, outcome, None))

        return result
