"""Optimistic parallel block execution (Block-STM-style OCC).

The sequential miner applies a block's transactions one after another.
Fleet workloads (PR 1's 100-session engine runs) are dominated by that
single-threaded loop even though the sessions touch disjoint accounts
by construction.  This module executes every transaction of a block
*speculatively* against a per-transaction
:class:`~repro.chain.state.RecordingView` of the pre-block state, then
commits the buffered overlays **in block order**, validating each
lane's read set against the union of the write sets committed before
it:

* read set ∩ earlier write sets = ∅  → the speculative result is
  exactly what sequential execution would have produced; commit the
  overlay as-is;
* any intersection (or a forced flag: the lane read the coinbase
  balance, or crashed) → re-execute the transaction sequentially on
  the committed state, through a fresh recording view so its write set
  feeds the validation of later lanes.

Commit order equals block order, so receipts, per-session gas ledgers
and state roots are bit-identical to the sequential executor — the
invariant ``tools/bench_runner.py`` gates on.

Speculation runs in forked worker processes when the platform allows
(each child inherits the pre-block state copy-on-write; only the small
:class:`LaneResult` records cross back), and falls back to in-process
lanes — same semantics, no concurrency — when processes are
unavailable.  Telemetry stays exact in both modes: lanes carry their
own :class:`~repro.obs.gasprof.TxGasCollector` and the committer
settles it only for the execution that actually went into the block.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.chain.processor import InvalidTransaction, run_transaction
from repro.chain.state import Overlay, RecordingView, WorldState
from repro.chain.transaction import Transaction
from repro.evm.vm import BlockContext


@dataclass
class LaneResult:
    """Everything one speculative lane ships back to the committer."""

    #: Position of the transaction in the block being built.
    index: int
    #: The speculative outcome (None when the lane raised).
    outcome: Optional[object]
    #: Keys the lane served from the pre-block state.
    reads: frozenset
    #: Keys the lane buffered writes for.
    writes: frozenset
    #: The buffered writes themselves.
    overlay: Optional[Overlay]
    #: Lane must be re-executed regardless of its read set (coinbase
    #: balance access, or an unexpected crash during speculation).
    forced: bool = False
    #: Set when validation failed against the pre-block state; the
    #: commit loop decides whether that verdict survives.
    invalid_reason: Optional[str] = None
    #: Per-transaction opcode-gas collector (telemetry-on runs only).
    collector: Optional[object] = None
    #: Keyword arguments for ``obs.end_transaction``.
    profile: Optional[dict] = None


@dataclass
class BlockApplyStats:
    """Counters describing one (or an aggregate of) parallel applies."""

    lanes: int = 0
    speculative_commits: int = 0
    conflicts: int = 0
    reexecutions: int = 0
    blocks: int = 0

    @property
    def conflict_rate(self) -> float:
        """Fraction of lanes whose speculative result was discarded."""
        if not self.lanes:
            return 0.0
        return self.reexecutions / self.lanes

    def merge(self, other: "BlockApplyStats") -> None:
        """Fold another block's counters into this aggregate."""
        self.lanes += other.lanes
        self.speculative_commits += other.speculative_commits
        self.conflicts += other.conflicts
        self.reexecutions += other.reexecutions
        self.blocks += other.blocks


@dataclass
class BlockApplyResult:
    """Ordered per-transaction outcomes of one parallel block apply."""

    #: ``(transaction, outcome_or_None, drop_reason_or_None)`` in block
    #: order — exactly what the sequential loop would have produced.
    results: list = field(default_factory=list)
    stats: BlockApplyStats = field(default_factory=BlockApplyStats)


def _execute_lane(base: WorldState, context: BlockContext,
                  tx: Transaction, index: int) -> LaneResult:
    """Run one transaction speculatively against a recording view."""
    view = RecordingView(base, coinbase=context.coinbase)
    collector = None
    if obs.enabled():
        from repro.obs.gasprof import TxGasCollector

        collector = TxGasCollector()
    try:
        outcome, profile = run_transaction(view, context, tx,
                                           collector=collector)
    except InvalidTransaction as exc:
        # Possibly a phantom: the lane validated against the pre-block
        # state, but an earlier transaction may fix the nonce/balance.
        # The commit loop re-executes when the read set says so.
        return LaneResult(
            index=index, outcome=None, reads=frozenset(view.reads),
            writes=frozenset(), overlay=None,
            forced=view.coinbase_touched, invalid_reason=str(exc),
        )
    except Exception:  # never trust a speculative crash
        return LaneResult(
            index=index, outcome=None, reads=frozenset(view.reads),
            writes=frozenset(), overlay=None, forced=True,
        )
    return LaneResult(
        index=index, outcome=outcome, reads=frozenset(view.reads),
        writes=view.writes, overlay=view.overlay(),
        forced=view.coinbase_touched, collector=collector,
        profile=profile,
    )


# Fork-inherited lane environment.  The parent sets these immediately
# before creating the per-block worker pool; children receive them via
# the fork's copy-on-write address space, so neither the world state
# nor the block context is ever pickled.
_LANE_STATE: Optional[WorldState] = None
_LANE_CONTEXT: Optional[BlockContext] = None


def _lane_task(args: tuple) -> LaneResult:
    """Worker-side entry point: execute one lane from fork globals."""
    index, tx = args
    return _execute_lane(_LANE_STATE, _LANE_CONTEXT, tx, index)


class ParallelBlockExecutor:
    """Applies a block's transactions with speculative lanes + ordered
    commit, falling back to in-process speculation when worker
    processes are unavailable."""

    def __init__(self, workers: int = 1,
                 use_processes: Optional[bool] = None) -> None:
        self.workers = max(1, int(workers))
        if use_processes is None:
            use_processes = self.workers > 1 and hasattr(os, "fork")
        self.use_processes = bool(use_processes)

    # -- speculation -----------------------------------------------------

    def _speculate(self, state: WorldState, context: BlockContext,
                   transactions: list[Transaction]) -> list[LaneResult]:
        """Execute every transaction against the frozen pre-block
        state, in worker processes when possible."""
        if self.use_processes:
            try:
                return self._speculate_processes(state, context,
                                                 transactions)
            except Exception:
                # Pool creation or IPC failed (sandboxes, pickling,
                # resource limits): degrade to in-process lanes for
                # this and every later block.
                self.use_processes = False
        return [
            _execute_lane(state, context, tx, index)
            for index, tx in enumerate(transactions)
        ]

    def _speculate_processes(self, state: WorldState,
                             context: BlockContext,
                             transactions: list[Transaction]
                             ) -> list[LaneResult]:
        """Fan lanes out over a per-block forked worker pool."""
        global _LANE_STATE, _LANE_CONTEXT
        mp_context = multiprocessing.get_context("fork")
        _LANE_STATE, _LANE_CONTEXT = state, context
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(transactions)),
                mp_context=mp_context,
            ) as pool:
                return list(pool.map(
                    _lane_task,
                    [(i, tx) for i, tx in enumerate(transactions)],
                ))
        finally:
            _LANE_STATE = _LANE_CONTEXT = None

    # -- ordered commit --------------------------------------------------

    def apply_block(self, state: WorldState, context: BlockContext,
                    transactions: list[Transaction]) -> BlockApplyResult:
        """Speculate over ``transactions`` and commit in block order.

        Mutates ``state`` exactly as the sequential executor would;
        the returned results list is ordered and complete (dropped
        transactions carry their reason instead of an outcome).
        """
        lanes = self._speculate(state, context, transactions)
        stats = BlockApplyStats(lanes=len(lanes), blocks=1)
        result = BlockApplyResult(stats=stats)
        committed_writes: set[tuple] = set()

        for lane in lanes:
            tx = transactions[lane.index]
            dirty_reads = lane.reads & committed_writes
            if not lane.forced and not dirty_reads:
                if lane.invalid_reason is not None:
                    # Validated against state no earlier transaction
                    # touched: genuinely invalid, same as sequential.
                    result.results.append(
                        (tx, None, lane.invalid_reason))
                    continue
                lane.overlay.apply_to(state, context.coinbase.value)
                state.clear_journal()
                committed_writes |= lane.writes
                if lane.collector is not None:
                    obs.end_transaction(lane.collector, **lane.profile)
                result.results.append((tx, lane.outcome, None))
                stats.speculative_commits += 1
                continue

            if dirty_reads:
                stats.conflicts += 1
            stats.reexecutions += 1
            view = RecordingView(state, coinbase=context.coinbase)
            collector = obs.begin_transaction()
            try:
                outcome, profile = run_transaction(view, context, tx,
                                                   collector=collector)
            except InvalidTransaction as exc:
                result.results.append((tx, None, str(exc)))
                continue
            view.commit_to(state)
            state.clear_journal()
            committed_writes |= view.writes
            if collector is not None:
                obs.end_transaction(collector, **profile)
            result.results.append((tx, outcome, None))

        return result
