"""The telemetry contract: every span and metric name, in one place.

``docs/observability.md`` documents each of these names; the docs CI
job (``tools/check_docs.py``) fails when a name listed here is missing
from that document, so the contract cannot silently drift.  Treat the
values as API: renaming one is a breaking change for every dashboard,
JSONL consumer, and benchmark that filters on it.

Instrumentation sites must import the constants rather than repeating
string literals — a typo then becomes an ``ImportError`` instead of a
silently unexported event.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Span names
# ---------------------------------------------------------------------------

#: Root span emitted by ``repro trace`` around one whole scenario.
SPAN_SCENARIO = "scenario.run"

#: Stage 1 — classify, split, pad and compile both halves.
SPAN_STAGE_SPLIT_GENERATE = "stage.split_generate"
#: Stage 2a — deploy the on-chain half (sync and deferred variants).
SPAN_STAGE_DEPLOY = "stage.deploy"
#: Stage 2b — the Whisper signature exchange.
SPAN_STAGE_SIGN = "stage.sign"
#: §IV security-deposit escrow (optional, between sign and submit).
SPAN_STAGE_DEPOSITS = "stage.deposits"
#: Stage 3a — the representative submits the (claimed) result.
SPAN_STAGE_SUBMIT = "stage.submit"
#: Stage 3b — honest participants police the submitted result.
SPAN_STAGE_CHALLENGE = "stage.challenge"
#: Stage 3c — the challenge window closes and the proposal is applied.
SPAN_STAGE_FINALIZE = "stage.finalize"
#: Stage 4 — reveal the signed copy and force the true result.
SPAN_STAGE_DISPUTE = "stage.dispute"

#: One private local execution of the off-chain contract.
SPAN_OFFCHAIN_EXECUTE = "offchain.execute"

#: One adversary scenario (fault injection + invariant check).
SPAN_ADVERSARY_SCENARIO = "adversary.scenario"

#: One whole :meth:`SessionEngine.run` fleet drive.
SPAN_ENGINE_RUN = "engine.run"
#: One queue-mine-resume round over the runnable sessions.
SPAN_ENGINE_MINE_ROUND = "engine.mine_round"
#: One driver-generator resumption (labelled with the session id).
SPAN_ENGINE_SESSION_STEP = "engine.session_step"

#: One netted batch commitment (aggregator deploy + ``commitBatch``).
SPAN_SETTLEMENT_COMMIT = "settlement.commit"
#: One leaf opening on the aggregator (dispute-via-opening entry).
SPAN_SETTLEMENT_OPEN = "settlement.open"
#: One batch finalization after its challenge window closed.
SPAN_SETTLEMENT_FINALIZE = "settlement.finalize"

#: One durable WAL transaction commit (storage layer).
SPAN_STORAGE_COMMIT = "storage.commit"
#: One snapshot compaction (WAL folded into ``snapshot.bin``).
SPAN_STORAGE_COMPACT = "storage.compact"
#: One engine recovery pass over a reopened ``--store`` directory.
SPAN_STORAGE_RECOVER = "storage.recover"

#: One synchronous wire request (sign, send, retry loop, response).
SPAN_NET_REQUEST = "net.client.request"
#: One command handled by a :class:`ChannelServer` (verify + execute).
SPAN_NET_NODE_SERVE = "net.node.serve"

#: One state-changing contract transaction (web3-style ``transact``).
SPAN_CHAIN_TX = "chain.tx"
#: One contract deployment through the simulator facade.
SPAN_CHAIN_DEPLOY = "chain.deploy"
#: One read-only ``eth_call`` against a state copy.
SPAN_CHAIN_CALL = "chain.call"
#: One mined block (covers executing every packed transaction).
SPAN_CHAIN_MINE_BLOCK = "chain.mine_block"
#: One parallel block apply (speculation + ordered commit), emitted
#: inside :data:`SPAN_CHAIN_MINE_BLOCK` when ``workers > 1``.
SPAN_CHAIN_PARALLEL_APPLY = "chain.parallel.apply"

ALL_SPANS: tuple[str, ...] = (
    SPAN_SCENARIO,
    SPAN_STAGE_SPLIT_GENERATE,
    SPAN_STAGE_DEPLOY,
    SPAN_STAGE_SIGN,
    SPAN_STAGE_DEPOSITS,
    SPAN_STAGE_SUBMIT,
    SPAN_STAGE_CHALLENGE,
    SPAN_STAGE_FINALIZE,
    SPAN_STAGE_DISPUTE,
    SPAN_OFFCHAIN_EXECUTE,
    SPAN_ADVERSARY_SCENARIO,
    SPAN_ENGINE_RUN,
    SPAN_ENGINE_MINE_ROUND,
    SPAN_ENGINE_SESSION_STEP,
    SPAN_SETTLEMENT_COMMIT,
    SPAN_SETTLEMENT_OPEN,
    SPAN_SETTLEMENT_FINALIZE,
    SPAN_STORAGE_COMMIT,
    SPAN_STORAGE_COMPACT,
    SPAN_STORAGE_RECOVER,
    SPAN_NET_REQUEST,
    SPAN_NET_NODE_SERVE,
    SPAN_CHAIN_TX,
    SPAN_CHAIN_DEPLOY,
    SPAN_CHAIN_CALL,
    SPAN_CHAIN_MINE_BLOCK,
    SPAN_CHAIN_PARALLEL_APPLY,
)

#: The four protocol stages every scenario trace must cover (the
#: acceptance gate of the observability layer).
PROTOCOL_STAGE_SPANS: tuple[str, ...] = (
    SPAN_STAGE_SPLIT_GENERATE,
    SPAN_STAGE_DEPLOY,
    SPAN_STAGE_SIGN,
    SPAN_STAGE_SUBMIT,
    SPAN_STAGE_CHALLENGE,
    SPAN_STAGE_FINALIZE,
    SPAN_STAGE_DISPUTE,
)

# ---------------------------------------------------------------------------
# Metric names
# ---------------------------------------------------------------------------

#: counter, label ``op`` — gas per opcode over every *mined* transaction,
#: including the pseudo-ops ``INTRINSIC``, ``REFUND`` and
#: ``UNATTRIBUTED``; the sum over all labels equals the sum of
#: ``receipt.gas_used`` (and hence the ``GasLedger`` total when every
#: mined transaction is ledger-recorded).
METRIC_EVM_GAS_BY_OPCODE = "evm.gas.by_opcode"
#: counter, label ``category`` — same gas, folded into the coarse
#: tracer categories (storage/call/create/...).
METRIC_EVM_GAS_BY_CATEGORY = "evm.gas.by_category"
#: counter, label ``op`` — executed-instruction counts per opcode.
METRIC_EVM_OPS = "evm.ops"
#: counter — total ``receipt.gas_used`` over profiled transactions.
METRIC_EVM_GAS_TOTAL = "evm.gas.total"
#: counter, label ``op`` — interpreter wall-clock seconds per opcode
#: over mined transactions (outer frame; CALL/CREATE steps carry their
#: children's time, mirroring the gas attribution).
METRIC_EVM_TIME_BY_OPCODE = "evm.time.by_opcode"
#: counter, label ``category`` — the same wall-clock seconds folded
#: into the coarse tracer categories.
METRIC_EVM_TIME_BY_CATEGORY = "evm.time.by_category"

#: gauge, label ``cache`` — cumulative hits of the EVM-side memo
#: caches (``analysis`` = the content-keyed ``CodeAnalysis`` LRU,
#: ``ecrecover`` = the signature-recovery LRU, ``keccak`` = the
#: small-input keccak256 memo).  Snapshot-style: refreshed by
#: ``obs.publish_cache_stats`` (telemetry close does this
#: automatically), so the exported value is a point-in-time reading
#: of each process-wide cache, not a delta.
METRIC_EVM_CACHE_HITS = "evm.cache.hits"
#: gauge, label ``cache`` — cumulative misses of the same caches.
METRIC_EVM_CACHE_MISSES = "evm.cache.misses"
#: gauge, label ``cache`` — current entry count of the same caches.
METRIC_EVM_CACHE_SIZE = "evm.cache.size"
#: gauge — bytecodes the JIT transpiler compiled to Python programs.
METRIC_EVM_JIT_PROGRAMS = "evm.cache.jit.programs"
#: gauge — basic blocks compiled across all JIT programs.
METRIC_EVM_JIT_BLOCKS = "evm.cache.jit.blocks"
#: gauge — bytecodes the transpiler gave up on (interpreter fallback).
METRIC_EVM_JIT_FAILURES = "evm.cache.jit.failures"
#: gauge, label ``mode`` — untraced EVM frame executions by how they
#: ran: ``compiled`` (JIT program), ``interpreted`` (warm-up or
#: disabled), ``bailout`` (a compiled run that fell back mid-frame).
METRIC_EVM_JIT_RUNS = "evm.cache.jit.runs"

#: counter — mined transactions.
METRIC_CHAIN_TXS = "chain.txs"
#: counter — mined blocks.
METRIC_CHAIN_BLOCKS = "chain.blocks"
#: histogram — transactions packed per mined block.
METRIC_CHAIN_BLOCK_TXS = "chain.block.txs"
#: histogram — gas used per mined block.
METRIC_CHAIN_BLOCK_GAS = "chain.block.gas"
#: counter, label ``fn`` — receipt gas attributed to named contract
#: functions (ABI name on the sync path, ledger label on the engine
#: path, ``(deploy)`` for contract creation).
METRIC_CHAIN_FN_GAS = "chain.fn.gas"
#: gauge — mempool depth after the last add/pop.
METRIC_MEMPOOL_DEPTH = "mempool.depth"
#: histogram — transactions taken per ``pop_batch`` call.
METRIC_MEMPOOL_BATCH_TXS = "mempool.batch.txs"

#: counter — speculative execution lanes launched by the parallel
#: block executor (one per transaction in a parallel-applied block).
METRIC_PARALLEL_LANES = "chain.parallel.lanes"
#: counter — lanes whose speculative result committed as-is.
METRIC_PARALLEL_COMMITS = "chain.parallel.speculative_commits"
#: counter — lanes whose read set intersected an earlier transaction's
#: write set at commit time.
METRIC_PARALLEL_CONFLICTS = "chain.parallel.conflicts"
#: counter — lanes re-executed sequentially on committed state
#: (conflicts plus forced re-runs such as coinbase-balance reads).
METRIC_PARALLEL_REEXECUTIONS = "chain.parallel.reexecutions"
#: gauge — re-execution fraction of the last parallel block apply.
METRIC_PARALLEL_CONFLICT_RATE = "chain.parallel.conflict_rate"
#: counter — sender addresses recovered by the batch admission pool
#: (parallel ECDSA recovery at ``send_transactions`` time).
METRIC_PARALLEL_ADMISSIONS = "chain.parallel.admission_recoveries"

#: histogram — signatures per batched ``recover_address_batch`` chunk
#: submitted to the admission pool (or run inline); how well the
#: Montgomery batch-inversion amortisation is being fed.
METRIC_CRYPTO_BATCH_SIZE = "crypto.recover.batch_size"
#: gauge — cumulative GLV endomorphism scalar decompositions performed
#: by the secp256k1 kernels in this process (one per variable-base
#: scalar multiplication on the fast path).
METRIC_CRYPTO_GLV_SPLITS = "crypto.glv.splits"

#: counter, label ``stage`` — every ``GasLedger`` record, keyed by the
#: protocol stage it was recorded under.  Always equals
#: ``GasLedger.total()`` summed over the ledgers that recorded while
#: telemetry was active.
METRIC_PROTOCOL_STAGE_GAS = "protocol.stage.gas"
#: counter — gas-equivalents burned privately off-chain (Fig. 1's
#: saved quantity); never part of any on-chain total.
METRIC_OFFCHAIN_GAS = "offchain.gas_equivalent"

#: counter — disputes rejected because ``block.timestamp`` had reached
#: ``challengeDeadline`` (the challenge window was already closed).
METRIC_CHALLENGE_LATE_DISPUTES = "protocol.challenge.late_disputes"
#: histogram — seconds of challenge window remaining when a dispute
#: was admitted (margin between the dispute block's timestamp and the
#: deadline).
METRIC_CHALLENGE_DEADLINE_MARGIN = \
    "protocol.challenge.deadline_margin_seconds"

#: counter, label ``strategy`` — adversary scenarios executed.
METRIC_ADVERSARY_SCENARIOS = "adversary.scenarios"
#: counter, label ``strategy`` — adversarial actions the protocol or
#: the chain rejected (reverts, pre-checks, validation failures).
METRIC_ADVERSARY_REJECTED = "adversary.rejected_actions"
#: counter — security deposits forfeited to a challenger during
#: adversary scenarios (the §IV monetary penalty firing).
METRIC_ADVERSARY_FORFEITS = "adversary.deposit_forfeits"

#: counter — netted batches committed on-chain.
METRIC_SETTLEMENT_BATCHES = "settlement.batches"
#: counter — sessions settled through a netted batch commitment.
METRIC_SETTLEMENT_BATCHED_SESSIONS = "settlement.batched_sessions"
#: histogram — sessions per committed batch.
METRIC_SETTLEMENT_BATCH_SIZE = "settlement.batch.size"
#: counter — batch-level on-chain gas the batcher paid (aggregator
#: deploy + ``commitBatch`` + ``finalizeBatch``); amortized over the
#: batch, never billed to a single session's ledger.
METRIC_SETTLEMENT_BATCH_GAS = "settlement.batch.gas"
#: counter — leaves opened on an aggregator (contested sessions
#: entering the dispute-via-opening path).
METRIC_SETTLEMENT_OPENINGS = "settlement.leaf_openings"

#: counter — WAL transactions durably committed.
METRIC_STORAGE_WAL_COMMITS = "storage.wal.commits"
#: counter — data records written into committed WAL transactions.
METRIC_STORAGE_WAL_RECORDS = "storage.wal.records"
#: counter — snapshot compactions (WAL folded and truncated).
METRIC_STORAGE_COMPACTIONS = "storage.compactions"
#: counter — clean hot accounts evicted from the in-memory LRU after
#: their state leaf digest was cached.
METRIC_STORAGE_ACCOUNTS_EVICTED = "storage.accounts.evicted"
#: counter — accounts faulted back in from the durable store.
METRIC_STORAGE_ACCOUNTS_FAULTED = "storage.accounts.faulted"
#: counter — sessions replayed live from their WAL journals during an
#: engine ``--resume`` (terminal sessions restore from summaries and
#: are not counted here).
METRIC_STORAGE_SESSIONS_REPLAYED = "storage.recover.sessions_replayed"

#: counter — wire requests a :class:`ChannelClient` completed
#: (one per command, however many retries it took).
METRIC_NET_REQUESTS = "net.client.requests"
#: counter — retransmissions after a timeout or connection error (a
#: request that succeeds first try contributes zero).
METRIC_NET_RETRIES = "net.client.retries"
#: histogram — wall-clock round-trip seconds per completed request.
METRIC_NET_RTT = "net.client.rtt_seconds"
#: counter — commands a :class:`ChannelServer` executed (first
#: deliveries only; redeliveries are counted separately).
METRIC_NET_COMMANDS = "net.server.commands"
#: counter — duplicate deliveries answered from the dedup window
#: instead of being re-executed (the idempotency contract firing).
METRIC_NET_REDELIVERIES = "net.server.redeliveries"

#: counter — sessions a :class:`SessionEngine` drove to completion.
METRIC_ENGINE_SESSIONS = "engine.sessions"
#: counter — sessions that settled through Dispute/Resolve.
METRIC_ENGINE_DISPUTES = "engine.disputes"
#: counter — blocks the engine itself scheduled.
METRIC_ENGINE_BLOCKS = "engine.blocks"
#: counter — transactions the engine itself queued and mined.
METRIC_ENGINE_TXS = "engine.txs"
#: counter — queue-mine-resume rounds the scheduler ran.
METRIC_ENGINE_ROUNDS = "engine.rounds"
#: gauge — wall-clock seconds of the last ``SessionEngine.run``.
METRIC_ENGINE_WALL_SECONDS = "engine.wall_seconds"

ALL_METRICS: tuple[str, ...] = (
    METRIC_EVM_GAS_BY_OPCODE,
    METRIC_EVM_GAS_BY_CATEGORY,
    METRIC_EVM_OPS,
    METRIC_EVM_GAS_TOTAL,
    METRIC_EVM_TIME_BY_OPCODE,
    METRIC_EVM_TIME_BY_CATEGORY,
    METRIC_EVM_CACHE_HITS,
    METRIC_EVM_CACHE_MISSES,
    METRIC_EVM_CACHE_SIZE,
    METRIC_EVM_JIT_PROGRAMS,
    METRIC_EVM_JIT_BLOCKS,
    METRIC_EVM_JIT_FAILURES,
    METRIC_EVM_JIT_RUNS,
    METRIC_CHAIN_TXS,
    METRIC_CHAIN_BLOCKS,
    METRIC_CHAIN_BLOCK_TXS,
    METRIC_CHAIN_BLOCK_GAS,
    METRIC_CHAIN_FN_GAS,
    METRIC_MEMPOOL_DEPTH,
    METRIC_MEMPOOL_BATCH_TXS,
    METRIC_PARALLEL_LANES,
    METRIC_PARALLEL_COMMITS,
    METRIC_PARALLEL_CONFLICTS,
    METRIC_PARALLEL_REEXECUTIONS,
    METRIC_PARALLEL_CONFLICT_RATE,
    METRIC_PARALLEL_ADMISSIONS,
    METRIC_CRYPTO_BATCH_SIZE,
    METRIC_CRYPTO_GLV_SPLITS,
    METRIC_PROTOCOL_STAGE_GAS,
    METRIC_OFFCHAIN_GAS,
    METRIC_CHALLENGE_LATE_DISPUTES,
    METRIC_CHALLENGE_DEADLINE_MARGIN,
    METRIC_ADVERSARY_SCENARIOS,
    METRIC_ADVERSARY_REJECTED,
    METRIC_ADVERSARY_FORFEITS,
    METRIC_SETTLEMENT_BATCHES,
    METRIC_SETTLEMENT_BATCHED_SESSIONS,
    METRIC_SETTLEMENT_BATCH_SIZE,
    METRIC_SETTLEMENT_BATCH_GAS,
    METRIC_SETTLEMENT_OPENINGS,
    METRIC_STORAGE_WAL_COMMITS,
    METRIC_STORAGE_WAL_RECORDS,
    METRIC_STORAGE_COMPACTIONS,
    METRIC_STORAGE_ACCOUNTS_EVICTED,
    METRIC_STORAGE_ACCOUNTS_FAULTED,
    METRIC_STORAGE_SESSIONS_REPLAYED,
    METRIC_NET_REQUESTS,
    METRIC_NET_RETRIES,
    METRIC_NET_RTT,
    METRIC_NET_COMMANDS,
    METRIC_NET_REDELIVERIES,
    METRIC_ENGINE_SESSIONS,
    METRIC_ENGINE_DISPUTES,
    METRIC_ENGINE_BLOCKS,
    METRIC_ENGINE_TXS,
    METRIC_ENGINE_ROUNDS,
    METRIC_ENGINE_WALL_SECONDS,
)

#: Pseudo-opcodes folded into :data:`METRIC_EVM_GAS_BY_OPCODE` so the
#: per-opcode decomposition sums exactly to receipt gas.
PSEUDO_OP_INTRINSIC = "INTRINSIC"
PSEUDO_OP_REFUND = "REFUND"
PSEUDO_OP_UNATTRIBUTED = "UNATTRIBUTED"
