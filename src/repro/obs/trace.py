"""Span-based tracing with parent/child context propagation.

A :class:`Span` covers one timed operation; spans opened while another
span is active become its children, forming the execution tree a
scenario trace renders (``scenario.run`` → ``stage.deploy`` →
``chain.deploy`` → ``chain.mine_block`` …).  Besides wall time, every
span carries *inclusive* gas attribution: :meth:`Tracer.add_gas`
credits the full stack of open spans, so a stage span's gas is the sum
of every transaction mined underneath it and the root span's gas is
the run's total.

The tracer is deliberately single-threaded (a plain stack, no
contextvars): the simulator, the engine scheduler and the protocol are
all synchronous, and the cheap stack keeps the disabled/enabled
overhead measurable and low (see
``benchmarks/bench_observability_overhead.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass
class Span:
    """One timed, gas-attributed operation in the execution tree."""

    name: str
    span_id: int
    parent_id: Optional[int] = None
    labels: dict[str, Any] = field(default_factory=dict)
    started_at: float = 0.0       # wall clock, time.time()
    start: float = 0.0            # monotonic, perf_counter()
    end: Optional[float] = None   # monotonic; None while open
    gas: int = 0                  # inclusive on-chain gas
    status: str = "ok"            # "ok" | "error"

    @property
    def duration(self) -> float:
        """Wall-time the span covered, in seconds (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def add_gas(self, amount: int) -> None:
        """Attribute ``amount`` gas units to this span."""
        self.gas += amount

    def set_label(self, **labels: Any) -> None:
        """Attach or overwrite labels after the span was opened."""
        self.labels.update(labels)

    def to_dict(self) -> dict[str, Any]:
        """The exporter wire format (see docs/observability.md)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "labels": dict(self.labels),
            "started_at": self.started_at,
            "duration_s": self.duration,
            "gas": self.gas,
            "status": self.status,
        }


class _SpanContext:
    """Context manager that closes a span and hands it to exporters."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.status = "error"
        self._tracer._finish(self.span)
        return False


class NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled.

    Implements the same surface as :class:`Span`-in-a-context so
    instrumentation sites never need an ``if enabled`` branch.
    """

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add_gas(self, amount: int) -> None:
        """Discard gas attribution."""

    def set_label(self, **labels: Any) -> None:
        """Discard labels."""


NOOP_SPAN = NoopSpan()


class Tracer:
    """Opens spans, tracks the active stack, feeds finished spans out.

    ``exporters`` is any iterable of objects with an
    ``on_span(span: Span)`` method (see :mod:`repro.obs.exporters`);
    spans are exported when they *finish*, so children precede their
    parents in the output stream — consumers rebuild the tree through
    ``parent_id``.
    """

    def __init__(self, exporters: tuple = ()) -> None:
        self.exporters = tuple(exporters)
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    def span(self, name: str, **labels: Any) -> _SpanContext:
        """Open a child span of the currently active span."""
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            labels=labels,
            started_at=time.time(),
            start=time.perf_counter(),
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Close any orphans a generator abandoned between resumptions.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.finished.append(span)
        for exporter in self.exporters:
            exporter.on_span(span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def add_gas(self, amount: int) -> None:
        """Attribute gas inclusively to every open span."""
        for span in self._stack:
            span.gas += amount

    # -- conveniences for tests and the CLI renderer -------------------

    def spans_named(self, name: str) -> list[Span]:
        """All finished spans with the given name, in finish order."""
        return [span for span in self.finished if span.name == name]

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Yield (depth, span) pairs in tree order (parents first)."""
        children: dict[Optional[int], list[Span]] = {}
        for span in self.finished:
            children.setdefault(span.parent_id, []).append(span)
        known = {span.span_id for span in self.finished}

        def visit(parent: Optional[int], depth: int) -> Iterator:
            """Emit one subtree depth-first, children by start time."""
            for span in sorted(children.get(parent, []),
                               key=lambda s: s.start):
                yield depth, span
                yield from visit(span.span_id, depth + 1)

        roots = [pid for pid in children if pid is None or pid not in known]
        for root in sorted(set(roots), key=lambda p: (p is not None, p)):
            yield from visit(root, 0)
