"""Unified observability: tracing, metrics and EVM gas profiling.

One :class:`Telemetry` object bundles the three instruments the rest
of the library reports into:

* a span :class:`~repro.obs.trace.Tracer` (wall time + inclusive gas,
  parent/child propagation, pluggable exporters);
* a :class:`~repro.obs.metrics.MetricsRegistry` holding every counter,
  gauge and histogram named in :mod:`repro.obs.names`;
* an :class:`~repro.obs.gasprof.EvmGasProfiler` fed by the transaction
  processor through the EVM's tracer seam.

Telemetry is **off by default** and activated for a bounded scope::

    from repro import obs
    from repro.obs.exporters import JsonlExporter

    with obs.telemetry(JsonlExporter("out.jsonl")) as telemetry:
        run_scenario()
    # spans streamed to out.jsonl; metrics snapshot appended on close

Instrumentation sites call the module-level helpers (:func:`span`,
:func:`inc`, :func:`observe`, ...) which no-op when nothing is active;
the disabled cost is one ``is None`` check per site (quantified in
``benchmarks/bench_observability_overhead.py``).  The tracer and
registry are synchronous and single-threaded, like the simulator they
observe.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.exceptions import ReproError
from repro.obs import names
from repro.obs.gasprof import EvmGasProfiler, TxGasCollector
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.trace import NOOP_SPAN, NoopSpan, Span, Tracer

__all__ = [
    "Counter",
    "EvmGasProfiler",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NoopSpan",
    "ObsError",
    "Span",
    "Telemetry",
    "Tracer",
    "TxGasCollector",
    "active",
    "add_gas",
    "begin_transaction",
    "enabled",
    "end_transaction",
    "inc",
    "names",
    "observe",
    "set_gauge",
    "span",
    "telemetry",
]


class ObsError(ReproError, RuntimeError):
    """Raised for telemetry lifecycle misuse (double activation, ...)."""


#: Fixed histogram bucket boundaries, part of the telemetry contract.
BLOCK_TX_BUCKETS = (1, 2, 4, 8, 16, 32, 64)
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
BLOCK_GAS_BUCKETS = (50_000, 100_000, 250_000, 500_000, 1_000_000,
                     2_000_000, 4_000_000, 8_000_000)
WINDOW_MARGIN_BUCKETS = (60, 300, 900, 1_800, 3_600, 7_200, 14_400)
NET_RTT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                   0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


def _declare_instruments(registry: MetricsRegistry) -> None:
    """Pre-declare every contract metric so lookups never miss."""
    registry.counter(names.METRIC_CHAIN_TXS, help="mined transactions")
    registry.counter(names.METRIC_CHAIN_BLOCKS, help="mined blocks")
    registry.histogram(names.METRIC_CHAIN_BLOCK_TXS,
                       buckets=BLOCK_TX_BUCKETS,
                       help="transactions per mined block")
    registry.histogram(names.METRIC_CHAIN_BLOCK_GAS,
                       buckets=BLOCK_GAS_BUCKETS,
                       help="gas used per mined block")
    registry.counter(names.METRIC_CHAIN_FN_GAS,
                     help="receipt gas per named contract function")
    registry.gauge(names.METRIC_MEMPOOL_DEPTH,
                   help="pending transactions after last add/pop")
    registry.histogram(names.METRIC_MEMPOOL_BATCH_TXS,
                       buckets=BLOCK_TX_BUCKETS,
                       help="transactions taken per pop_batch")
    registry.counter(names.METRIC_PARALLEL_LANES,
                     help="speculative lanes launched")
    registry.counter(names.METRIC_PARALLEL_COMMITS,
                     help="lanes committed speculatively")
    registry.counter(names.METRIC_PARALLEL_CONFLICTS,
                     help="lanes with dirty read sets at commit")
    registry.counter(names.METRIC_PARALLEL_REEXECUTIONS,
                     help="lanes re-executed sequentially")
    registry.gauge(names.METRIC_PARALLEL_CONFLICT_RATE,
                   help="re-execution fraction of last parallel block")
    registry.counter(names.METRIC_PARALLEL_ADMISSIONS,
                     help="senders recovered by the admission pool")
    registry.histogram(names.METRIC_CRYPTO_BATCH_SIZE,
                       buckets=BATCH_SIZE_BUCKETS,
                       help="signatures per batched recovery chunk")
    registry.gauge(names.METRIC_CRYPTO_GLV_SPLITS,
                   help="GLV scalar decompositions (process-wide)")
    registry.counter(names.METRIC_PROTOCOL_STAGE_GAS,
                     help="GasLedger records per protocol stage")
    registry.counter(names.METRIC_OFFCHAIN_GAS,
                     help="gas-equivalents burned privately off-chain")
    registry.counter(names.METRIC_CHALLENGE_LATE_DISPUTES,
                     help="disputes rejected after the deadline")
    registry.histogram(names.METRIC_CHALLENGE_DEADLINE_MARGIN,
                       buckets=WINDOW_MARGIN_BUCKETS,
                       help="window seconds left at dispute admission")
    registry.counter(names.METRIC_ADVERSARY_SCENARIOS,
                     help="adversary scenarios executed")
    registry.counter(names.METRIC_ADVERSARY_REJECTED,
                     help="adversarial actions rejected")
    registry.counter(names.METRIC_ADVERSARY_FORFEITS,
                     help="deposits forfeited in adversary scenarios")
    registry.counter(names.METRIC_SETTLEMENT_BATCHES,
                     help="netted batches committed on-chain")
    registry.counter(names.METRIC_SETTLEMENT_BATCHED_SESSIONS,
                     help="sessions settled through netted batches")
    registry.histogram(names.METRIC_SETTLEMENT_BATCH_SIZE,
                       buckets=BATCH_SIZE_BUCKETS,
                       help="sessions per committed batch")
    registry.counter(names.METRIC_SETTLEMENT_BATCH_GAS,
                     help="batch-level gas (deploy+commit+finalize)")
    registry.counter(names.METRIC_SETTLEMENT_OPENINGS,
                     help="contested leaves opened on aggregators")
    registry.counter(names.METRIC_STORAGE_WAL_COMMITS,
                     help="WAL transactions durably committed")
    registry.counter(names.METRIC_STORAGE_WAL_RECORDS,
                     help="data records in committed WAL transactions")
    registry.counter(names.METRIC_STORAGE_COMPACTIONS,
                     help="snapshot compactions")
    registry.counter(names.METRIC_STORAGE_ACCOUNTS_EVICTED,
                     help="clean accounts evicted from the hot LRU")
    registry.counter(names.METRIC_STORAGE_ACCOUNTS_FAULTED,
                     help="accounts faulted in from the durable store")
    registry.counter(names.METRIC_STORAGE_SESSIONS_REPLAYED,
                     help="mid-flight sessions replayed on --resume")
    registry.counter(names.METRIC_NET_REQUESTS,
                     help="wire requests completed by clients")
    registry.counter(names.METRIC_NET_RETRIES,
                     help="retransmissions after timeout/disconnect")
    registry.histogram(names.METRIC_NET_RTT,
                       buckets=NET_RTT_BUCKETS,
                       help="round-trip seconds per wire request")
    registry.counter(names.METRIC_NET_COMMANDS,
                     help="commands executed by channel servers")
    registry.counter(names.METRIC_NET_REDELIVERIES,
                     help="duplicates answered from the dedup window")
    registry.counter(names.METRIC_ENGINE_SESSIONS,
                     help="sessions driven to completion")
    registry.counter(names.METRIC_ENGINE_DISPUTES,
                     help="sessions settled through Dispute/Resolve")
    registry.counter(names.METRIC_ENGINE_BLOCKS,
                     help="blocks the engine scheduled")
    registry.counter(names.METRIC_ENGINE_TXS,
                     help="transactions the engine mined")
    registry.counter(names.METRIC_ENGINE_ROUNDS,
                     help="queue-mine-resume scheduler rounds")
    registry.gauge(names.METRIC_ENGINE_WALL_SECONDS,
                   help="wall-clock seconds of the last engine run")
    registry.gauge(names.METRIC_EVM_CACHE_HITS,
                   help="cumulative hits per EVM-side memo cache")
    registry.gauge(names.METRIC_EVM_CACHE_MISSES,
                   help="cumulative misses per EVM-side memo cache")
    registry.gauge(names.METRIC_EVM_CACHE_SIZE,
                   help="current entries per EVM-side memo cache")
    registry.gauge(names.METRIC_EVM_JIT_PROGRAMS,
                   help="bytecodes compiled by the EVM JIT")
    registry.gauge(names.METRIC_EVM_JIT_BLOCKS,
                   help="basic blocks compiled by the EVM JIT")
    registry.gauge(names.METRIC_EVM_JIT_FAILURES,
                   help="bytecodes the EVM JIT fell back on")
    registry.gauge(names.METRIC_EVM_JIT_RUNS,
                   help="untraced EVM frame executions by run mode")


class Telemetry:
    """One activatable bundle of tracer + registry + EVM profiler.

    ``exporters`` receive spans as they finish and the final metrics
    snapshot on :meth:`close`.  ``profile_evm=False`` skips opcode
    profiling (the hot path) while keeping spans and metrics.
    """

    def __init__(self, *exporters: Any, profile_evm: bool = True) -> None:
        self.exporters = tuple(exporters)
        self.metrics = MetricsRegistry()
        _declare_instruments(self.metrics)
        self.tracer = Tracer(exporters=self.exporters)
        self.profiler: Optional[EvmGasProfiler] = (
            EvmGasProfiler(self.metrics) if profile_evm else None)
        self._closed = False

    def close(self) -> None:
        """Send the final metrics snapshot and close every exporter."""
        if self._closed:
            return
        self._closed = True
        _publish_cache_stats(self.metrics)
        snapshot = self.metrics.snapshot()
        for exporter in self.exporters:
            on_metrics = getattr(exporter, "on_metrics", None)
            if on_metrics is not None:
                on_metrics(snapshot)
            exporter.close()


def _publish_cache_stats(registry: MetricsRegistry) -> None:
    """Refresh the ``evm.cache.*`` gauges from the live caches."""
    from repro.crypto.keccak import keccak_cache_info
    from repro.crypto.keys import recover_cache_info
    from repro.crypto.secp256k1 import glv_split_count
    from repro.evm.analysis import analysis_cache_info
    from repro.evm.jit import cache_info as jit_cache_info

    lru_sources = {
        "analysis": analysis_cache_info(),
        "ecrecover": recover_cache_info(),
        "keccak": keccak_cache_info(),
    }
    registry.get(names.METRIC_CRYPTO_GLV_SPLITS).set(glv_split_count())
    hits = registry.get(names.METRIC_EVM_CACHE_HITS)
    misses = registry.get(names.METRIC_EVM_CACHE_MISSES)
    size = registry.get(names.METRIC_EVM_CACHE_SIZE)
    for cache, info in lru_sources.items():
        hits.set(info.hits, cache=cache)
        misses.set(info.misses, cache=cache)
        size.set(info.currsize, cache=cache)
    jit = jit_cache_info()
    registry.get(names.METRIC_EVM_JIT_PROGRAMS).set(jit["programs"])
    registry.get(names.METRIC_EVM_JIT_BLOCKS).set(jit["blocks"])
    registry.get(names.METRIC_EVM_JIT_FAILURES).set(jit["failures"])
    runs = registry.get(names.METRIC_EVM_JIT_RUNS)
    runs.set(jit["compiled_runs"], mode="compiled")
    runs.set(jit["interpreted_runs"], mode="interpreted")
    runs.set(jit["bailouts"], mode="bailout")


def publish_cache_stats() -> None:
    """Refresh the active telemetry's ``evm.cache.*`` gauges.

    No-op while telemetry is inactive.  :meth:`Telemetry.close` calls
    this automatically, so exported final snapshots always carry the
    cache statistics; call it mid-run for fresher readings.
    """
    if _ACTIVE is not None:
        _publish_cache_stats(_ACTIVE.metrics)


_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The currently activated :class:`Telemetry`, if any."""
    return _ACTIVE


def enabled() -> bool:
    """True while a :class:`Telemetry` is activated."""
    return _ACTIVE is not None


def activate(instance: Telemetry) -> Telemetry:
    """Install ``instance`` as the process-wide telemetry sink."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ObsError("telemetry is already active; deactivate() first")
    _ACTIVE = instance
    return instance


def deactivate() -> None:
    """Remove the active telemetry (no-op when none is active)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def telemetry(*exporters: Any,
              profile_evm: bool = True) -> Iterator[Telemetry]:
    """Activate a fresh :class:`Telemetry` for the ``with`` body."""
    instance = activate(Telemetry(*exporters, profile_evm=profile_evm))
    try:
        yield instance
    finally:
        deactivate()
        instance.close()


# ---------------------------------------------------------------------------
# Hot-path helpers: all no-ops while telemetry is inactive
# ---------------------------------------------------------------------------

def span(name: str, **labels: Any):
    """Open a span on the active tracer (no-op context when off)."""
    if _ACTIVE is None:
        return NOOP_SPAN
    return _ACTIVE.tracer.span(name, **labels)


def add_gas(amount: int) -> None:
    """Attribute gas inclusively to every open span."""
    if _ACTIVE is not None:
        _ACTIVE.tracer.add_gas(amount)


def inc(name: str, amount: int | float = 1, **labels: Any) -> None:
    """Increment a contract counter by name."""
    if _ACTIVE is None:
        return
    instrument = _ACTIVE.metrics.get(name)
    if instrument is None:
        raise MetricsError(f"metric {name!r} is not declared")
    instrument.inc(amount, **labels)


def observe(name: str, value: int | float, **labels: Any) -> None:
    """Record a contract histogram observation by name."""
    if _ACTIVE is None:
        return
    instrument = _ACTIVE.metrics.get(name)
    if instrument is None:
        raise MetricsError(f"metric {name!r} is not declared")
    instrument.observe(value, **labels)


def set_gauge(name: str, value: int | float, **labels: Any) -> None:
    """Set a contract gauge by name."""
    if _ACTIVE is None:
        return
    instrument = _ACTIVE.metrics.get(name)
    if instrument is None:
        raise MetricsError(f"metric {name!r} is not declared")
    instrument.set(value, **labels)


def begin_transaction() -> Optional[TxGasCollector]:
    """A per-transaction EVM gas collector, or None when off."""
    if _ACTIVE is None or _ACTIVE.profiler is None:
        return None
    return _ACTIVE.profiler.begin_transaction()


def end_transaction(collector: TxGasCollector, *, execution_gas: int,
                    intrinsic: int, refund: int, gas_used: int) -> None:
    """Settle a collector from :func:`begin_transaction`."""
    if _ACTIVE is not None and _ACTIVE.profiler is not None:
        _ACTIVE.profiler.finish_transaction(
            collector, execution_gas=execution_gas, intrinsic=intrinsic,
            refund=refund, gas_used=gas_used)
