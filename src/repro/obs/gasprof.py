"""EVM opcode/gas profiling into the metrics registry.

The transaction processor hands every *mined* transaction's execution
to a :class:`TxGasCollector` through the EVM's ``on_step`` tracer seam
(the same seam :mod:`repro.evm.tracer` uses), then settles the
collected totals into the registry via :class:`EvmGasProfiler`.

Accounting is exact by construction: the outer frame's opcode costs
(call/create steps carry their children's net gas) plus the pseudo-ops
``INTRINSIC`` (21000 + calldata), ``REFUND`` (negative; SSTORE-clear
refunds actually applied) and ``UNATTRIBUTED`` (charges outside the
step stream, e.g. top-level code-deposit gas) sum to
``receipt.gas_used`` for every transaction — so the registry's
per-opcode totals reconcile with the ``GasLedger`` to the gas unit.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from time import perf_counter

from repro.evm import opcodes
from repro.evm.tracer import category_of
from repro.obs import names
from repro.obs.metrics import MetricsRegistry


class TxGasCollector:
    """Per-transaction opcode-gas aggregation (EVM tracer protocol).

    Only outermost-frame steps are counted (``depth == 0``), which
    makes the decomposition exclusive: a CALL/CREATE step's cost
    already includes the child frame's net gas.
    """

    __slots__ = ("by_opcode", "op_counts", "by_time", "total_gas",
                 "_last_time")

    def __init__(self) -> None:
        self.by_opcode: TallyCounter = TallyCounter()
        self.op_counts: TallyCounter = TallyCounter()
        self.by_time: TallyCounter = TallyCounter()
        self.total_gas = 0
        self._last_time = perf_counter()

    def on_step(self, pc: int, op: int, depth: int, gas_before: int,
                gas_cost: int, stack_size: int) -> None:
        """Record one executed instruction (outermost frame only).

        Wall time is attributed by the delta since the previous
        outermost-frame step, so a CALL/CREATE step carries its child
        frame's execution time — the same exclusive decomposition the
        gas figures use.
        """
        if depth > 0:
            return
        opcode = opcodes.OPCODES.get(op)
        mnemonic = opcode.mnemonic if opcode else f"0x{op:02x}"
        self.by_opcode[mnemonic] += gas_cost
        self.op_counts[mnemonic] += 1
        self.total_gas += gas_cost
        now = perf_counter()
        self.by_time[mnemonic] += now - self._last_time
        self._last_time = now


#: mnemonic -> coarse category for the pseudo-ops.
_PSEUDO_CATEGORY = {
    names.PSEUDO_OP_INTRINSIC: "intrinsic",
    names.PSEUDO_OP_REFUND: "refund",
    names.PSEUDO_OP_UNATTRIBUTED: "unattributed",
}

_MNEMONIC_TO_BYTE = {
    opcode.mnemonic: byte for byte, opcode in opcodes.OPCODES.items()
}


def _category(mnemonic: str) -> str:
    pseudo = _PSEUDO_CATEGORY.get(mnemonic)
    if pseudo is not None:
        return pseudo
    byte = _MNEMONIC_TO_BYTE.get(mnemonic)
    return category_of(byte) if byte is not None else "arithmetic"


class EvmGasProfiler:
    """Settles per-transaction collections into registry counters."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._gas_by_opcode = registry.counter(
            names.METRIC_EVM_GAS_BY_OPCODE,
            help="gas per opcode over mined transactions "
                 "(incl. INTRINSIC/REFUND/UNATTRIBUTED pseudo-ops)")
        self._gas_by_category = registry.counter(
            names.METRIC_EVM_GAS_BY_CATEGORY,
            help="gas per coarse cost category over mined transactions")
        self._ops = registry.counter(
            names.METRIC_EVM_OPS,
            help="executed instruction counts per opcode")
        self._gas_total = registry.counter(
            names.METRIC_EVM_GAS_TOTAL,
            help="total receipt gas over profiled transactions")
        self._time_by_opcode = registry.counter(
            names.METRIC_EVM_TIME_BY_OPCODE,
            help="interpreter wall seconds per opcode (outer frame; "
                 "call/create steps carry child time)")
        self._time_by_category = registry.counter(
            names.METRIC_EVM_TIME_BY_CATEGORY,
            help="interpreter wall seconds per coarse cost category")

    def begin_transaction(self) -> TxGasCollector:
        """A fresh collector to pass as the EVM tracer for one tx."""
        return TxGasCollector()

    def finish_transaction(self, collector: TxGasCollector, *,
                           execution_gas: int, intrinsic: int,
                           refund: int, gas_used: int) -> None:
        """Fold one mined transaction's collection into the registry.

        ``execution_gas`` is the EVM result's gas (outer frame),
        ``refund`` the amount actually credited (post-cap), and
        ``gas_used`` the receipt figure; the difference between
        ``execution_gas`` and the traced step total is booked as
        ``UNATTRIBUTED`` so the invariant
        ``sum(by_opcode) == sum(gas_used)`` holds exactly.
        """
        for mnemonic, gas in collector.by_opcode.items():
            self._gas_by_opcode.inc(gas, op=mnemonic)
            self._gas_by_category.inc(gas, category=_category(mnemonic))
        for mnemonic, count in collector.op_counts.items():
            self._ops.inc(count, op=mnemonic)
        for mnemonic, seconds in collector.by_time.items():
            self._time_by_opcode.inc(seconds, op=mnemonic)
            self._time_by_category.inc(seconds,
                                       category=_category(mnemonic))
        if intrinsic:
            self._gas_by_opcode.inc(intrinsic,
                                    op=names.PSEUDO_OP_INTRINSIC)
            self._gas_by_category.inc(intrinsic, category="intrinsic")
        if refund:
            self._gas_by_opcode.inc(-refund, op=names.PSEUDO_OP_REFUND)
            self._gas_by_category.inc(-refund, category="refund")
        unattributed = execution_gas - collector.total_gas
        if unattributed:
            self._gas_by_opcode.inc(unattributed,
                                    op=names.PSEUDO_OP_UNATTRIBUTED)
            self._gas_by_category.inc(unattributed,
                                      category="unattributed")
        self._gas_total.inc(gas_used)

    def opcode_gas_total(self) -> int:
        """Sum over every per-opcode series (== total receipt gas)."""
        return self._gas_by_opcode.total()

    def top_opcodes(self, count: int = 10) -> list[tuple[str, int]]:
        """The ``count`` most expensive opcodes, descending by gas."""
        series = [
            (dict(key).get("op", "?"), gas)
            for key, gas in self._gas_by_opcode.series().items()
        ]
        series.sort(key=lambda item: -item[1])
        return series[:count]

    def top_slow(self, count: int = 10) -> list[tuple[str, float]]:
        """The ``count`` opcodes with the most wall time, descending."""
        series = [
            (dict(key).get("op", "?"), seconds)
            for key, seconds in self._time_by_opcode.series().items()
        ]
        series.sort(key=lambda item: -item[1])
        return series[:count]

    def time_by_category(self) -> list[tuple[str, float]]:
        """Wall seconds per coarse opcode category, descending."""
        series = [
            (dict(key).get("category", "?"), seconds)
            for key, seconds in self._time_by_category.series().items()
        ]
        series.sort(key=lambda item: -item[1])
        return series
