"""Counters, gauges and fixed-bucket histograms behind one registry.

The registry is the repository's single metric namespace: instruments
are declared once (name, kind, help text, bucket boundaries) and
looked up by name everywhere else, so the set of metric names in
:mod:`repro.obs.names` *is* the set of metrics that can ever be
emitted.  Label sets follow the Prometheus model — each distinct label
combination is an independent series of the same instrument.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Optional

from repro.exceptions import ReproError


class MetricsError(ReproError, ValueError):
    """Raised for metric redeclaration/kind conflicts and bad buckets."""


LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically *recorded* sum per label set.

    Unlike a Prometheus counter, negative increments are allowed: the
    EVM profiler books gas refunds as a negative ``REFUND`` series so
    the per-opcode decomposition sums exactly to receipt gas.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[LabelKey, int | float] = {}

    def inc(self, amount: int | float = 1, **labels: Any) -> None:
        """Add ``amount`` to the series selected by ``labels``."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> int | float:
        """Current value of one series (0 if never incremented)."""
        return self._series.get(_label_key(labels), 0)

    def total(self) -> int | float:
        """Sum over every label series."""
        return sum(self._series.values())

    def series(self) -> dict[LabelKey, int | float]:
        """Snapshot of every (label set → value) pair."""
        return dict(self._series)

    def snapshot(self) -> dict[str, Any]:
        """Exporter wire form (labels flattened to dicts)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class Gauge:
    """A last-write-wins value per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[LabelKey, int | float] = {}

    def set(self, value: int | float, **labels: Any) -> None:
        """Overwrite the series selected by ``labels``."""
        self._series[_label_key(labels)] = value

    def value(self, **labels: Any) -> int | float:
        """Current value of one series (0 if never set)."""
        return self._series.get(_label_key(labels), 0)

    def snapshot(self) -> dict[str, Any]:
        """Exporter wire form (labels flattened to dicts)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class Histogram:
    """Fixed-boundary histogram with Prometheus ``le`` semantics.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit +Inf bucket catches everything above the last bound.  An
    observation equal to a bound lands in that bound's bucket
    (``value <= bound``), which the bucketing tests pin down.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Iterable[int | float],
                 help: str = "") -> None:
        self.name = name
        self.help = help
        bounds = list(buckets)
        if not bounds:
            raise MetricsError(f"histogram {name!r} needs >= 1 bucket")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {name!r} buckets must be strictly "
                f"increasing: {bounds}"
            )
        self.bounds: tuple[int | float, ...] = tuple(bounds)
        # counts has len(bounds) + 1 slots; the last is the +Inf bucket.
        self._series: dict[LabelKey, dict[str, Any]] = {}

    def _slot(self, labels: dict[str, Any]) -> dict[str, Any]:
        key = _label_key(labels)
        slot = self._series.get(key)
        if slot is None:
            slot = {"counts": [0] * (len(self.bounds) + 1),
                    "sum": 0, "count": 0}
            self._series[key] = slot
        return slot

    def observe(self, value: int | float, **labels: Any) -> None:
        """Record one observation into the series for ``labels``."""
        slot = self._slot(labels)
        slot["counts"][bisect.bisect_left(self.bounds, value)] += 1
        slot["sum"] += value
        slot["count"] += 1

    def count(self, **labels: Any) -> int:
        """Observations recorded into one series."""
        slot = self._series.get(_label_key(labels))
        return slot["count"] if slot else 0

    def sum(self, **labels: Any) -> int | float:
        """Sum of observed values in one series."""
        slot = self._series.get(_label_key(labels))
        return slot["sum"] if slot else 0

    def bucket_counts(self, **labels: Any) -> dict[str, int]:
        """Non-cumulative per-bucket counts, keyed by upper bound."""
        slot = self._series.get(_label_key(labels))
        counts = slot["counts"] if slot else [0] * (len(self.bounds) + 1)
        keys = [str(bound) for bound in self.bounds] + ["+Inf"]
        return dict(zip(keys, counts))

    def snapshot(self) -> dict[str, Any]:
        """Exporter wire form (per-series buckets, sum and count)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "buckets": list(self.bounds),
            "series": [
                {
                    "labels": dict(key),
                    "counts": list(slot["counts"]),
                    "sum": slot["sum"],
                    "count": slot["count"],
                }
                for key, slot in sorted(self._series.items())
            ],
        }


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Declare-once, look-up-anywhere home of every instrument."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._declare(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._declare(Gauge(name, help))

    def histogram(self, name: str,
                  buckets: Optional[Iterable[int | float]] = None,
                  help: str = "") -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` is required on first declaration and must match
        (or be omitted) on later look-ups.
        """
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise MetricsError(
                    f"{name!r} is a {existing.kind}, not a histogram")
            if buckets is not None and tuple(buckets) != existing.bounds:
                raise MetricsError(
                    f"histogram {name!r} redeclared with different "
                    f"buckets")
            return existing
        if buckets is None:
            raise MetricsError(
                f"histogram {name!r} must declare buckets first")
        return self._declare(Histogram(name, buckets, help))

    def _declare(self, instrument: Instrument) -> Any:
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            if type(existing) is not type(instrument):
                raise MetricsError(
                    f"{instrument.name!r} already declared as a "
                    f"{existing.kind}, not a {instrument.kind}"
                )
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument called ``name``, or None."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """Every declared instrument name, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """One JSON-able dict covering every instrument and series."""
        return {
            "type": "metrics",
            "instruments": [
                self._instruments[name].snapshot()
                for name in sorted(self._instruments)
            ],
        }
