"""Pluggable telemetry exporters: console, JSONL file, in-memory.

Exporters receive each span *when it finishes* (children before their
parents — rebuild trees through ``parent_id``) and, on
:meth:`~repro.obs.Telemetry.close`, one final metrics snapshot.  The
JSONL wire format — one JSON object per line, ``type`` either
``"span"`` or ``"metrics"`` — is part of the telemetry contract
documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
from typing import Any, Optional, TextIO

from repro.obs.trace import Span


class InMemoryExporter:
    """Buffers everything; the exporter tests and assertions use it."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.metrics: Optional[dict[str, Any]] = None

    def on_span(self, span: Span) -> None:
        """Keep a reference to the finished span."""
        self.spans.append(span)

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        """Keep the final metrics snapshot."""
        self.metrics = snapshot

    def close(self) -> None:
        """Nothing to flush."""

    def span_names(self) -> set[str]:
        """The distinct span names seen so far."""
        return {span.name for span in self.spans}


class JsonlExporter:
    """Streams the wire format to a file, one JSON object per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._file: Optional[TextIO] = open(path, "w", encoding="utf-8")

    def _write(self, payload: dict[str, Any]) -> None:
        if self._file is None:
            return
        self._file.write(json.dumps(payload, sort_keys=True) + "\n")

    def on_span(self, span: Span) -> None:
        """Append one ``type="span"`` line."""
        self._write(span.to_dict())

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        """Append the final ``type="metrics"`` line."""
        self._write(snapshot)

    def close(self) -> None:
        """Flush and close the underlying file."""
        if self._file is not None:
            self._file.close()
            self._file = None


class ConsoleExporter:
    """Prints one compact line per finished span (debug aid)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream

    def on_span(self, span: Span) -> None:
        """Print ``name duration gas labels`` for one span."""
        labels = " ".join(
            f"{key}={value}" for key, value in sorted(span.labels.items()))
        gas = f" gas={span.gas:,}" if span.gas else ""
        line = (f"[obs] {span.name} {span.duration * 1000:.2f}ms"
                f"{gas}{' ' + labels if labels else ''}")
        print(line, file=self._stream)

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        """Print a one-line summary of the snapshot size."""
        print(f"[obs] metrics: {len(snapshot['instruments'])} instruments",
              file=self._stream)

    def close(self) -> None:
        """Nothing to flush."""


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a telemetry JSONL file back into a list of records."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
