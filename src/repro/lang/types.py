"""The Solis type system.

Value types occupy one 256-bit word (uintN, address, bool, bytesN,
contract references); ``bytes`` is a dynamic reference type living in
memory/calldata; mappings and fixed arrays are storage-only containers.
"""

from __future__ import annotations

from dataclasses import dataclass


class SolisType:
    """Base class for all types."""

    #: canonical ABI spelling, or None when not ABI-encodable
    abi_name: str | None = None

    @property
    def is_value(self) -> bool:
        """True for single-word value types."""
        return False

    def assignable_from(self, other: "SolisType") -> bool:
        """Whether a value of ``other`` may be assigned to this type."""
        return self == other

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True, repr=False)
class UIntType(SolisType):
    """Unsigned integer of ``bits`` width (stored as one word)."""

    bits: int = 256

    @property
    def abi_name(self) -> str:
        """The type's name as it appears in ABI signatures."""
        return f"uint{self.bits}"

    @property
    def is_value(self) -> bool:
        """True for single-slot value types."""
        return True

    def assignable_from(self, other: SolisType) -> bool:
        """Whether a value of ``other``'s type can be assigned here."""
        return isinstance(other, UIntType) and other.bits <= self.bits

    def __str__(self) -> str:
        return "uint256" if self.bits == 256 else f"uint{self.bits}"


@dataclass(frozen=True, repr=False)
class AddressType(SolisType):
    """20-byte ``address`` type."""
    abi_name = "address"

    @property
    def is_value(self) -> bool:
        """True for single-slot value types."""
        return True

    def assignable_from(self, other: SolisType) -> bool:
        """Whether a value of ``other``'s type can be assigned here."""
        return isinstance(other, (AddressType, ContractType))

    def __str__(self) -> str:
        return "address"


@dataclass(frozen=True, repr=False)
class BoolType(SolisType):
    """``bool`` type."""
    abi_name = "bool"

    @property
    def is_value(self) -> bool:
        """True for single-slot value types."""
        return True

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True, repr=False)
class FixedBytesType(SolisType):
    """bytesN — right-padded fixed byte strings (one word)."""

    size: int = 32

    @property
    def abi_name(self) -> str:
        """The type's name as it appears in ABI signatures."""
        return f"bytes{self.size}"

    @property
    def is_value(self) -> bool:
        """True for single-slot value types."""
        return True

    def __str__(self) -> str:
        return f"bytes{self.size}"


@dataclass(frozen=True, repr=False)
class BytesType(SolisType):
    """Dynamic byte array (memory/calldata reference)."""

    abi_name = "bytes"

    def __str__(self) -> str:
        return "bytes"


@dataclass(frozen=True, repr=False)
class StringType(SolisType):
    """UTF-8 string — encoded like ``bytes``."""

    abi_name = "string"

    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True, repr=False)
class MappingType(SolisType):
    """mapping(key => value); storage-only."""

    key_type: SolisType
    value_type: SolisType

    def __str__(self) -> str:
        return f"mapping({self.key_type} => {self.value_type})"


@dataclass(frozen=True, repr=False)
class ArrayType(SolisType):
    """Fixed-size array of value types; storage-only in Solis."""

    element_type: SolisType
    length: int

    def __str__(self) -> str:
        return f"{self.element_type}[{self.length}]"


@dataclass(frozen=True, repr=False)
class ContractType(SolisType):
    """A reference to a contract/interface — an address at runtime."""

    name: str

    abi_name = "address"

    @property
    def is_value(self) -> bool:
        """True for single-slot value types."""
        return True

    def assignable_from(self, other: SolisType) -> bool:
        """Whether a value of ``other``'s type can be assigned here."""
        return isinstance(other, (AddressType, ContractType))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class VoidType(SolisType):
    """The 'type' of statements/functions without a value."""

    def __str__(self) -> str:
        return "void"


UINT256 = UIntType(256)
UINT8 = UIntType(8)
ADDRESS = AddressType()
BOOL = BoolType()
BYTES32 = FixedBytesType(32)
BYTES = BytesType()
STRING = StringType()
VOID = VoidType()

_KEYWORD_TYPES: dict[str, SolisType] = {
    "uint": UINT256,
    "uint256": UINT256,
    "uint8": UIntType(8),
    "uint16": UIntType(16),
    "uint32": UIntType(32),
    "uint64": UIntType(64),
    "uint128": UIntType(128),
    "int": UINT256,      # Solis treats int as uint256 (no signed ops needed)
    "int256": UINT256,
    "address": ADDRESS,
    "bool": BOOL,
    "bytes": BYTES,
    "bytes4": FixedBytesType(4),
    "bytes32": BYTES32,
    "string": STRING,
}


def type_from_keyword(name: str) -> SolisType | None:
    """Map a type keyword to a type object (None when not a type)."""
    return _KEYWORD_TYPES.get(name)
