"""Lexer for the Solis language (a Solidity subset).

Produces a flat token stream with line/column positions.  Handles
``//`` and ``/* */`` comments, decimal and hex literals, string
literals, ether-denomination suffixes (``1 ether``) handled at the
parser level, and all multi-character operators Solidity uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.lang.errors import LexerError


class TokenType(Enum):
    """Every token kind the lexer can emit."""
    IDENT = auto()
    NUMBER = auto()
    HEX_LITERAL = auto()
    STRING = auto()
    KEYWORD = auto()
    OP = auto()
    EOF = auto()


KEYWORDS = frozenset({
    "pragma", "contract", "interface", "function", "modifier", "event",
    "constructor", "returns", "return", "if", "else", "while", "for",
    "require", "emit", "new", "delete", "true", "false", "public",
    "private", "external", "internal", "payable", "view", "pure",
    "constant", "memory", "storage", "calldata", "indexed", "mapping",
    "uint", "uint8", "uint16", "uint32", "uint64", "uint128", "uint256",
    "int", "int256", "address", "bool", "bytes", "bytes4", "bytes32",
    "string", "msg", "block", "tx", "this", "now", "wei", "gwei",
    "ether", "seconds", "minutes", "hours", "days", "weeks",
    "assembly", "selfdestruct", "break", "continue", "revert",
})

# Longest-match-first operator list.
_OPERATORS = [
    "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "++", "--", "<<", ">>",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "<", ">", "+",
    "-", "*", "/", "%", "!", "&", "|", "^", "~", "?", ":", "_",
]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        """True for keyword tokens."""
        return self.type == TokenType.KEYWORD and self.value in names

    def is_op(self, *ops: str) -> bool:
        """True for operator/punctuation tokens."""
        return self.type == TokenType.OP and self.value in ops

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    col = 1
    length = len(source)

    def error(message: str) -> LexerError:
        """Raise a LexError at the current position."""
        return LexerError(message, line, col)

    while pos < length:
        ch = source[pos]

        if ch == "\n":
            pos += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            pos += 1
            col += 1
            continue

        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[pos:end + 2]
            newline_count = skipped.count("\n")
            if newline_count:
                line += newline_count
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            pos = end + 2
            continue

        if ch == '"' or ch == "'":
            quote = ch
            end = pos + 1
            chunks = []
            while end < length and source[end] != quote:
                if source[end] == "\n":
                    raise error("unterminated string literal")
                if source[end] == "\\" and end + 1 < length:
                    chunks.append(source[end + 1])
                    end += 2
                else:
                    chunks.append(source[end])
                    end += 1
            if end >= length:
                raise error("unterminated string literal")
            tokens.append(Token(TokenType.STRING, "".join(chunks), line, col))
            col += end + 1 - pos
            pos = end + 1
            continue

        if source.startswith("0x", pos) or source.startswith("0X", pos):
            end = pos + 2
            while end < length and (source[end] in "0123456789abcdefABCDEF"):
                end += 1
            if end == pos + 2:
                raise error("empty hex literal")
            tokens.append(Token(TokenType.HEX_LITERAL, source[pos:end], line, col))
            col += end - pos
            pos = end
            continue

        if ch.isdigit():
            end = pos
            while end < length and (source[end].isdigit() or source[end] == "_"):
                end += 1
            if end < length and source[end] == "e":  # scientific: 1e18
                exp_end = end + 1
                while exp_end < length and source[exp_end].isdigit():
                    exp_end += 1
                if exp_end > end + 1:
                    end = exp_end
            tokens.append(
                Token(TokenType.NUMBER, source[pos:end].replace("_", ""),
                      line, col)
            )
            col += end - pos
            pos = end
            continue

        if ch.isalpha() or ch == "$":
            end = pos
            while end < length and (source[end].isalnum() or source[end] in "_$"):
                end += 1
            word = source[pos:end]
            token_type = (
                TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            )
            tokens.append(Token(token_type, word, line, col))
            col += end - pos
            pos = end
            continue

        if ch == "_":
            # Either the modifier placeholder `_;` or part of an ident.
            end = pos
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            word = source[pos:end]
            if word == "_":
                tokens.append(Token(TokenType.OP, "_", line, col))
            else:
                tokens.append(Token(TokenType.IDENT, word, line, col))
            col += end - pos
            pos = end
            continue

        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token(TokenType.OP, op, line, col))
                col += len(op)
                pos += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
