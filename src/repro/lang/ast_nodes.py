"""Abstract syntax tree for Solis.

Nodes are plain dataclasses.  The semantic analyser decorates
expressions with a ``resolved_type`` attribute and declarations with
layout information; code generation consumes the decorated tree.

Every node can be rendered back to source via ``to_source()`` — the
paper's protocol needs this because the contract *splitter* works on
ASTs and the split halves must be re-emitted as canonical source that
every participant compiles to identical bytecode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang.types import SolisType

_INDENT = "    "


@dataclass
class Node:
    """Base AST node with source position."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Types as written in source (resolved to SolisType by sema)
# ---------------------------------------------------------------------------

@dataclass
class TypeName(Node):
    """A source-level type: name, optional mapping/array structure."""

    name: str                                # 'uint256', 'mapping', 'array', or contract name
    key_type: Optional["TypeName"] = None    # for mappings
    value_type: Optional["TypeName"] = None  # for mappings / arrays
    array_length: Optional[int] = None       # for fixed arrays

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        if self.name == "mapping":
            return (f"mapping({self.key_type.to_source()} => "
                    f"{self.value_type.to_source()})")
        if self.name == "array":
            return f"{self.value_type.to_source()}[{self.array_length}]"
        return self.name


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    """Base expression; sema sets ``resolved_type``."""

    resolved_type: Optional[SolisType] = field(default=None, kw_only=True)

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        raise NotImplementedError


@dataclass
class NumberLiteral(Expr):
    """Decimal integer literal."""
    value: int = 0

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return str(self.value)


@dataclass
class BoolLiteral(Expr):
    """``true`` / ``false`` literal."""
    value: bool = False

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return "true" if self.value else "false"


@dataclass
class HexLiteral(Expr):
    """A 0x... literal — a number or fixed-bytes constant."""

    text: str = "0x0"

    @property
    def value(self) -> int:
        """The literal's integer value."""
        return int(self.text, 16)

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return self.text


@dataclass
class StringLiteral(Expr):
    """Double-quoted string literal."""
    value: str = ""

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'


@dataclass
class Identifier(Expr):
    """A bare name reference."""
    name: str = ""

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return self.name


@dataclass
class MemberAccess(Expr):
    """obj.member — msg.sender, addr.balance, iface.fn, ..."""

    object: Expr = None
    member: str = ""

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return f"{self.object.to_source()}.{self.member}"


@dataclass
class IndexAccess(Expr):
    """base[index] — mappings and arrays."""

    base: Expr = None
    index: Expr = None

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return f"{self.base.to_source()}[{self.index.to_source()}]"


@dataclass
class BinaryOp(Expr):
    """Infix binary operation."""
    op: str = "+"
    left: Expr = None
    right: Expr = None

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return f"({self.left.to_source()} {self.op} {self.right.to_source()})"


@dataclass
class UnaryOp(Expr):
    """Prefix unary operation."""
    op: str = "!"
    operand: Expr = None

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return f"{self.op}{self.operand.to_source()}"


@dataclass
class FunctionCall(Expr):
    """callee(args) — internal calls, builtins, casts, external calls."""

    callee: Expr = None
    arguments: list[Expr] = field(default_factory=list)

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        args = ", ".join(arg.to_source() for arg in self.arguments)
        return f"{self.callee.to_source()}({args})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    """Base statement node."""
    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        raise NotImplementedError


@dataclass
class Block(Stmt):
    """A ``{ ... }`` statement list."""
    statements: list[Stmt] = field(default_factory=list)

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        inner = "\n".join(s.to_source(indent + 1) for s in self.statements)
        return f"{pad}{{\n{inner}\n{pad}}}" if inner else f"{pad}{{ }}"


@dataclass
class VarDeclStmt(Stmt):
    """Local variable declaration."""
    type_name: TypeName = None
    name: str = ""
    initial: Optional[Expr] = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        init = f" = {self.initial.to_source()}" if self.initial else ""
        return f"{pad}{self.type_name.to_source()} {self.name}{init};"


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect."""
    expression: Expr = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        return f"{_INDENT * indent}{self.expression.to_source()};"


@dataclass
class Assignment(Stmt):
    """target = value (also compound ops desugared by the parser)."""

    target: Expr = None
    value: Expr = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        return (f"{_INDENT * indent}{self.target.to_source()} = "
                f"{self.value.to_source()};")


@dataclass
class IfStmt(Stmt):
    """``if`` / ``else`` statement."""
    condition: Expr = None
    then_branch: Block = None
    else_branch: Optional[Block] = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        text = (f"{pad}if ({self.condition.to_source()})\n"
                f"{self.then_branch.to_source(indent)}")
        if self.else_branch is not None:
            text += f"\n{pad}else\n{self.else_branch.to_source(indent)}"
        return text


@dataclass
class WhileStmt(Stmt):
    """``while`` loop."""
    condition: Expr = None
    body: Block = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        return (f"{pad}while ({self.condition.to_source()})\n"
                f"{self.body.to_source(indent)}")


@dataclass
class ForStmt(Stmt):
    """C-style ``for`` loop."""
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    update: Optional[Stmt] = None
    body: Block = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        init = self.init.to_source(0).rstrip(";") + ";" if self.init else ";"
        cond = f" {self.condition.to_source()};" if self.condition else ";"
        update = f" {self.update.to_source(0).rstrip(';')}" if self.update else ""
        return f"{pad}for ({init}{cond}{update})\n{self.body.to_source(indent)}"


@dataclass
class ReturnStmt(Stmt):
    """``return`` statement."""
    value: Optional[Expr] = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        if self.value is None:
            return f"{pad}return;"
        return f"{pad}return {self.value.to_source()};"


@dataclass
class RequireStmt(Stmt):
    """``require(condition, message)`` guard."""
    condition: Expr = None
    message: Optional[str] = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        if self.message:
            return f'{pad}require({self.condition.to_source()}, "{self.message}");'
        return f"{pad}require({self.condition.to_source()});"


@dataclass
class EmitStmt(Stmt):
    """``emit Event(args)`` statement."""
    event_name: str = ""
    arguments: list[Expr] = field(default_factory=list)

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        args = ", ".join(a.to_source() for a in self.arguments)
        return f"{_INDENT * indent}emit {self.event_name}({args});"


@dataclass
class RevertStmt(Stmt):
    """``revert();`` or ``revert("reason");`` — unconditional abort."""

    message: Optional[str] = None

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        if self.message:
            return f'{pad}revert("{self.message}");'
        return f"{pad}revert();"


@dataclass
class PlaceholderStmt(Stmt):
    """The `_;` inside a modifier body."""

    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        return f"{_INDENT * indent}_;"


@dataclass
class BreakStmt(Stmt):
    """``break`` statement."""
    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        return f"{_INDENT * indent}break;"


@dataclass
class ContinueStmt(Stmt):
    """``continue`` statement."""
    def to_source(self, indent: int = 0) -> str:
        """Render this node as Solis source text."""
        return f"{_INDENT * indent}continue;"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class Parameter(Node):
    """One function parameter."""
    type_name: TypeName = None
    name: str = ""
    indexed: bool = False

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        indexed = " indexed" if self.indexed else ""
        name = f" {self.name}" if self.name else ""
        return f"{self.type_name.to_source()}{indexed}{name}"


@dataclass
class StateVarDecl(Node):
    """Contract storage variable declaration."""
    type_name: TypeName = None
    name: str = ""
    visibility: str = "internal"
    initial: Optional[Expr] = None
    # filled by sema:
    slot: int = field(default=-1, kw_only=True)
    resolved_type: Optional[SolisType] = field(default=None, kw_only=True)

    def to_source(self, indent: int = 1) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        vis = f" {self.visibility}" if self.visibility != "internal" else ""
        init = f" = {self.initial.to_source()}" if self.initial else ""
        return f"{pad}{self.type_name.to_source()}{vis} {self.name}{init};"


@dataclass
class ModifierDecl(Node):
    """Function modifier declaration."""
    name: str = ""
    parameters: list[Parameter] = field(default_factory=list)
    body: Block = None

    def to_source(self, indent: int = 1) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        params = ", ".join(p.to_source() for p in self.parameters)
        params_text = f"({params})" if self.parameters else ""
        return f"{pad}modifier {self.name}{params_text}\n{self.body.to_source(indent)}"


@dataclass
class EventDecl(Node):
    """Event declaration."""
    name: str = ""
    parameters: list[Parameter] = field(default_factory=list)

    def to_source(self, indent: int = 1) -> str:
        """Render this node as Solis source text."""
        params = ", ".join(p.to_source() for p in self.parameters)
        return f"{_INDENT * indent}event {self.name}({params});"


@dataclass
class FunctionDecl(Node):
    """Function (or constructor) declaration."""
    name: str = ""                       # "" for constructor
    parameters: list[Parameter] = field(default_factory=list)
    returns: list[TypeName] = field(default_factory=list)
    visibility: str = "public"
    is_payable: bool = False
    is_view: bool = False
    modifiers: list[str] = field(default_factory=list)
    body: Optional[Block] = None         # None for interface declarations
    is_constructor: bool = False
    is_synthetic: bool = False           # compiler-generated (public getters)

    @property
    def is_external_facing(self) -> bool:
        """Callable from outside the contract (gets an ABI dispatcher arm)."""
        return self.visibility in ("public", "external")

    def to_source(self, indent: int = 1) -> str:
        """Render this node as Solis source text."""
        pad = _INDENT * indent
        params = ", ".join(p.to_source() for p in self.parameters)
        head = "constructor" if self.is_constructor else f"function {self.name}"
        parts = [f"{pad}{head}({params})"]
        if not self.is_constructor:
            parts.append(self.visibility)
        if self.is_payable:
            parts.append("payable")
        if self.is_view:
            parts.append("view")
        parts.extend(self.modifiers)
        if self.returns:
            rets = ", ".join(t.to_source() for t in self.returns)
            parts.append(f"returns ({rets})")
        signature = " ".join(parts)
        if self.body is None:
            return f"{signature};"
        return f"{signature}\n{self.body.to_source(indent)}"


@dataclass
class ContractDecl(Node):
    """Contract or interface declaration."""
    name: str = ""
    is_interface: bool = False
    state_vars: list[StateVarDecl] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)
    modifiers: list[ModifierDecl] = field(default_factory=list)
    events: list[EventDecl] = field(default_factory=list)

    @property
    def constructor(self) -> Optional[FunctionDecl]:
        """The constructor declaration, if present."""
        for fn in self.functions:
            if fn.is_constructor:
                return fn
        return None

    def function(self, name: str) -> Optional[FunctionDecl]:
        """Look up a member function by name (None if absent)."""
        for fn in self.functions:
            if fn.name == name and not fn.is_constructor:
                return fn
        return None

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        keyword = "interface" if self.is_interface else "contract"
        members: list[str] = []
        members.extend(v.to_source() for v in self.state_vars)
        members.extend(e.to_source() for e in self.events)
        members.extend(m.to_source() for m in self.modifiers)
        members.extend(
            f.to_source() for f in self.functions if not f.is_synthetic
        )
        body = "\n\n".join(members)
        return f"{keyword} {self.name} {{\n{body}\n}}"


@dataclass
class SourceUnit(Node):
    """A whole compilation unit (one or more contracts/interfaces)."""

    contracts: list[ContractDecl] = field(default_factory=list)

    def contract(self, name: str) -> ContractDecl:
        """Look up a contract by name (KeyError if absent)."""
        for contract in self.contracts:
            if contract.name == name:
                return contract
        raise KeyError(f"no contract named {name!r}")

    def to_source(self) -> str:
        """Render this node as Solis source text."""
        return "\n\n".join(c.to_source() for c in self.contracts)
