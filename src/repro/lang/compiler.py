"""The Solis compiler driver.

``compile_source`` turns Solis text into :class:`CompiledContract`
objects: deterministic init/runtime bytecode plus a
:class:`repro.chain.contract.ContractABI`.  Determinism matters — the
paper's protocol has every participant compile the off-chain contract
independently and sign the *bytecode hash*, so identical source must
always produce identical bytes ("all the participants should use the
same version of compiler", §IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.chain.contract import ContractABI, EventABI, FunctionABI
from repro.crypto.keccak import keccak256
from repro.lang import ast_nodes as ast
from repro.lang.codegen import CodeGenerator
from repro.lang.errors import SolisError
from repro.lang.parser import parse
from repro.lang.sema import ContractInfo, analyze

COMPILER_VERSION = "solis-0.1.0"


@dataclass(frozen=True)
class CompiledContract:
    """Compilation output for one contract."""

    name: str
    init_code: bytes
    runtime_code: bytes
    abi: ContractABI
    source: str
    compiler_version: str = COMPILER_VERSION

    @property
    def bytecode_hash(self) -> bytes:
        """keccak256 of the init code — what participants sign (Alg. 4)."""
        return keccak256(self.init_code)

    @property
    def init_code_hex(self) -> str:
        """The init bytecode as a 0x-prefixed hex string."""
        return "0x" + self.init_code.hex()


@dataclass(frozen=True)
class CompilationResult:
    """All contracts from one source unit."""

    contracts: dict[str, CompiledContract]
    unit: ast.SourceUnit

    def contract(self, name: str) -> CompiledContract:
        """The compiled contract called ``name`` (KeyError if absent)."""
        try:
            return self.contracts[name]
        except KeyError:
            raise SolisError(
                f"no deployable contract {name!r}; "
                f"compiled: {sorted(self.contracts)}"
            ) from None


def _build_abi(info: ContractInfo) -> ContractABI:
    functions = []
    constructor_inputs: tuple[str, ...] = ()
    for key, fn_info in info.functions.items():
        decl = fn_info.decl
        if decl.is_constructor:
            constructor_inputs = fn_info.abi_inputs
            continue
        if not decl.is_external_facing:
            continue
        outputs = ()
        if fn_info.return_type.abi_name is not None:
            outputs = (fn_info.return_type.abi_name,)
        functions.append(FunctionABI(
            name=decl.name,
            inputs=fn_info.abi_inputs,
            outputs=outputs,
            payable=decl.is_payable,
            constant=decl.is_view,
        ))
    events = [
        EventABI(name=ev.name, inputs=ev.abi_inputs)
        for ev in info.events.values()
    ]
    return ContractABI(
        contract_name=info.name,
        functions=tuple(functions),
        events=tuple(events),
        constructor_inputs=constructor_inputs,
    )


@lru_cache(maxsize=128)
def compile_source(source: str) -> CompilationResult:
    """Compile Solis source; returns every non-interface contract.

    Compilation is deterministic and the result is treated as
    immutable, so identical sources are memoised — a fleet of protocol
    sessions over the same app source compiles it exactly once.
    """
    unit = parse(source)
    infos = analyze(unit)
    contracts: dict[str, CompiledContract] = {}
    for name, info in infos.items():
        if info.is_abstract:
            continue
        generator = CodeGenerator(info, infos)
        runtime_code = generator.generate_runtime()
        init_code = generator.generate_init(runtime_code)
        contracts[name] = CompiledContract(
            name=name,
            init_code=init_code,
            runtime_code=runtime_code,
            abi=_build_abi(info),
            source=source,
        )
    return CompilationResult(contracts=contracts, unit=unit)


def compile_contract(source: str, name: str | None = None) -> CompiledContract:
    """Compile and return a single contract (the only one, or by name)."""
    result = compile_source(source)
    if name is not None:
        return result.contract(name)
    if len(result.contracts) != 1:
        raise SolisError(
            "source defines multiple contracts; pass a name: "
            f"{sorted(result.contracts)}"
        )
    return next(iter(result.contracts.values()))
