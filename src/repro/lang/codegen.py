"""EVM code generation for Solis.

Lowers the analysed AST to EVM bytecode via the :class:`Program`
builder.  Layout decisions (all compile-time static):

* memory ``0x00..0x3f`` — scratch (hashing, external-call returns);
* memory ``0x40`` — free-memory pointer (Solidity convention);
* memory ``0x80..`` — statically allocated local-variable slots, one
  region per function (locals live in memory, not on the stack, which
  keeps expression codegen simple and calls non-reentrant but cheap);
* storage — slot per state variable; mapping values at
  ``keccak256(key ‖ slot)``; fixed arrays occupy consecutive slots.

Functions compile to internal subroutines with a
``[... return_label] -> [... return_value?]`` stack convention; public
functions additionally get an ABI dispatcher arm that decodes calldata
into the function's parameter slots and encodes the return value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.assembler import Program
from repro.lang import ast_nodes as ast
from repro.lang.errors import CodegenError
from repro.lang.sema import ContractInfo, EventInfo, FunctionInfo
from repro.lang.types import (
    AddressType,
    ArrayType,
    BytesType,
    ContractType,
    FixedBytesType,
    MappingType,
    SolisType,
    UIntType,
    VoidType,
)

_SCRATCH0 = 0x00
_SCRATCH1 = 0x20
_FREE_PTR = 0x40
_LOCALS_BASE = 0x80
_ADDRESS_MASK = (1 << 160) - 1


@dataclass
class _FunctionLayout:
    """Static memory layout of one function's params + locals."""

    slots: dict[str, int] = field(default_factory=dict)
    params_base: int = 0
    params_size: int = 0
    return_slot: int = 0


class CodeGenerator:
    """Generates runtime and init bytecode for one contract."""

    def __init__(self, info: ContractInfo,
                 all_contracts: dict[str, ContractInfo]) -> None:
        self.info = info
        self.contracts = all_contracts
        self.layouts: dict[str, _FunctionLayout] = {}
        self._free_base = _LOCALS_BASE
        self._loop_stack: list[tuple[str, str]] = []  # (continue, break)
        self._allocate_layouts()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def _allocate_layouts(self) -> None:
        cursor = _LOCALS_BASE
        for key, fn_info in self.info.functions.items():
            decl = fn_info.decl
            if decl.body is None:
                continue
            layout = _FunctionLayout()
            layout.params_base = cursor
            local_list = getattr(decl, "locals", [])
            for index, (name, _type) in enumerate(local_list):
                layout.slots[name] = cursor
                cursor += 32
                if index == len(decl.parameters) - 1:
                    layout.params_size = cursor - layout.params_base
            if not decl.parameters:
                layout.params_size = 0
            layout.return_slot = cursor
            cursor += 32
            self.layouts[key] = layout
        self._free_base = cursor

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def generate_runtime(self) -> bytes:
        """The deployed (runtime) bytecode with its ABI dispatcher."""
        program = Program()
        self._emit_prologue(program)
        self._emit_dispatcher(program)
        for key, fn_info in self.info.functions.items():
            if fn_info.decl.body is None or fn_info.decl.is_constructor:
                continue
            self._emit_function(program, key, fn_info)
        return program.assemble()

    def generate_init(self, runtime_code: bytes) -> bytes:
        """Init bytecode: run the constructor, deploy ``runtime_code``.

        Constructor arguments (ABI-encoded, static types only) are
        expected appended to the init code in the deploy transaction.
        """
        program = Program()
        self._emit_prologue(program)

        ctor = self.info.functions.get("constructor")
        if ctor is not None and ctor.decl.body is not None:
            layout = self.layouts["constructor"]
            args_size = 32 * len(ctor.decl.parameters)
            if args_size:
                # CODECOPY the appended args into the parameter slots.
                program.push(args_size)
                program.op("CODESIZE").push(args_size).op("SWAP1").op("SUB")
                program.push(layout.params_base)
                # stack: [size, args_offset, dest] -> CODECOPY(dest, off, size)
                program.op("CODECOPY")
            self._emit_inline_body(program, "constructor", ctor)

        runtime_label = "__runtime_code"
        program.push(len(runtime_code))
        program.push_label(runtime_label)
        program.push(self._free_base)
        # stack: [len, offset, dest] -> CODECOPY(dest, offset, len)
        program.op("CODECOPY")
        # RETURN pops offset (top) then size: push size, then offset.
        program.push(len(runtime_code)).push(self._free_base)
        program.op("RETURN")
        program.mark(runtime_label)
        program.raw(runtime_code)
        return program.assemble()

    def _emit_prologue(self, program: Program) -> None:
        # MSTORE pops offset (top) then value: push value, then offset.
        program.push(self._free_base).push(_FREE_PTR).op("MSTORE")

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    def _emit_dispatcher(self, program: Program) -> None:
        revert_label = "__no_match"
        # calldatasize < 4 -> revert
        program.push(4).op("CALLDATASIZE").op("LT")
        program.jumpi_to(revert_label)
        # selector = calldata[0:4]
        program.push(0).op("CALLDATALOAD").push(0xE0).op("SHR")
        for key, fn_info in self.info.functions.items():
            decl = fn_info.decl
            if decl.is_constructor or decl.body is None:
                continue
            if not decl.is_external_facing:
                continue
            program.op("DUP1")
            program.push(int.from_bytes(fn_info.selector, "big"), width=4)
            program.op("EQ")
            program.jumpi_to(f"__ext_{key}")
        program.op("POP")
        program.label(revert_label)
        self._emit_revert(program)

    def _emit_revert(self, program: Program) -> None:
        program.push(0).push(0).op("REVERT")

    def _emit_revert_with_reason(self, program: Program,
                                 message: str) -> None:
        """REVERT with Solidity's ``Error(string)`` ABI payload.

        Layout: selector 0x08c379a0 ‖ offset(0x20) ‖ length ‖ data.
        Written at memory 0 — the frame is about to die, so clobbering
        scratch space is harmless.
        """
        payload = message.encode("utf-8")
        selector_word = 0x08C379A0 << (8 * 28)
        program.push(selector_word, width=32).push(0).op("MSTORE")
        program.push(0x20).push(4).op("MSTORE")
        program.push(len(payload)).push(36).op("MSTORE")
        for offset in range(0, len(payload), 32):
            chunk = payload[offset:offset + 32].ljust(32, b"\x00")
            program.push_bytes(chunk).push(68 + offset).op("MSTORE")
        padded = (len(payload) + 31) // 32 * 32
        program.push(4 + 64 + padded).push(0).op("REVERT")

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _emit_function(self, program: Program, key: str,
                       fn_info: FunctionInfo) -> None:
        decl = fn_info.decl
        if decl.is_external_facing:
            self._emit_external_wrapper(program, key, fn_info)
        self._emit_core(program, key, fn_info)

    def _emit_external_wrapper(self, program: Program, key: str,
                               fn_info: FunctionInfo) -> None:
        decl = fn_info.decl
        layout = self.layouts[key]
        program.label(f"__ext_{key}")
        program.op("POP")  # drop the selector copy

        if not decl.is_payable:
            ok = program.fresh_label("nonpayable")
            program.op("CALLVALUE").op("ISZERO")
            program.jumpi_to(ok)
            self._emit_revert(program)
            program.label(ok)

        head_offset = 4
        for param, ptype in zip(decl.parameters, fn_info.param_types):
            slot = layout.slots[param.name]
            if isinstance(ptype, BytesType):
                self._emit_decode_bytes_param(program, head_offset, slot)
            else:
                program.push(head_offset).op("CALLDATALOAD")
                self._emit_mask_for_type(program, ptype)
                program.push(slot).op("MSTORE")
            head_offset += 32

        # Call the core subroutine.
        done = f"__extdone_{key}"
        program.push_label(done)
        program.jump_to(f"__core_{key}")
        program.label(done)
        if isinstance(fn_info.return_type, VoidType):
            program.op("STOP")
        else:
            program.push(_SCRATCH0).op("MSTORE")
            program.push(32).push(_SCRATCH0).op("RETURN")

    def _emit_decode_bytes_param(self, program: Program, head_offset: int,
                                 slot: int) -> None:
        """Copy a dynamic bytes argument from calldata into fresh memory.

        Memory form: [length ‖ data...], pointer saved in the local slot.
        """
        ceil32_mask = (1 << 256) - 32  # ~31 over 256 bits
        # data_offset_in_calldata = 4 + calldataload(head)
        program.push(head_offset).op("CALLDATALOAD").push(4).op("ADD")
        # stack: [arg_off]; length:
        program.op("DUP1").op("CALLDATALOAD")          # [ao, len]
        # allocate at the free pointer
        program.push(_FREE_PTR).op("MLOAD")            # [ao, len, ptr]
        # store pointer into the local slot
        program.op("DUP1").push(slot).op("MSTORE")     # [ao, len, ptr]
        # write length word: MSTORE(offset=ptr, value=len)
        program.op("DUP2").op("DUP2").op("MSTORE")     # [ao, len, ptr]
        # copy data: CALLDATACOPY(dest=ptr+32, src=ao+32, size=len)
        program.op("DUP2")                             # [ao, len, ptr, len]
        program.op("DUP4").push(32).op("ADD")          # [ao, len, ptr, len, ao+32]
        program.op("DUP3").push(32).op("ADD")          # [.., len, ao+32, ptr+32]
        program.op("CALLDATACOPY")                     # [ao, len, ptr]
        # bump the free pointer: free = ptr + 32 + ceil32(len)
        program.op("SWAP1")                            # [ao, ptr, len]
        program.push(31).op("ADD")
        program.push(ceil32_mask, width=32).op("AND")  # ceil32(len)
        program.push(32).op("ADD").op("ADD")           # [ao, new_free]
        program.push(_FREE_PTR).op("MSTORE")           # [ao]
        program.op("POP")

    def _reserve_memory(self, program: Program, size: int) -> None:
        """Allocate ``size`` bytes at the free pointer; leave base on stack.

        Bumping the pointer *before* evaluating nested expressions is
        essential: argument expressions may contain internal calls that
        themselves allocate scratch memory (keccak packing, other
        external calls) and would otherwise clobber the region.
        """
        program.push(_FREE_PTR).op("MLOAD")       # [base]
        program.op("DUP1").push(size).op("ADD")   # [base, base+size]
        program.push(_FREE_PTR).op("MSTORE")      # [base]

    def _emit_mask_for_type(self, program: Program, ptype: SolisType) -> None:
        if isinstance(ptype, UIntType) and ptype.bits < 256:
            program.push((1 << ptype.bits) - 1).op("AND")
        elif isinstance(ptype, (AddressType, ContractType)):
            program.push(_ADDRESS_MASK).op("AND")

    def _emit_core(self, program: Program, key: str,
                   fn_info: FunctionInfo) -> None:
        decl = fn_info.decl
        program.label(f"__core_{key}")
        self._emit_inline_body(program, key, fn_info)
        # Exit: stack is [return_label]; push return value if any.
        program.label(f"__exit_{key}")
        if isinstance(fn_info.return_type, VoidType):
            program.op("JUMP")
        else:
            layout = self.layouts[key]
            program.push(layout.return_slot).op("MLOAD")
            program.op("SWAP1").op("JUMP")

    def _emit_inline_body(self, program: Program, key: str,
                          fn_info: FunctionInfo) -> None:
        """Function body with modifiers inlined outside-in."""
        decl = fn_info.decl
        ctx = _FnContext(generator=self, program=program, key=key,
                         fn_info=fn_info)
        body_chain: list[ast.Block] = [
            self.info.modifiers[m].body for m in decl.modifiers
        ]
        body_chain.append(decl.body)
        self._emit_chain(ctx, body_chain, 0)

    def _emit_chain(self, ctx: "_FnContext", chain: list[ast.Block],
                    depth: int) -> None:
        """Emit chain[depth], expanding `_;` to chain[depth+1]."""
        block = chain[depth]
        for stmt in block.statements:
            if isinstance(stmt, ast.PlaceholderStmt):
                self._emit_chain(ctx, chain, depth + 1)
            else:
                self._emit_statement(ctx, stmt)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _emit_statement(self, ctx: "_FnContext", stmt: ast.Stmt) -> None:
        program = ctx.program
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._emit_statement(ctx, inner)
        elif isinstance(stmt, ast.VarDeclStmt):
            if stmt.initial is not None:
                self._emit_expr(ctx, stmt.initial)
            else:
                program.push(0)
            slot = ctx.layout.slots[stmt.name]
            program.push(slot).op("MSTORE")
        elif isinstance(stmt, ast.Assignment):
            self._emit_assignment(ctx, stmt)
        elif isinstance(stmt, ast.ExprStmt):
            result_type = stmt.expression.resolved_type
            self._emit_expr(ctx, stmt.expression)
            if not isinstance(result_type, VoidType):
                program.op("POP")
        elif isinstance(stmt, ast.IfStmt):
            else_label = program.fresh_label("else")
            end_label = program.fresh_label("endif")
            self._emit_expr(ctx, stmt.condition)
            program.op("ISZERO")
            program.jumpi_to(else_label)
            for inner in stmt.then_branch.statements:
                self._emit_statement(ctx, inner)
            program.jump_to(end_label)
            program.label(else_label)
            if stmt.else_branch is not None:
                for inner in stmt.else_branch.statements:
                    self._emit_statement(ctx, inner)
            program.label(end_label)
        elif isinstance(stmt, ast.WhileStmt):
            top = program.fresh_label("while")
            end = program.fresh_label("wend")
            program.label(top)
            self._emit_expr(ctx, stmt.condition)
            program.op("ISZERO")
            program.jumpi_to(end)
            self._loop_stack.append((top, end))
            for inner in stmt.body.statements:
                self._emit_statement(ctx, inner)
            self._loop_stack.pop()
            program.jump_to(top)
            program.label(end)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._emit_statement(ctx, stmt.init)
            top = program.fresh_label("for")
            cont = program.fresh_label("fcont")
            end = program.fresh_label("fend")
            program.label(top)
            if stmt.condition is not None:
                self._emit_expr(ctx, stmt.condition)
                program.op("ISZERO")
                program.jumpi_to(end)
            self._loop_stack.append((cont, end))
            for inner in stmt.body.statements:
                self._emit_statement(ctx, inner)
            self._loop_stack.pop()
            program.label(cont)
            if stmt.update is not None:
                self._emit_statement(ctx, stmt.update)
            program.jump_to(top)
            program.label(end)
        elif isinstance(stmt, ast.BreakStmt):
            if not self._loop_stack:
                raise CodegenError("break outside a loop",
                                   stmt.line, stmt.column)
            program.jump_to(self._loop_stack[-1][1])
        elif isinstance(stmt, ast.ContinueStmt):
            if not self._loop_stack:
                raise CodegenError("continue outside a loop",
                                   stmt.line, stmt.column)
            program.jump_to(self._loop_stack[-1][0])
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._emit_expr(ctx, stmt.value)
                program.push(ctx.layout.return_slot).op("MSTORE")
            program.jump_to(f"__exit_{ctx.key}")
        elif isinstance(stmt, ast.RequireStmt):
            ok = ctx.program.fresh_label("require_ok")
            self._emit_expr(ctx, stmt.condition)
            program.jumpi_to(ok)
            if stmt.message:
                self._emit_revert_with_reason(program, stmt.message)
            else:
                self._emit_revert(program)
            program.label(ok)
        elif isinstance(stmt, ast.EmitStmt):
            self._emit_event(ctx, stmt)
        elif isinstance(stmt, ast.RevertStmt):
            if stmt.message:
                self._emit_revert_with_reason(program, stmt.message)
            else:
                self._emit_revert(program)
        else:
            raise CodegenError(
                f"cannot generate code for {type(stmt).__name__}",
                stmt.line, stmt.column,
            )

    def _emit_assignment(self, ctx: "_FnContext", stmt: ast.Assignment) -> None:
        program = ctx.program
        target = stmt.target
        self._emit_expr(ctx, stmt.value)
        if isinstance(target, ast.Identifier):
            binding = target.binding
            if binding[0] == "local":
                program.push(ctx.layout.slots[binding[1]]).op("MSTORE")
                return
            if binding[0] == "state":
                slot, vtype = self.info.storage[binding[1]]
                if isinstance(vtype, (MappingType, ArrayType)):
                    raise CodegenError(
                        "cannot assign a whole mapping/array",
                        stmt.line, stmt.column,
                    )
                program.push(slot).op("SSTORE")
                return
            raise CodegenError("unsupported assignment target",
                               stmt.line, stmt.column)
        if isinstance(target, ast.IndexAccess):
            self._emit_storage_slot(ctx, target)
            program.op("SSTORE")
            return
        raise CodegenError("unsupported assignment target",
                           stmt.line, stmt.column)

    def _emit_event(self, ctx: "_FnContext", stmt: ast.EmitStmt) -> None:
        program = ctx.program
        event: EventInfo = stmt.event_info
        data_args = [
            (arg, ptype)
            for arg, ptype, indexed in zip(
                stmt.arguments, event.param_types, event.indexed_flags)
            if not indexed
        ]
        topic_args = [
            arg
            for arg, indexed in zip(stmt.arguments, event.indexed_flags)
            if indexed
        ]
        # Topics are pushed so that topic1 is on top at LOG time; LOGn
        # pops offset, size, then topics in order.
        for arg in reversed(topic_args):
            self._emit_expr(ctx, arg)
        topic0 = int.from_bytes(event.topic, "big")
        program.push(topic0, width=32)
        # Build the data section in a reserved region.
        self._reserve_memory(program, 32 * len(data_args))  # [topics..., base]
        for index, (arg, _ptype) in enumerate(data_args):
            self._emit_expr(ctx, arg)        # [.., base, value]
            program.op("DUP2")
            if index:
                program.push(32 * index).op("ADD")
            program.op("MSTORE")             # [.., base]
        program.push(32 * len(data_args))    # [.., base, size]
        program.op("SWAP1")                  # [.., size, base] -> LOG pops offset first
        program.op(f"LOG{1 + len(topic_args)}")

    # ------------------------------------------------------------------
    # Expressions — each leaves exactly one word on the stack
    # ------------------------------------------------------------------

    def _emit_expr(self, ctx: "_FnContext", expr: ast.Expr) -> None:
        program = ctx.program
        if isinstance(expr, ast.NumberLiteral):
            program.push(expr.value)
        elif isinstance(expr, ast.HexLiteral):
            program.push(expr.value)
        elif isinstance(expr, ast.BoolLiteral):
            program.push(1 if expr.value else 0)
        elif isinstance(expr, ast.Identifier):
            self._emit_identifier(ctx, expr)
        elif isinstance(expr, ast.MemberAccess):
            self._emit_member(ctx, expr)
        elif isinstance(expr, ast.IndexAccess):
            self._emit_storage_slot(ctx, expr)
            program.op("SLOAD")
        elif isinstance(expr, ast.BinaryOp):
            self._emit_binary(ctx, expr)
        elif isinstance(expr, ast.UnaryOp):
            self._emit_unary(ctx, expr)
        elif isinstance(expr, ast.FunctionCall):
            self._emit_call(ctx, expr)
        else:
            raise CodegenError(
                f"cannot generate code for {type(expr).__name__}",
                expr.line, expr.column,
            )

    def _emit_identifier(self, ctx: "_FnContext", expr: ast.Identifier) -> None:
        program = ctx.program
        binding = expr.binding
        kind = binding[0]
        if kind == "local":
            program.push(ctx.layout.slots[binding[1]]).op("MLOAD")
        elif kind == "state":
            slot, vtype = self.info.storage[binding[1]]
            if isinstance(vtype, (MappingType, ArrayType)):
                raise CodegenError(
                    "mappings/arrays cannot be read as a whole",
                    expr.line, expr.column,
                )
            program.push(slot).op("SLOAD")
        elif kind == "builtin" and binding[1] == "timestamp":
            program.op("TIMESTAMP")
        elif kind == "builtin" and binding[1] == "this":
            program.op("ADDRESS")
        else:
            raise CodegenError(f"identifier {expr.name!r} is not a value",
                               expr.line, expr.column)

    def _emit_member(self, ctx: "_FnContext", expr: ast.MemberAccess) -> None:
        program = ctx.program
        binding = getattr(expr, "binding", None)
        if binding is None:
            raise CodegenError(f"member {expr.member!r} is not a value",
                               expr.line, expr.column)
        kind = binding[0]
        if kind == "env":
            opcode = {
                "caller": "CALLER", "callvalue": "CALLVALUE",
                "timestamp": "TIMESTAMP", "number": "NUMBER",
                "origin": "ORIGIN",
            }[binding[1]]
            program.op(opcode)
        elif kind == "balance":
            self._emit_expr(ctx, expr.object)
            program.op("BALANCE")
        elif kind == "bytes_length":
            self._emit_expr(ctx, expr.object)
            program.op("MLOAD")
        else:
            raise CodegenError(f"member {expr.member!r} is not a value",
                               expr.line, expr.column)

    def _emit_storage_slot(self, ctx: "_FnContext",
                           expr: ast.IndexAccess) -> None:
        """Leave the storage slot number of ``base[index]`` on the stack."""
        program = ctx.program
        base = expr.base
        if isinstance(base, ast.Identifier) and base.binding[0] == "state":
            slot, btype = self.info.storage[base.binding[1]]
            if isinstance(btype, ArrayType):
                self._emit_expr(ctx, expr.index)
                # bounds check: index < length
                ok = program.fresh_label("bounds_ok")
                program.op("DUP1").push(btype.length).op("GT")
                # GT pops a(top)=length? stack [idx, idx, len]: GT computes
                # idx? No: after DUP1, [idx, idx]; push len -> [idx, idx, len];
                # GT pops len(top), idx: computes len > idx -> 1 if in bounds.
                program.jumpi_to(ok)
                self._emit_revert(program)
                program.label(ok)
                program.push(slot).op("ADD")
                return
            if isinstance(btype, MappingType):
                self._emit_mapping_slot(ctx, expr.index, lambda: program.push(slot))
                return
            raise CodegenError("only arrays and mappings are indexable",
                               expr.line, expr.column)
        if isinstance(base, ast.IndexAccess):
            # Nested mapping: mapping(k1 => mapping(k2 => v)).
            base_type = base.resolved_type
            if not isinstance(base_type, MappingType):
                raise CodegenError("unsupported nested index expression",
                                   expr.line, expr.column)
            self._emit_mapping_slot(
                ctx, expr.index,
                lambda: self._emit_storage_slot(ctx, base),
            )
            return
        raise CodegenError("unsupported index expression",
                           expr.line, expr.column)

    def _emit_mapping_slot(self, ctx: "_FnContext", key_expr: ast.Expr,
                           emit_parent_slot) -> None:
        """slot = keccak256(key_word ‖ parent_slot_word)."""
        program = ctx.program
        self._emit_expr(ctx, key_expr)
        program.push(_SCRATCH0).op("MSTORE")
        emit_parent_slot()
        program.push(_SCRATCH1).op("MSTORE")
        program.push(64).push(_SCRATCH0)
        # SHA3(offset, size): pops offset then size
        program.op("SHA3")

    def _emit_binary(self, ctx: "_FnContext", expr: ast.BinaryOp) -> None:
        program = ctx.program
        op = expr.op
        if op in ("&&", "||"):
            end = program.fresh_label("shortcircuit")
            self._emit_expr(ctx, expr.left)
            program.op("DUP1")
            if op == "&&":
                program.op("ISZERO")
            program.jumpi_to(end)
            program.op("POP")
            self._emit_expr(ctx, expr.right)
            program.label(end)
            return

        # Left first, so the right operand ends on top where the
        # EVM's non-commutative ops expect their second argument.
        self._emit_expr(ctx, expr.left)
        self._emit_expr(ctx, expr.right)
        if op == "+":
            program.op("ADD")
        elif op == "*":
            program.op("MUL")
        elif op == "-":
            program.op("SWAP1").op("SUB")
        elif op == "/":
            program.op("SWAP1").op("DIV")
        elif op == "%":
            program.op("SWAP1").op("MOD")
        elif op == "==":
            program.op("EQ")
        elif op == "!=":
            program.op("EQ").op("ISZERO")
        elif op == "<":
            program.op("SWAP1").op("LT")
        elif op == ">":
            program.op("SWAP1").op("GT")
        elif op == "<=":
            program.op("SWAP1").op("GT").op("ISZERO")
        elif op == ">=":
            program.op("SWAP1").op("LT").op("ISZERO")
        else:
            raise CodegenError(f"unsupported operator {op!r}",
                               expr.line, expr.column)

    def _emit_unary(self, ctx: "_FnContext", expr: ast.UnaryOp) -> None:
        program = ctx.program
        self._emit_expr(ctx, expr.operand)
        if expr.op == "!":
            program.op("ISZERO")
        elif expr.op == "~":
            program.op("NOT")
        elif expr.op == "-":
            program.push(0).op("SUB")
        else:
            raise CodegenError(f"unsupported unary {expr.op!r}",
                               expr.line, expr.column)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _emit_call(self, ctx: "_FnContext", expr: ast.FunctionCall) -> None:
        kind = getattr(expr, "call_kind", None)
        if kind is None:
            raise CodegenError("unresolved call", expr.line, expr.column)
        tag = kind[0]
        if tag == "hash":
            self._emit_hash_call(ctx, expr, kind[1])
        elif tag == "ecrecover":
            self._emit_ecrecover(ctx, expr)
        elif tag == "create":
            self._emit_create(ctx, expr)
        elif tag == "selfdestruct":
            self._emit_expr(ctx, expr.arguments[0])
            ctx.program.op("SELFDESTRUCT")
        elif tag == "cast":
            self._emit_cast(ctx, expr, kind[1])
        elif tag == "contract_cast":
            self._emit_expr(ctx, expr.arguments[0])
            ctx.program.push(_ADDRESS_MASK).op("AND")
        elif tag == "internal":
            self._emit_internal_call(ctx, expr, kind[1])
        elif tag == "external":
            self._emit_external_call(ctx, expr, kind[1])
        elif tag == "transfer":
            self._emit_transfer(ctx, expr, kind[1])
        else:
            raise CodegenError(f"unsupported call kind {tag!r}",
                               expr.line, expr.column)

    def _emit_cast(self, ctx: "_FnContext", expr: ast.FunctionCall,
                   target: SolisType) -> None:
        self._emit_expr(ctx, expr.arguments[0])
        self._emit_mask_for_type(ctx.program, target)
        if isinstance(target, FixedBytesType) and target.size < 32:
            # bytesN casts keep the high-order bytes.
            mask = ((1 << (8 * target.size)) - 1) << (8 * (32 - target.size))
            ctx.program.push(mask, width=32).op("AND")

    def _emit_hash_call(self, ctx: "_FnContext", expr: ast.FunctionCall,
                        name: str) -> None:
        """keccak256 with Solidity-0.4 packed-argument semantics."""
        program = ctx.program
        if name != "keccak256":
            raise CodegenError(
                f"{name}() is not supported; use keccak256",
                expr.line, expr.column,
            )
        if (len(expr.arguments) == 1
                and isinstance(expr.arguments[0].resolved_type, BytesType)):
            # Hash a bytes value directly: SHA3(ptr+32, len).
            self._emit_expr(ctx, expr.arguments[0])       # [ptr]
            program.op("DUP1").op("MLOAD")                # [ptr, len]
            program.op("SWAP1").push(32).op("ADD")        # [len, ptr+32]
            program.op("SHA3")                            # pops offset, size
            return
        # Packed encoding of value-type arguments into reserved memory.
        total = sum(_packed_width(arg.resolved_type)
                    for arg in expr.arguments)
        # +32: sub-word values are stored via full-word MSTOREs that can
        # spill up to 31 bytes past the packed length.
        self._reserve_memory(program, total + 32)  # [base]
        cursor = 0
        for arg in expr.arguments:
            width = _packed_width(arg.resolved_type)
            self._emit_expr(ctx, arg)                     # [base, v]
            if width < 32:
                program.push(8 * (32 - width)).op("SHL")
            program.op("DUP2")
            if cursor:
                program.push(cursor).op("ADD")
            program.op("MSTORE")                          # [base]
            cursor += width
        program.push(cursor)                              # [base, size]
        program.op("SWAP1")                               # [size, base]
        program.op("SHA3")

    def _emit_ecrecover(self, ctx: "_FnContext",
                        expr: ast.FunctionCall) -> None:
        """ecrecover(h, v, r, s) via the 0x01 precompile."""
        program = ctx.program
        self._reserve_memory(program, 128)        # [base]
        for index, arg in enumerate(expr.arguments):
            self._emit_expr(ctx, arg)             # [base, v]
            program.op("DUP2")
            if index:
                program.push(32 * index).op("ADD")
            program.op("MSTORE")
        # STATICCALL(gas, 1, base, 128, scratch, 32)
        program.push(32).push(_SCRATCH0)          # [base, 32, S0]
        program.push(128)                         # [base, 32, S0, 128]
        program.op("DUP4")                        # in_off = base
        program.push(1)                           # to
        program.op("GAS")
        # stack: [base, out_size, out_off, in_size, in_off, to, gas]
        program.op("STATICCALL")                  # [base, success]
        ok = program.fresh_label("ecrecover_ok")
        program.jumpi_to(ok)
        self._emit_revert(program)
        program.label(ok)                         # [base]
        program.op("POP")
        program.push(_SCRATCH0).op("MLOAD")
        program.push(_ADDRESS_MASK).op("AND")

    def _emit_create(self, ctx: "_FnContext", expr: ast.FunctionCall) -> None:
        """create(bytecode[, value]) — the paper's inline assembly CREATE."""
        program = ctx.program
        self._emit_expr(ctx, expr.arguments[0])   # [ptr]
        program.op("DUP1").op("MLOAD")            # [ptr, len]
        program.op("SWAP1").push(32).op("ADD")    # [len, ptr+32]
        if len(expr.arguments) == 2:
            self._emit_expr(ctx, expr.arguments[1])
        else:
            program.push(0)                       # [len, off, value]
        # CREATE pops value, offset, size.
        program.op("CREATE")
        # Zero address => creation failed: revert (mirrors require(addr != 0)).
        ok = program.fresh_label("create_ok")
        program.op("DUP1")
        program.jumpi_to(ok)
        self._emit_revert(program)
        program.label(ok)

    def _emit_internal_call(self, ctx: "_FnContext", expr: ast.FunctionCall,
                            fn_info: FunctionInfo) -> None:
        program = ctx.program
        if ctx.key == "constructor":
            raise CodegenError(
                "constructors cannot call contract functions (the runtime "
                "code is not addressable from init code)",
                expr.line, expr.column,
            )
        callee_key = fn_info.decl.name
        callee_layout = self.layouts[callee_key]
        for arg in expr.arguments:
            self._emit_expr(ctx, arg)
        for param in reversed(fn_info.decl.parameters):
            program.push(callee_layout.slots[param.name]).op("MSTORE")
        ret = program.fresh_label("ret")
        program.push_label(ret)
        program.jump_to(f"__core_{callee_key}")
        program.label(ret)
        if isinstance(fn_info.return_type, VoidType):
            # Core's exit jumped here with an empty extra stack; push a
            # placeholder so ExprStmt's POP stays uniform?  No — void
            # calls leave nothing, handled by ExprStmt.
            pass

    def _emit_external_call(self, ctx: "_FnContext", expr: ast.FunctionCall,
                            fn_info: FunctionInfo) -> None:
        """Typed cross-contract call with revert bubbling."""
        program = ctx.program
        callee: ast.MemberAccess = expr.callee
        for ptype in fn_info.param_types:
            if isinstance(ptype, BytesType):
                raise CodegenError(
                    "external calls with bytes arguments are not supported",
                    expr.line, expr.column,
                )
        # Build calldata in a reserved region: selector ‖ args.
        self._reserve_memory(program, 4 + 32 * len(expr.arguments))  # [base]
        selector_word = int.from_bytes(
            fn_info.selector + b"\x00" * 28, "big")
        program.push(selector_word, width=32)
        program.op("DUP2").op("MSTORE")               # [base]
        for index, arg in enumerate(expr.arguments):
            self._emit_expr(ctx, arg)
            program.op("DUP2").push(4 + 32 * index).op("ADD")
            program.op("MSTORE")                      # [base]
        returns_value = not isinstance(fn_info.return_type, VoidType)
        out_size = 32 if returns_value else 0
        # CALL(gas, to, value, in_off, in_size, out_off, out_size)
        program.push(out_size).push(_SCRATCH0)        # [base, osz, ooff]
        program.push(4 + 32 * len(expr.arguments))    # in_size
        program.op("DUP4")                            # in_off = base
        program.push(0)                               # value
        self._emit_expr(ctx, callee.object)           # target address
        program.op("GAS")
        program.op("CALL")                            # [base, success]
        ok = program.fresh_label("call_ok")
        program.jumpi_to(ok)
        self._emit_revert(program)
        program.label(ok)
        program.op("POP")                             # drop base
        if returns_value:
            program.push(_SCRATCH0).op("MLOAD")

    def _emit_transfer(self, ctx: "_FnContext", expr: ast.FunctionCall,
                       flavor: str) -> None:
        """addr.transfer(v) / addr.send(v) — 2300-gas value call."""
        program = ctx.program
        callee: ast.MemberAccess = expr.callee
        # CALL(gas=stipend-only, to, value, 0, 0, 0, 0)
        program.push(0).push(0).push(0).push(0)
        self._emit_expr(ctx, expr.arguments[0])   # value
        self._emit_expr(ctx, callee.object)       # to
        program.push(0)                           # gas (stipend is added)
        program.op("CALL")
        if flavor == "transfer":
            ok = program.fresh_label("transfer_ok")
            program.jumpi_to(ok)
            self._emit_revert(program)
            program.label(ok)
        # send leaves the success bool on the stack.


@dataclass
class _FnContext:
    """Codegen context for one function."""

    generator: CodeGenerator
    program: Program
    key: str
    fn_info: FunctionInfo

    @property
    def layout(self) -> _FunctionLayout:
        """The layout record for this function."""
        return self.generator.layouts[self.key]


def _packed_width(stype: SolisType) -> int:
    """Byte width of a value type under packed (soliditySha3) encoding."""
    if isinstance(stype, UIntType):
        return stype.bits // 8
    if isinstance(stype, (AddressType, ContractType)):
        return 20
    if isinstance(stype, FixedBytesType):
        return stype.size
    # bool
    return 1
