"""Recursive-descent parser for Solis.

Accepts the Solidity-0.4-flavoured syntax used in the paper's
Algorithms 1-3 (contracts, modifiers with ``_;``, payable functions,
mappings, fixed arrays, interface declarations) and produces the AST in
:mod:`repro.lang.ast_nodes`.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParserError
from repro.lang.lexer import Token, TokenType, tokenize
from repro.lang.types import type_from_keyword

_UNIT_MULTIPLIERS = {
    "wei": 1,
    "gwei": 10 ** 9,
    "ether": 10 ** 18,
    "seconds": 1,
    "minutes": 60,
    "hours": 3_600,
    "days": 86_400,
    "weeks": 604_800,
}

_VISIBILITIES = ("public", "private", "external", "internal")

_TYPE_KEYWORDS = frozenset({
    "uint", "uint8", "uint16", "uint32", "uint64", "uint128", "uint256",
    "int", "int256", "address", "bool", "bytes", "bytes4", "bytes32",
    "string", "mapping",
})


class Parser:
    """One-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParserError:
        token = self._current
        return ParserError(
            f"{message} (found {token.type.name} {token.value!r})",
            token.line, token.column,
        )

    def _expect_op(self, op: str) -> Token:
        if not self._current.is_op(op):
            raise self._error(f"expected {op!r}")
        return self._advance()

    def _expect_keyword(self, *names: str) -> Token:
        if not self._current.is_keyword(*names):
            raise self._error(f"expected keyword {'/'.join(names)}")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.type != TokenType.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _accept_op(self, op: str) -> bool:
        if self._current.is_op(op):
            self._advance()
            return True
        return False

    def _accept_keyword(self, *names: str) -> Optional[str]:
        if self._current.is_keyword(*names):
            return self._advance().value
        return None

    # -- entry point ----------------------------------------------------------

    def parse_source_unit(self) -> ast.SourceUnit:
        """Parse a whole source unit (pragma + contracts)."""
        contracts: list[ast.ContractDecl] = []
        while self._current.type != TokenType.EOF:
            if self._current.is_keyword("pragma"):
                while not self._accept_op(";"):
                    if self._current.type == TokenType.EOF:
                        raise self._error("unterminated pragma")
                    self._advance()
                continue
            if self._current.is_keyword("contract", "interface"):
                contracts.append(self._parse_contract())
                continue
            raise self._error("expected contract or interface")
        return ast.SourceUnit(contracts=contracts)

    # -- declarations ----------------------------------------------------------

    def _parse_contract(self) -> ast.ContractDecl:
        keyword = self._advance()  # contract | interface
        name = self._expect_ident().value
        contract = ast.ContractDecl(
            name=name,
            is_interface=(keyword.value == "interface"),
            line=keyword.line, column=keyword.column,
        )
        self._expect_op("{")
        while not self._accept_op("}"):
            if self._current.type == TokenType.EOF:
                raise self._error("unterminated contract body")
            self._parse_contract_member(contract)
        return contract

    def _parse_contract_member(self, contract: ast.ContractDecl) -> None:
        token = self._current
        if token.is_keyword("function", "constructor"):
            contract.functions.append(self._parse_function())
        elif token.is_keyword("modifier"):
            contract.modifiers.append(self._parse_modifier())
        elif token.is_keyword("event"):
            contract.events.append(self._parse_event())
        else:
            contract.state_vars.append(self._parse_state_var())

    def _parse_type_name(self) -> ast.TypeName:
        token = self._current
        if token.is_keyword("mapping"):
            self._advance()
            self._expect_op("(")
            key = self._parse_type_name()
            self._expect_op("=>")
            value = self._parse_type_name()
            self._expect_op(")")
            return ast.TypeName(
                name="mapping", key_type=key, value_type=value,
                line=token.line, column=token.column,
            )
        if token.type == TokenType.KEYWORD and type_from_keyword(token.value):
            self._advance()
            base = ast.TypeName(name=token.value,
                                line=token.line, column=token.column)
        elif token.type == TokenType.IDENT:
            self._advance()
            base = ast.TypeName(name=token.value,
                                line=token.line, column=token.column)
        else:
            raise self._error("expected a type name")

        if self._current.is_op("["):
            self._advance()
            if self._current.type != TokenType.NUMBER:
                raise self._error("Solis supports fixed-size arrays only")
            length = int(self._advance().value)
            self._expect_op("]")
            return ast.TypeName(
                name="array", value_type=base, array_length=length,
                line=token.line, column=token.column,
            )
        return base

    def _looks_like_type(self) -> bool:
        token = self._current
        if token.type == TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            return True
        if token.type == TokenType.IDENT:
            nxt = self._peek()
            # "Ident ident" / "Ident[2] ident" — a declaration.
            if nxt.type == TokenType.IDENT or nxt.is_keyword("memory"):
                return True
            if nxt.is_op("[") and self._peek(2).type == TokenType.NUMBER:
                return True
        return False

    def _parse_state_var(self) -> ast.StateVarDecl:
        start = self._current
        type_name = self._parse_type_name()
        visibility = "internal"
        while True:
            vis = self._accept_keyword(*_VISIBILITIES)
            if vis:
                visibility = vis
                continue
            if self._accept_keyword("constant"):
                continue
            break
        name = self._expect_ident().value
        initial = None
        if self._accept_op("="):
            initial = self._parse_expression()
        self._expect_op(";")
        return ast.StateVarDecl(
            type_name=type_name, name=name, visibility=visibility,
            initial=initial, line=start.line, column=start.column,
        )

    def _parse_parameters(self, allow_indexed: bool = False) -> list[ast.Parameter]:
        self._expect_op("(")
        params: list[ast.Parameter] = []
        while not self._accept_op(")"):
            if params:
                self._expect_op(",")
            start = self._current
            type_name = self._parse_type_name()
            indexed = False
            if allow_indexed and self._accept_keyword("indexed"):
                indexed = True
            self._accept_keyword("memory", "calldata", "storage")
            name = ""
            if self._current.type == TokenType.IDENT:
                name = self._advance().value
            params.append(ast.Parameter(
                type_name=type_name, name=name, indexed=indexed,
                line=start.line, column=start.column,
            ))
        return params

    def _parse_function(self) -> ast.FunctionDecl:
        start = self._advance()  # function | constructor
        is_constructor = start.value == "constructor"
        name = "" if is_constructor else self._expect_ident().value
        parameters = self._parse_parameters()

        visibility = "public"
        is_payable = False
        is_view = False
        modifiers: list[str] = []
        returns: list[ast.TypeName] = []
        while True:
            vis = self._accept_keyword(*_VISIBILITIES)
            if vis:
                visibility = vis
                continue
            if self._accept_keyword("payable"):
                is_payable = True
                continue
            if self._accept_keyword("view", "pure", "constant"):
                is_view = True
                continue
            if self._current.is_keyword("returns"):
                self._advance()
                self._expect_op("(")
                returns.append(self._parse_type_name())
                while self._accept_op(","):
                    returns.append(self._parse_type_name())
                self._expect_op(")")
                continue
            if self._current.type == TokenType.IDENT:
                # modifier invocation (optionally with args — args are
                # not supported and rejected here for clarity)
                modifier_name = self._advance().value
                if self._current.is_op("("):
                    raise self._error(
                        f"modifier {modifier_name!r}: Solis modifiers take "
                        "no invocation arguments"
                    )
                modifiers.append(modifier_name)
                continue
            break

        body: Optional[ast.Block] = None
        if self._current.is_op("{"):
            body = self._parse_block()
        else:
            self._expect_op(";")
        return ast.FunctionDecl(
            name=name, parameters=parameters, returns=returns,
            visibility=visibility, is_payable=is_payable, is_view=is_view,
            modifiers=modifiers, body=body, is_constructor=is_constructor,
            line=start.line, column=start.column,
        )

    def _parse_modifier(self) -> ast.ModifierDecl:
        start = self._advance()  # modifier
        name = self._expect_ident().value
        parameters = []
        if self._current.is_op("("):
            parameters = self._parse_parameters()
        body = self._parse_block()
        return ast.ModifierDecl(
            name=name, parameters=parameters, body=body,
            line=start.line, column=start.column,
        )

    def _parse_event(self) -> ast.EventDecl:
        start = self._advance()  # event
        name = self._expect_ident().value
        parameters = self._parse_parameters(allow_indexed=True)
        self._expect_op(";")
        return ast.EventDecl(
            name=name, parameters=parameters,
            line=start.line, column=start.column,
        )

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect_op("{")
        statements: list[ast.Stmt] = []
        while not self._accept_op("}"):
            if self._current.type == TokenType.EOF:
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        return ast.Block(statements=statements,
                         line=start.line, column=start.column)

    def _parse_statement(self) -> ast.Stmt:
        token = self._current
        if token.is_op("{"):
            return self._parse_block()
        if token.is_op("_"):
            self._advance()
            self._expect_op(";")
            return ast.PlaceholderStmt(line=token.line, column=token.column)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._current.is_op(";"):
                value = self._parse_expression()
            self._expect_op(";")
            return ast.ReturnStmt(value=value, line=token.line,
                                  column=token.column)
        if token.is_keyword("break"):
            self._advance()
            self._expect_op(";")
            return ast.BreakStmt(line=token.line, column=token.column)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_op(";")
            return ast.ContinueStmt(line=token.line, column=token.column)
        if token.is_keyword("revert"):
            self._advance()
            self._expect_op("(")
            message = None
            if self._current.type == TokenType.STRING:
                message = self._advance().value
            self._expect_op(")")
            self._expect_op(";")
            return ast.RevertStmt(message=message, line=token.line,
                                  column=token.column)
        if token.is_keyword("require"):
            self._advance()
            self._expect_op("(")
            condition = self._parse_expression()
            message = None
            if self._accept_op(","):
                if self._current.type != TokenType.STRING:
                    raise self._error("require message must be a string")
                message = self._advance().value
            self._expect_op(")")
            self._expect_op(";")
            return ast.RequireStmt(condition=condition, message=message,
                                   line=token.line, column=token.column)
        if token.is_keyword("emit"):
            self._advance()
            name = self._expect_ident().value
            self._expect_op("(")
            arguments = []
            while not self._accept_op(")"):
                if arguments:
                    self._expect_op(",")
                arguments.append(self._parse_expression())
            self._expect_op(";")
            return ast.EmitStmt(event_name=name, arguments=arguments,
                                line=token.line, column=token.column)
        if self._looks_like_declaration():
            return self._parse_var_decl()
        return self._parse_expression_statement()

    def _looks_like_declaration(self) -> bool:
        token = self._current
        if token.type == TokenType.KEYWORD and token.value in _TYPE_KEYWORDS \
                and token.value != "mapping":
            # `address x` is a decl; `address(...)` is a cast expression.
            return not self._peek().is_op("(")
        if token.type == TokenType.IDENT:
            return self._peek().type == TokenType.IDENT or (
                self._peek().is_keyword("memory")
            )
        return False

    def _parse_var_decl(self) -> ast.VarDeclStmt:
        start = self._current
        type_name = self._parse_type_name()
        self._accept_keyword("memory", "storage", "calldata")
        name = self._expect_ident().value
        initial = None
        if self._accept_op("="):
            initial = self._parse_expression()
        self._expect_op(";")
        return ast.VarDeclStmt(type_name=type_name, name=name, initial=initial,
                               line=start.line, column=start.column)

    def _parse_if(self) -> ast.IfStmt:
        start = self._advance()
        self._expect_op("(")
        condition = self._parse_expression()
        self._expect_op(")")
        then_branch = self._statement_as_block()
        else_branch = None
        if self._accept_keyword("else") or self._current.is_keyword("else"):
            if self._current.is_keyword("else"):
                self._advance()
            else_branch = self._statement_as_block()
        return ast.IfStmt(condition=condition, then_branch=then_branch,
                          else_branch=else_branch,
                          line=start.line, column=start.column)

    def _statement_as_block(self) -> ast.Block:
        if self._current.is_op("{"):
            return self._parse_block()
        stmt = self._parse_statement()
        return ast.Block(statements=[stmt], line=stmt.line, column=stmt.column)

    def _parse_while(self) -> ast.WhileStmt:
        start = self._advance()
        self._expect_op("(")
        condition = self._parse_expression()
        self._expect_op(")")
        body = self._statement_as_block()
        return ast.WhileStmt(condition=condition, body=body,
                             line=start.line, column=start.column)

    def _parse_for(self) -> ast.ForStmt:
        start = self._advance()
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self._current.is_op(";"):
            if self._looks_like_declaration():
                init = self._parse_var_decl()
            else:
                init = self._parse_simple_statement_no_semi()
                self._expect_op(";")
        else:
            self._advance()
        condition = None
        if not self._current.is_op(";"):
            condition = self._parse_expression()
        self._expect_op(";")
        update: Optional[ast.Stmt] = None
        if not self._current.is_op(")"):
            update = self._parse_simple_statement_no_semi()
        self._expect_op(")")
        body = self._statement_as_block()
        return ast.ForStmt(init=init, condition=condition, update=update,
                           body=body, line=start.line, column=start.column)

    def _parse_expression_statement(self) -> ast.Stmt:
        stmt = self._parse_simple_statement_no_semi()
        self._expect_op(";")
        return stmt

    def _parse_simple_statement_no_semi(self) -> ast.Stmt:
        """An assignment or bare expression, without the trailing ';'."""
        start = self._current
        expr = self._parse_expression()
        if self._current.is_op("="):
            self._advance()
            value = self._parse_expression()
            return ast.Assignment(target=expr, value=value,
                                  line=start.line, column=start.column)
        for compound in ("+=", "-=", "*=", "/=", "%="):
            if self._current.is_op(compound):
                self._advance()
                rhs = self._parse_expression()
                value = ast.BinaryOp(op=compound[0], left=expr, right=rhs,
                                     line=start.line, column=start.column)
                return ast.Assignment(target=expr, value=value,
                                      line=start.line, column=start.column)
        if self._current.is_op("++") or self._current.is_op("--"):
            op = self._advance().value
            one = ast.NumberLiteral(value=1, line=start.line,
                                    column=start.column)
            value = ast.BinaryOp(op=op[0], left=expr, right=one,
                                 line=start.line, column=start.column)
            return ast.Assignment(target=expr, value=value,
                                  line=start.line, column=start.column)
        return ast.ExprStmt(expression=expr, line=start.line,
                            column=start.column)

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._current.is_op("||"):
            token = self._advance()
            right = self._parse_and()
            left = ast.BinaryOp(op="||", left=left, right=right,
                                line=token.line, column=token.column)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._current.is_op("&&"):
            token = self._advance()
            right = self._parse_equality()
            left = ast.BinaryOp(op="&&", left=left, right=right,
                                line=token.line, column=token.column)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_comparison()
        while self._current.is_op("==", "!="):
            token = self._advance()
            right = self._parse_comparison()
            left = ast.BinaryOp(op=token.value, left=left, right=right,
                                line=token.line, column=token.column)
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while self._current.is_op("<", ">", "<=", ">="):
            token = self._advance()
            right = self._parse_additive()
            left = ast.BinaryOp(op=token.value, left=left, right=right,
                                line=token.line, column=token.column)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._current.is_op("+", "-"):
            token = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op=token.value, left=left, right=right,
                                line=token.line, column=token.column)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._current.is_op("*", "/", "%"):
            token = self._advance()
            right = self._parse_unary()
            left = ast.BinaryOp(op=token.value, left=left, right=right,
                                line=token.line, column=token.column)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._current
        if token.is_op("!", "-", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.value, operand=operand,
                               line=token.line, column=token.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._current.is_op("."):
                token = self._advance()
                member = self._advance()
                if member.type not in (TokenType.IDENT, TokenType.KEYWORD):
                    raise self._error("expected member name after '.'")
                expr = ast.MemberAccess(object=expr, member=member.value,
                                        line=token.line, column=token.column)
            elif self._current.is_op("("):
                token = self._advance()
                arguments = []
                while not self._accept_op(")"):
                    if arguments:
                        self._expect_op(",")
                    arguments.append(self._parse_expression())
                expr = ast.FunctionCall(callee=expr, arguments=arguments,
                                        line=token.line, column=token.column)
            elif self._current.is_op("["):
                token = self._advance()
                index = self._parse_expression()
                self._expect_op("]")
                expr = ast.IndexAccess(base=expr, index=index,
                                       line=token.line, column=token.column)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.type == TokenType.NUMBER:
            self._advance()
            value = _parse_number(token.value)
            if self._current.type == TokenType.KEYWORD and (
                    self._current.value in _UNIT_MULTIPLIERS):
                unit = self._advance().value
                value *= _UNIT_MULTIPLIERS[unit]
            return ast.NumberLiteral(value=value, line=token.line,
                                     column=token.column)
        if token.type == TokenType.HEX_LITERAL:
            self._advance()
            return ast.HexLiteral(text=token.value, line=token.line,
                                  column=token.column)
        if token.type == TokenType.STRING:
            self._advance()
            return ast.StringLiteral(value=token.value, line=token.line,
                                     column=token.column)
        if token.is_keyword("true", "false"):
            self._advance()
            return ast.BoolLiteral(value=(token.value == "true"),
                                   line=token.line, column=token.column)
        if token.is_keyword("msg", "block", "tx", "this", "now",
                            "selfdestruct"):
            self._advance()
            return ast.Identifier(name=token.value, line=token.line,
                                  column=token.column)
        if token.type == TokenType.KEYWORD and type_from_keyword(token.value):
            # Type used as an expression: cast, e.g. address(x), uint(y).
            self._advance()
            return ast.Identifier(name=token.value, line=token.line,
                                  column=token.column)
        if token.type == TokenType.IDENT:
            self._advance()
            return ast.Identifier(name=token.value, line=token.line,
                                  column=token.column)
        if token.is_op("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        raise self._error("expected an expression")


def _parse_number(text: str) -> int:
    if "e" in text:
        mantissa, exponent = text.split("e", 1)
        return int(mantissa) * 10 ** int(exponent)
    return int(text)


def parse(source: str) -> ast.SourceUnit:
    """Parse Solis source text into a :class:`SourceUnit`."""
    return Parser(tokenize(source)).parse_source_unit()
