"""Semantic analysis for Solis.

Resolves names, checks types, assigns storage slots, and annotates the
AST in place for the code generator:

* every ``Expr`` gets ``resolved_type``;
* ``Identifier``/``MemberAccess``/``FunctionCall`` nodes get a
  ``binding`` tuple describing what they refer to;
* ``StateVarDecl`` gets its storage ``slot``;
* ``FunctionDecl`` gets ``param_types``, ``return_type``, ``locals``
  (ordered (name, type) pairs incl. params) and ``selector``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import abi as abi_codec
from repro.lang import ast_nodes as ast
from repro.lang.errors import SemanticError
from repro.lang.types import (
    ADDRESS,
    BOOL,
    BYTES32,
    UINT256,
    VOID,
    AddressType,
    ArrayType,
    BoolType,
    BytesType,
    ContractType,
    FixedBytesType,
    MappingType,
    SolisType,
    StringType,
    UIntType,
    VoidType,
    type_from_keyword,
)

_BUILTIN_FUNCTIONS = frozenset({
    "keccak256", "ecrecover", "create", "selfdestruct",
})

_MAX_INDEXED_EVENT_ARGS = 3


@dataclass
class FunctionInfo:
    """Resolved view of one function."""

    decl: ast.FunctionDecl
    param_types: list[SolisType]
    return_type: SolisType
    contract_name: str

    @property
    def name(self) -> str:
        """The function's declared name."""
        return self.decl.name

    @property
    def abi_inputs(self) -> tuple[str, ...]:
        """Parameter type names as ABI strings."""
        return tuple(t.abi_name for t in self.param_types)

    @property
    def selector(self) -> bytes:
        """First four bytes of the signature hash."""
        return abi_codec.function_selector(self.decl.name, self.abi_inputs)


@dataclass
class EventInfo:
    """Resolved view of one event."""

    decl: ast.EventDecl
    param_types: list[SolisType]
    indexed_flags: list[bool]

    @property
    def name(self) -> str:
        """The event's declared name."""
        return self.decl.name

    @property
    def abi_inputs(self) -> tuple[str, ...]:
        """Parameter type names as ABI strings."""
        return tuple(t.abi_name for t in self.param_types)

    @property
    def topic(self) -> bytes:
        """keccak256 topic identifying this event."""
        return abi_codec.event_topic(self.decl.name, self.abi_inputs)


@dataclass
class ContractInfo:
    """Resolved view of one contract: layout, functions, events."""

    decl: ast.ContractDecl
    storage: dict[str, tuple[int, SolisType]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    events: dict[str, EventInfo] = field(default_factory=dict)
    modifiers: dict[str, ast.ModifierDecl] = field(default_factory=dict)
    storage_slots_used: int = 0

    @property
    def name(self) -> str:
        """The contract's declared name."""
        return self.decl.name

    @property
    def is_abstract(self) -> bool:
        """Interfaces and contracts with any bodyless function."""
        return self.decl.is_interface or any(
            fn.decl.body is None and not fn.decl.is_constructor
            for fn in self.functions.values()
        )


class Analyzer:
    """Analyses a source unit; produces :class:`ContractInfo` per contract."""

    def __init__(self, unit: ast.SourceUnit) -> None:
        self.unit = unit
        self.contracts: dict[str, ContractInfo] = {}

    # -- public API -------------------------------------------------------

    def analyze(self) -> dict[str, ContractInfo]:
        """Type-check the unit and build symbol information."""
        for contract in self.unit.contracts:
            if contract.name in self.contracts:
                raise SemanticError(
                    f"duplicate contract name {contract.name!r}",
                    contract.line, contract.column,
                )
            if not contract.is_interface:
                self._synthesize_getters(contract)
            self.contracts[contract.name] = self._collect_interface(contract)
        for contract in self.unit.contracts:
            if not contract.is_interface:
                self._check_contract(self.contracts[contract.name])
        return self.contracts

    # -- getter synthesis ----------------------------------------------------

    def _synthesize_getters(self, contract: ast.ContractDecl) -> None:
        """Generate view getters for ``public`` state variables.

        Mirrors Solidity: a value-type var gets ``name()``; a mapping
        gets ``name(key)``; a fixed array gets ``name(index)``.  A
        hand-written function of the same name wins.
        """
        existing = {fn.name for fn in contract.functions}
        for var in contract.state_vars:
            if var.visibility != "public" or var.name in existing:
                continue
            type_name = var.type_name
            if type_name.name == "mapping":
                # Follow nested mapping chains: one key parameter per
                # level, exactly like Solidity's generated getters.
                params = []
                body_expr: ast.Expr = ast.Identifier(name=var.name)
                level = type_name
                depth = 0
                while level.name == "mapping":
                    key_name = f"__key{depth}"
                    params.append(ast.Parameter(
                        type_name=level.key_type, name=key_name))
                    body_expr = ast.IndexAccess(
                        base=body_expr,
                        index=ast.Identifier(name=key_name),
                    )
                    level = level.value_type
                    depth += 1
                if level.name == "array":
                    continue  # mapping-of-array gets no getter
                returns = [level]
            elif type_name.name == "array":
                params = [ast.Parameter(
                    type_name=ast.TypeName(name="uint256"), name="__index")]
                body_expr = ast.IndexAccess(
                    base=ast.Identifier(name=var.name),
                    index=ast.Identifier(name="__index"),
                )
                returns = [type_name.value_type]
            else:
                params = []
                body_expr = ast.Identifier(name=var.name)
                returns = [type_name]
            contract.functions.append(ast.FunctionDecl(
                name=var.name,
                parameters=params,
                returns=returns,
                visibility="public",
                is_view=True,
                body=ast.Block(statements=[ast.ReturnStmt(value=body_expr)]),
                is_synthetic=True,
                line=var.line, column=var.column,
            ))

    # -- pass 1: interfaces and layout ------------------------------------

    def _collect_interface(self, contract: ast.ContractDecl) -> ContractInfo:
        info = ContractInfo(decl=contract)

        slot = 0
        for var in contract.state_vars:
            resolved = self._resolve_type(var.type_name)
            if isinstance(resolved, (BytesType, StringType)):
                raise SemanticError(
                    f"state variable {var.name!r}: dynamic bytes/string are "
                    "not supported in storage", var.line, var.column,
                )
            if var.name in info.storage:
                raise SemanticError(
                    f"duplicate state variable {var.name!r}",
                    var.line, var.column,
                )
            var.slot = slot
            var.resolved_type = resolved
            info.storage[var.name] = (slot, resolved)
            if isinstance(resolved, ArrayType):
                slot += resolved.length
            else:
                slot += 1
        info.storage_slots_used = slot

        for modifier in contract.modifiers:
            if modifier.name in info.modifiers:
                raise SemanticError(
                    f"duplicate modifier {modifier.name!r}",
                    modifier.line, modifier.column,
                )
            if modifier.parameters:
                raise SemanticError(
                    f"modifier {modifier.name!r}: parameters are not "
                    "supported", modifier.line, modifier.column,
                )
            info.modifiers[modifier.name] = modifier

        for event in contract.events:
            param_types = [self._resolve_type(p.type_name)
                           for p in event.parameters]
            indexed = [p.indexed for p in event.parameters]
            if sum(indexed) > _MAX_INDEXED_EVENT_ARGS:
                raise SemanticError(
                    f"event {event.name!r}: at most "
                    f"{_MAX_INDEXED_EVENT_ARGS} indexed parameters",
                    event.line, event.column,
                )
            for ptype, is_indexed in zip(param_types, indexed):
                if is_indexed and not ptype.is_value:
                    raise SemanticError(
                        f"event {event.name!r}: only value types may be "
                        "indexed", event.line, event.column,
                    )
            info.events[event.name] = EventInfo(
                decl=event, param_types=param_types, indexed_flags=indexed,
            )

        for fn in contract.functions:
            param_types = [self._resolve_type(p.type_name)
                           for p in fn.parameters]
            if len(fn.returns) > 1:
                raise SemanticError(
                    "multiple return values are not supported",
                    fn.line, fn.column,
                )
            return_type = (self._resolve_type(fn.returns[0])
                           if fn.returns else VOID)
            if fn.is_constructor:
                key = "constructor"
                for ptype in param_types:
                    if not ptype.is_value:
                        raise SemanticError(
                            "constructor parameters must be value types",
                            fn.line, fn.column,
                        )
            else:
                key = fn.name
            if key in info.functions:
                raise SemanticError(
                    f"duplicate function {key!r} (no overloading in Solis)",
                    fn.line, fn.column,
                )
            for param in fn.parameters:
                resolved = self._resolve_type(param.type_name)
                if isinstance(resolved, (MappingType, ArrayType)):
                    raise SemanticError(
                        f"function {key!r}: mapping/array parameters are "
                        "not supported", fn.line, fn.column,
                    )
            fn.param_types = param_types
            fn.return_type = return_type
            info.functions[key] = FunctionInfo(
                decl=fn, param_types=param_types, return_type=return_type,
                contract_name=contract.name,
            )
        return info

    def _resolve_type(self, type_name: ast.TypeName) -> SolisType:
        if type_name.name == "mapping":
            key = self._resolve_type(type_name.key_type)
            value = self._resolve_type(type_name.value_type)
            if not key.is_value:
                raise SemanticError(
                    "mapping keys must be value types",
                    type_name.line, type_name.column,
                )
            return MappingType(key_type=key, value_type=value)
        if type_name.name == "array":
            element = self._resolve_type(type_name.value_type)
            if not element.is_value:
                raise SemanticError(
                    "array elements must be value types",
                    type_name.line, type_name.column,
                )
            if type_name.array_length <= 0:
                raise SemanticError(
                    "array length must be positive",
                    type_name.line, type_name.column,
                )
            return ArrayType(element_type=element,
                             length=type_name.array_length)
        keyword_type = type_from_keyword(type_name.name)
        if keyword_type is not None:
            return keyword_type
        if type_name.name in {c.name for c in self.unit.contracts}:
            return ContractType(name=type_name.name)
        raise SemanticError(f"unknown type {type_name.name!r}",
                            type_name.line, type_name.column)

    # -- pass 2: bodies ------------------------------------------------------

    def _check_contract(self, info: ContractInfo) -> None:
        for modifier in info.decl.modifiers:
            self._check_modifier(info, modifier)
        for fn in info.decl.functions:
            self._check_function(info, fn)

    def _check_modifier(self, info: ContractInfo,
                        modifier: ast.ModifierDecl) -> None:
        scope = _Scope(info=info, function=None, analyzer=self)
        top_level = sum(
            1 for stmt in modifier.body.statements
            if isinstance(stmt, ast.PlaceholderStmt)
        )
        total = self._count_placeholders(modifier.body)
        if top_level != 1 or total != 1:
            raise SemanticError(
                f"modifier {modifier.name!r} must contain exactly one "
                "top-level '_;'", modifier.line, modifier.column,
            )
        for stmt in modifier.body.statements:
            if isinstance(stmt, ast.VarDeclStmt):
                raise SemanticError(
                    f"modifier {modifier.name!r}: local declarations in "
                    "modifiers are not supported",
                    stmt.line, stmt.column,
                )
        self._check_block(modifier.body, scope, allow_placeholder=True)

    def _count_placeholders(self, block: ast.Block) -> int:
        count = 0
        for stmt in block.statements:
            if isinstance(stmt, ast.PlaceholderStmt):
                count += 1
            elif isinstance(stmt, ast.Block):
                count += self._count_placeholders(stmt)
            elif isinstance(stmt, ast.IfStmt):
                count += self._count_placeholders(stmt.then_branch)
                if stmt.else_branch:
                    count += self._count_placeholders(stmt.else_branch)
            elif isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
                count += self._count_placeholders(stmt.body)
        return count

    def _check_function(self, info: ContractInfo,
                        fn: ast.FunctionDecl) -> None:
        if fn.body is None:
            # Bodyless functions make the contract abstract (Solidity-0.4
            # style interface declarations, as in the paper's Alg. 3).
            return
        for modifier_name in fn.modifiers:
            if modifier_name not in info.modifiers:
                raise SemanticError(
                    f"unknown modifier {modifier_name!r} on function "
                    f"{fn.name or 'constructor'!r}", fn.line, fn.column,
                )
        scope = _Scope(info=info, function=fn, analyzer=self)
        for param, ptype in zip(fn.parameters, fn.param_types):
            if not param.name:
                raise SemanticError(
                    "function parameters must be named",
                    param.line, param.column,
                )
            scope.declare(param.name, ptype, param)
        self._check_block(fn.body, scope, allow_placeholder=False)
        fn.locals = scope.locals  # ordered (name, type) incl. params

    # -- statements ----------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: "_Scope",
                     allow_placeholder: bool) -> None:
        for stmt in block.statements:
            self._check_statement(stmt, scope, allow_placeholder)

    def _check_statement(self, stmt: ast.Stmt, scope: "_Scope",
                         allow_placeholder: bool) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, allow_placeholder)
        elif isinstance(stmt, ast.PlaceholderStmt):
            if not allow_placeholder:
                raise SemanticError("'_;' is only valid inside a modifier",
                                    stmt.line, stmt.column)
        elif isinstance(stmt, ast.VarDeclStmt):
            declared = self._resolve_type(stmt.type_name)
            if isinstance(declared, (MappingType, ArrayType)):
                raise SemanticError(
                    "mapping/array local variables are not supported",
                    stmt.line, stmt.column,
                )
            if stmt.initial is not None:
                initial_type = self._check_expr(stmt.initial, scope)
                self._require_assignable(declared, initial_type, stmt)
            scope.declare(stmt.name, declared, stmt)
            stmt.resolved_type = declared
        elif isinstance(stmt, ast.Assignment):
            target_type = self._check_expr(stmt.target, scope)
            if not self._is_lvalue(stmt.target):
                raise SemanticError("left side is not assignable",
                                    stmt.line, stmt.column)
            value_type = self._check_expr(stmt.value, scope)
            self._require_assignable(target_type, value_type, stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expression, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._require_bool(self._check_expr(stmt.condition, scope), stmt)
            self._check_block(stmt.then_branch, scope, allow_placeholder)
            if stmt.else_branch is not None:
                self._check_block(stmt.else_branch, scope, allow_placeholder)
        elif isinstance(stmt, ast.WhileStmt):
            self._require_bool(self._check_expr(stmt.condition, scope), stmt)
            self._check_block(stmt.body, scope, allow_placeholder)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._check_statement(stmt.init, scope, False)
            if stmt.condition is not None:
                self._require_bool(self._check_expr(stmt.condition, scope),
                                   stmt)
            if stmt.update is not None:
                self._check_statement(stmt.update, scope, False)
            self._check_block(stmt.body, scope, allow_placeholder)
        elif isinstance(stmt, ast.ReturnStmt):
            fn = scope.function
            if fn is None:
                raise SemanticError("return outside a function",
                                    stmt.line, stmt.column)
            expected = fn.return_type
            if stmt.value is None:
                if not isinstance(expected, VoidType):
                    raise SemanticError(
                        f"function returns {expected}, got bare return",
                        stmt.line, stmt.column,
                    )
            else:
                actual = self._check_expr(stmt.value, scope)
                if isinstance(expected, VoidType):
                    raise SemanticError(
                        "void function cannot return a value",
                        stmt.line, stmt.column,
                    )
                self._require_assignable(expected, actual, stmt)
        elif isinstance(stmt, ast.RequireStmt):
            self._require_bool(self._check_expr(stmt.condition, scope), stmt)
        elif isinstance(stmt, ast.EmitStmt):
            event = scope.info.events.get(stmt.event_name)
            if event is None:
                raise SemanticError(f"unknown event {stmt.event_name!r}",
                                    stmt.line, stmt.column)
            if len(stmt.arguments) != len(event.param_types):
                raise SemanticError(
                    f"event {stmt.event_name!r} takes "
                    f"{len(event.param_types)} arguments",
                    stmt.line, stmt.column,
                )
            for arg, expected in zip(stmt.arguments, event.param_types):
                actual = self._check_expr(arg, scope)
                self._require_assignable(expected, actual, stmt)
            stmt.event_info = event
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            pass  # loop nesting validated by codegen
        elif isinstance(stmt, ast.RevertStmt):
            pass  # always well-typed
        else:
            raise SemanticError(
                f"unsupported statement {type(stmt).__name__}",
                stmt.line, stmt.column,
            )

    # -- expressions -----------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: "_Scope") -> SolisType:
        result = self._infer(expr, scope)
        expr.resolved_type = result
        return result

    def _infer(self, expr: ast.Expr, scope: "_Scope") -> SolisType:
        if isinstance(expr, ast.NumberLiteral):
            return UINT256
        if isinstance(expr, ast.HexLiteral):
            return UINT256
        if isinstance(expr, ast.BoolLiteral):
            return BOOL
        if isinstance(expr, ast.StringLiteral):
            raise SemanticError(
                "string literals are only allowed as require() messages",
                expr.line, expr.column,
            )
        if isinstance(expr, ast.Identifier):
            return self._infer_identifier(expr, scope)
        if isinstance(expr, ast.MemberAccess):
            return self._infer_member(expr, scope)
        if isinstance(expr, ast.IndexAccess):
            return self._infer_index(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            return self._infer_binary(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            return self._infer_unary(expr, scope)
        if isinstance(expr, ast.FunctionCall):
            return self._infer_call(expr, scope)
        raise SemanticError(f"unsupported expression {type(expr).__name__}",
                            expr.line, expr.column)

    def _infer_identifier(self, expr: ast.Identifier,
                          scope: "_Scope") -> SolisType:
        name = expr.name
        if name == "now":
            expr.binding = ("builtin", "timestamp")
            return UINT256
        if name in ("msg", "block", "tx"):
            raise SemanticError(f"{name!r} cannot be used alone",
                                expr.line, expr.column)
        if name == "this":
            expr.binding = ("builtin", "this")
            return ContractType(name=scope.info.name)
        local = scope.lookup(name)
        if local is not None:
            expr.binding = ("local", name)
            return local
        state = scope.info.storage.get(name)
        if state is not None:
            expr.binding = ("state", name)
            return state[1]
        if name in scope.info.functions:
            expr.binding = ("function", name)
            return VOID  # only meaningful when called
        keyword_type = type_from_keyword(name)
        if keyword_type is not None:
            expr.binding = ("type", keyword_type)
            return VOID
        if name in self.contracts:
            expr.binding = ("contract", name)
            return VOID
        if name in _BUILTIN_FUNCTIONS:
            expr.binding = ("builtin_fn", name)
            return VOID
        raise SemanticError(f"unknown identifier {name!r}",
                            expr.line, expr.column)

    def _infer_member(self, expr: ast.MemberAccess,
                      scope: "_Scope") -> SolisType:
        # msg.* / block.* / tx.*
        if isinstance(expr.object, ast.Identifier):
            holder = expr.object.name
            if holder == "msg":
                if expr.member == "sender":
                    expr.binding = ("env", "caller")
                    return ADDRESS
                if expr.member == "value":
                    expr.binding = ("env", "callvalue")
                    return UINT256
                raise SemanticError(f"unknown member msg.{expr.member}",
                                    expr.line, expr.column)
            if holder == "block":
                if expr.member == "timestamp":
                    expr.binding = ("env", "timestamp")
                    return UINT256
                if expr.member == "number":
                    expr.binding = ("env", "number")
                    return UINT256
                raise SemanticError(f"unknown member block.{expr.member}",
                                    expr.line, expr.column)
            if holder == "tx":
                if expr.member == "origin":
                    expr.binding = ("env", "origin")
                    return ADDRESS
                raise SemanticError(f"unknown member tx.{expr.member}",
                                    expr.line, expr.column)

        object_type = self._check_expr(expr.object, scope)
        is_address_like = isinstance(object_type, (AddressType, ContractType))
        if expr.member == "balance" and is_address_like:
            expr.binding = ("balance", None)
            return UINT256
        if is_address_like:
            if expr.member in ("transfer", "send"):
                expr.binding = ("transfer", expr.member)
                return VOID  # checked at call site
            if isinstance(object_type, ContractType):
                target_info = self.contracts.get(object_type.name)
                if target_info and expr.member in target_info.functions:
                    expr.binding = (
                        "external_fn", target_info.functions[expr.member]
                    )
                    return VOID  # call site resolves the return type
        if isinstance(object_type, BytesType) and expr.member == "length":
            expr.binding = ("bytes_length", None)
            return UINT256
        raise SemanticError(
            f"type {object_type} has no member {expr.member!r}",
            expr.line, expr.column,
        )

    def _infer_index(self, expr: ast.IndexAccess,
                     scope: "_Scope") -> SolisType:
        base_type = self._check_expr(expr.base, scope)
        index_type = self._check_expr(expr.index, scope)
        if isinstance(base_type, MappingType):
            self._require_assignable(base_type.key_type, index_type, expr)
            return base_type.value_type
        if isinstance(base_type, ArrayType):
            if not isinstance(index_type, UIntType):
                raise SemanticError("array index must be a uint",
                                    expr.line, expr.column)
            return base_type.element_type
        raise SemanticError(f"type {base_type} is not indexable",
                            expr.line, expr.column)

    def _infer_binary(self, expr: ast.BinaryOp, scope: "_Scope") -> SolisType:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        op = expr.op
        if op in ("&&", "||"):
            self._require_bool(left, expr)
            self._require_bool(right, expr)
            return BOOL
        if op in ("==", "!="):
            if not (left.assignable_from(right)
                    or right.assignable_from(left)):
                raise SemanticError(
                    f"cannot compare {left} with {right}",
                    expr.line, expr.column,
                )
            return BOOL
        if op in ("<", ">", "<=", ">="):
            self._require_numeric(left, expr)
            self._require_numeric(right, expr)
            return BOOL
        if op in ("+", "-", "*", "/", "%"):
            self._require_numeric(left, expr)
            self._require_numeric(right, expr)
            return UINT256
        raise SemanticError(f"unsupported operator {op!r}",
                            expr.line, expr.column)

    def _infer_unary(self, expr: ast.UnaryOp, scope: "_Scope") -> SolisType:
        operand = self._check_expr(expr.operand, scope)
        if expr.op == "!":
            self._require_bool(operand, expr)
            return BOOL
        if expr.op in ("-", "~"):
            self._require_numeric(operand, expr)
            return UINT256
        raise SemanticError(f"unsupported unary operator {expr.op!r}",
                            expr.line, expr.column)

    def _infer_call(self, expr: ast.FunctionCall,
                    scope: "_Scope") -> SolisType:
        callee = expr.callee

        if isinstance(callee, ast.Identifier):
            self._check_expr(callee, scope)
            binding = getattr(callee, "binding", None)
            if binding is None:
                raise SemanticError("cannot call this expression",
                                    expr.line, expr.column)
            kind = binding[0]
            if kind == "builtin_fn":
                return self._infer_builtin_call(expr, binding[1], scope)
            if kind == "type":
                return self._infer_cast(expr, binding[1], scope)
            if kind == "contract":
                # Contract cast: Iface(addr)
                if len(expr.arguments) != 1:
                    raise SemanticError(
                        "contract cast takes exactly one address",
                        expr.line, expr.column,
                    )
                arg_type = self._check_expr(expr.arguments[0], scope)
                if not ADDRESS.assignable_from(arg_type):
                    raise SemanticError(
                        "contract cast argument must be an address",
                        expr.line, expr.column,
                    )
                expr.call_kind = ("contract_cast", binding[1])
                return ContractType(name=binding[1])
            if kind == "function":
                fn_info = scope.info.functions[binding[1]]
                self._check_arguments(expr, fn_info.param_types, scope)
                expr.call_kind = ("internal", fn_info)
                return fn_info.return_type
            raise SemanticError("cannot call this expression",
                                expr.line, expr.column)

        if isinstance(callee, ast.MemberAccess):
            self._check_expr(callee, scope)
            binding = getattr(callee, "binding", None)
            if binding is None:
                raise SemanticError("cannot call this member",
                                    expr.line, expr.column)
            kind = binding[0]
            if kind == "transfer":
                if len(expr.arguments) != 1:
                    raise SemanticError(
                        f"{binding[1]} takes exactly one amount",
                        expr.line, expr.column,
                    )
                amount = self._check_expr(expr.arguments[0], scope)
                self._require_numeric(amount, expr)
                expr.call_kind = ("transfer", binding[1])
                return BOOL if binding[1] == "send" else VOID
            if kind == "external_fn":
                fn_info: FunctionInfo = binding[1]
                self._check_arguments(expr, fn_info.param_types, scope)
                expr.call_kind = ("external", fn_info)
                return fn_info.return_type
            raise SemanticError("cannot call this member",
                                expr.line, expr.column)

        raise SemanticError("cannot call this expression",
                            expr.line, expr.column)

    def _check_arguments(self, expr: ast.FunctionCall,
                         param_types: list[SolisType],
                         scope: "_Scope") -> None:
        if len(expr.arguments) != len(param_types):
            raise SemanticError(
                f"expected {len(param_types)} arguments, "
                f"got {len(expr.arguments)}",
                expr.line, expr.column,
            )
        for arg, expected in zip(expr.arguments, param_types):
            actual = self._check_expr(arg, scope)
            self._require_assignable(expected, actual, expr)

    def _infer_builtin_call(self, expr: ast.FunctionCall, name: str,
                            scope: "_Scope") -> SolisType:
        args = [self._check_expr(arg, scope) for arg in expr.arguments]
        if name in ("keccak256", "sha256"):
            if not args:
                raise SemanticError(f"{name} needs at least one argument",
                                    expr.line, expr.column)
            for arg_type in args:
                if not (arg_type.is_value or isinstance(arg_type, BytesType)):
                    raise SemanticError(
                        f"{name} cannot hash values of type {arg_type}",
                        expr.line, expr.column,
                    )
            expr.call_kind = ("hash", name)
            return BYTES32
        if name == "ecrecover":
            if len(args) != 4:
                raise SemanticError("ecrecover takes (hash, v, r, s)",
                                    expr.line, expr.column)
            expr.call_kind = ("ecrecover", None)
            return ADDRESS
        if name == "create":
            if len(args) not in (1, 2):
                raise SemanticError(
                    "create takes (bytecode) or (bytecode, value)",
                    expr.line, expr.column,
                )
            if not isinstance(args[0], BytesType):
                raise SemanticError("create bytecode must be bytes",
                                    expr.line, expr.column)
            if len(args) == 2:
                self._require_numeric(args[1], expr)
            expr.call_kind = ("create", None)
            return ADDRESS
        if name == "selfdestruct":
            if len(args) != 1 or not ADDRESS.assignable_from(args[0]):
                raise SemanticError("selfdestruct takes one address",
                                    expr.line, expr.column)
            expr.call_kind = ("selfdestruct", None)
            return VOID
        raise SemanticError(f"unknown builtin {name!r}",
                            expr.line, expr.column)

    def _infer_cast(self, expr: ast.FunctionCall, target: SolisType,
                    scope: "_Scope") -> SolisType:
        if len(expr.arguments) != 1:
            raise SemanticError("type cast takes exactly one argument",
                                expr.line, expr.column)
        source = self._check_expr(expr.arguments[0], scope)
        castable = (
            source.is_value
            or isinstance(source, UIntType)
        )
        if not castable:
            raise SemanticError(f"cannot cast {source} to {target}",
                                expr.line, expr.column)
        expr.call_kind = ("cast", target)
        return target

    # -- helpers --------------------------------------------------------------

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Identifier):
            binding = getattr(expr, "binding", None)
            return binding is not None and binding[0] in ("local", "state")
        if isinstance(expr, ast.IndexAccess):
            return self._is_lvalue_base(expr.base)
        return False

    def _is_lvalue_base(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Identifier):
            binding = getattr(expr, "binding", None)
            return binding is not None and binding[0] == "state"
        if isinstance(expr, ast.IndexAccess):
            return self._is_lvalue_base(expr.base)
        return False

    def _require_bool(self, actual: SolisType, node: ast.Node) -> None:
        if not isinstance(actual, BoolType):
            raise SemanticError(f"expected bool, got {actual}",
                                node.line, node.column)

    def _require_numeric(self, actual: SolisType, node: ast.Node) -> None:
        if not isinstance(actual, UIntType):
            raise SemanticError(f"expected a uint type, got {actual}",
                                node.line, node.column)

    def _require_assignable(self, expected: SolisType, actual: SolisType,
                            node: ast.Node) -> None:
        if expected.assignable_from(actual):
            return
        # Number literals flow into any value slot of sufficient width.
        if isinstance(actual, UIntType) and isinstance(
                expected, (FixedBytesType,)):
            return
        raise SemanticError(f"cannot assign {actual} to {expected}",
                            node.line, node.column)


@dataclass
class _Scope:
    """Flat per-function scope (params + locals)."""

    info: ContractInfo
    function: Optional[ast.FunctionDecl]
    analyzer: Analyzer
    _vars: dict[str, SolisType] = field(default_factory=dict)
    locals: list[tuple[str, SolisType]] = field(default_factory=list)

    def declare(self, name: str, type_: SolisType, node: ast.Node) -> None:
        """Bind ``name`` in the innermost scope."""
        if name in self._vars:
            raise SemanticError(f"variable {name!r} already declared",
                                node.line, node.column)
        if name in self.info.storage:
            raise SemanticError(
                f"variable {name!r} shadows a state variable",
                node.line, node.column,
            )
        self._vars[name] = type_
        self.locals.append((name, type_))

    def lookup(self, name: str) -> Optional[SolisType]:
        """Resolve ``name`` through enclosing scopes (None if unbound)."""
        return self._vars.get(name)


def analyze(unit: ast.SourceUnit) -> dict[str, ContractInfo]:
    """Run semantic analysis over a parsed source unit."""
    return Analyzer(unit).analyze()
