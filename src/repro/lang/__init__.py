"""Solis: a Solidity-subset language and compiler targeting the EVM.

Stands in for Solidity 0.4.24 + Remix/Truffle from the paper's
implementation section; deterministic output makes bytecode signing
sound.
"""

from repro.lang.compiler import (
    COMPILER_VERSION,
    CompilationResult,
    CompiledContract,
    compile_contract,
    compile_source,
)
from repro.lang.errors import (
    CodegenError,
    LexerError,
    ParserError,
    SemanticError,
    SolisError,
)
from repro.lang.parser import parse

__all__ = [
    "COMPILER_VERSION",
    "CompilationResult",
    "CompiledContract",
    "compile_contract",
    "compile_source",
    "parse",
    "SolisError",
    "LexerError",
    "ParserError",
    "SemanticError",
    "CodegenError",
]
