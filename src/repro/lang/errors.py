"""Compiler diagnostics."""

from __future__ import annotations

from repro.exceptions import ReproError


class SolisError(ReproError):
    """Base class for all Solis compiler errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexerError(SolisError):
    """Malformed token stream."""


class ParserError(SolisError):
    """Source does not match the grammar."""


class SemanticError(SolisError):
    """Well-formed but meaningless program (types, names, visibility)."""


class CodegenError(SolisError):
    """Internal code-generation failure (should indicate a compiler bug)."""
