"""Command-line interface.

Usage (also via ``python -m repro``):

    repro compile  contract.sol [--contract NAME]
    repro classify contract.sol --contract NAME
    repro split    contract.sol --contract NAME --participants VAR \\
                   --result FN --settle FN [--out DIR] \\
                   [--challenge-period SECONDS] [--security-deposit WEI]
    repro demo     {betting,tender,escrow} [--dispute]
    repro trace    {betting,tender,escrow} [--dispute] [--no-jit] \\
                   [--emit-telemetry PATH]
    repro engine   [--sessions N] [--app NAME] [--mining MODE] \\
                   [--dishonest FRACTION] [--workers N] [--no-jit] \\
                   [--pipeline] [--compare] [--store PATH] \\
                   [--resume] [--transport {inproc,net}] \\
                   [--peer HOST:PORT] [--remote-role ROLE] \\
                   [--emit-telemetry PATH]
    repro node     [--listen HOST:PORT]
    repro participant --peer HOST:PORT --role ROLE \\
                   [--app NAME] [--sessions N] [--idle-timeout S]
    repro adversary {strategy,all} [--app NAME|all] [--deposits]

``split`` is the Split/Generate stage as a tool: it writes the
canonical on/off-chain pair next to your whole contract, ready to be
compiled and signed by every participant.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.annotations import SplitSpec
from repro.core.classify import classify_contract
from repro.core.splitter import split_contract
from repro.lang.compiler import compile_source
from repro.lang.parser import parse


def _read_source(path: str) -> str:
    try:
        return Path(path).read_text()
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")


def _pick_contract(source: str, name: str | None) -> str:
    unit = parse(source)
    names = [c.name for c in unit.contracts if not c.is_interface]
    if name:
        if name not in names:
            raise SystemExit(
                f"error: no contract {name!r}; found: {names}")
        return name
    if len(names) != 1:
        raise SystemExit(
            f"error: multiple contracts {names}; pass --contract")
    return names[0]


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile a Solis file and print its artefacts."""
    source = _read_source(args.file)
    result = compile_source(source)
    targets = ([args.contract] if args.contract
               else sorted(result.contracts))
    for name in targets:
        compiled = result.contract(name)
        print(f"contract {name}")
        print(f"  init code    : {len(compiled.init_code):,} bytes")
        print(f"  runtime code : {len(compiled.runtime_code):,} bytes")
        print(f"  bytecode hash: 0x{compiled.bytecode_hash.hex()}")
        if compiled.abi.constructor_inputs:
            ctor = ", ".join(compiled.abi.constructor_inputs)
            print(f"  constructor  : ({ctor})")
        for fn in compiled.abi.functions:
            flags = " payable" if fn.payable else ""
            returns = f" -> {fn.outputs[0]}" if fn.outputs else ""
            print(f"  0x{fn.selector.hex()}  {fn.signature}{returns}"
                  f"{flags}")
        for event in compiled.abi.events:
            print(f"  event {event.name}({', '.join(event.inputs)})")
        if args.bytecode:
            print(f"  0x{compiled.init_code.hex()}")
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    """Print the light/public vs heavy/private classification."""
    source = _read_source(args.file)
    name = _pick_contract(source, args.contract)
    contract = parse(source).contract(name)
    classification = classify_contract(
        contract, gas_threshold=args.gas_threshold)
    print(f"contract {name} — §II-B classification")
    for fn_name in classification.light_public:
        estimate = classification.estimates[fn_name]
        print(f"  light/public : {fn_name}  "
              f"(~{estimate.estimated_gas:,} gas"
              f"{', transfers value' if estimate.has_transfer else ''})")
    for fn_name in classification.heavy_private:
        estimate = classification.estimates[fn_name]
        traits = []
        if estimate.has_loop:
            traits.append("loops")
        traits.append(f"~{estimate.estimated_gas:,} gas")
        print(f"  heavy/private: {fn_name}  ({', '.join(traits)})")
    return 0


def cmd_split(args: argparse.Namespace) -> int:
    """Split a whole contract and write the on/off-chain pair."""
    source = _read_source(args.file)
    name = _pick_contract(source, args.contract)
    spec = SplitSpec(
        participants_var=args.participants,
        result_function=args.result,
        settle_function=args.settle,
        challenge_period=args.challenge_period,
        security_deposit=args.security_deposit,
    )
    split = split_contract(source, name, spec)

    out_dir = Path(args.out) if args.out else Path(args.file).parent
    out_dir.mkdir(parents=True, exist_ok=True)
    onchain_path = out_dir / f"{split.onchain_name}.sol"
    offchain_path = out_dir / f"{split.offchain_name}.sol"
    onchain_path.write_text(split.onchain_source + "\n")
    offchain_path.write_text(split.offchain_source + "\n")

    compiled = compile_source(split.offchain_source)
    offchain = compiled.contract(split.offchain_name)
    print(f"split {name} ({split.num_participants} participants, "
          f"result type {split.result_type_source})")
    print(f"  on-chain  -> {onchain_path} "
          f"({split.onchain_functions})")
    print(f"  off-chain -> {offchain_path} "
          f"({split.offchain_functions})")
    print(f"  off-chain init code: {len(offchain.init_code):,} bytes; "
          f"sign keccak256(init_code ‖ ctor args)")
    return 0


def _run_scenario(app: str, dispute: bool,
                  evm_jit: bool | None = None):
    """Drive one end-to-end scenario; returns (protocol, challenge).

    This is the shared body behind ``repro demo`` and ``repro trace``:
    build the app's protocol, walk it through Split/Generate →
    Deploy/Sign → Submit/Challenge and either finalize or (when the
    representative lies) escalate through Dispute/Resolve.
    """
    from repro.chain import EthereumSimulator, SimulatorConfig
    from repro.core import Participant, Strategy

    sim = EthereumSimulator(config=SimulatorConfig(evm_jit=evm_jit))
    first = Participant(
        account=sim.accounts[0], name="p0",
        strategy=(Strategy.LIES_ABOUT_RESULT if dispute
                  else Strategy.HONEST))
    second = Participant(account=sim.accounts[1], name="p1")

    if app == "betting":
        from repro.apps.betting import deploy_betting, make_betting_protocol

        protocol = make_betting_protocol(sim, first, second)
        deploy_betting(protocol, first)
        protocol.collect_signatures()
        plan = protocol.betting_plan
        protocol.call_onchain(first, "deposit", value=plan["stake"])
        protocol.call_onchain(second, "deposit", value=plan["stake"])
        sim.advance_time_to(plan["timeline"].t2 + 1)
    elif app == "tender":
        from repro.apps.tender import deploy_tender, make_tender_protocol

        third = Participant(account=sim.accounts[2], name="p2")
        protocol = make_tender_protocol(sim, first, second, third)
        deploy_tender(protocol, first)
        protocol.collect_signatures()
        protocol.call_onchain(first, "fund",
                              value=protocol.tender_plan["budget"])
    else:  # escrow
        from repro.apps.escrow import deploy_escrow, make_escrow_protocol

        protocol = make_escrow_protocol(sim, first, second)
        deploy_escrow(protocol, first)
        protocol.collect_signatures()
        protocol.call_onchain(first, "fund",
                              value=protocol.escrow_plan["price"])

    protocol.submit_result(first)
    challenge = protocol.run_challenge_window()
    if not challenge.disputed:
        protocol.finalize(second)
    return protocol, challenge


def cmd_demo(args: argparse.Namespace) -> int:
    """Run one scenario end-to-end and print the settlement summary."""
    protocol, challenge = _run_scenario(args.app, args.dispute)
    if not challenge.disputed:
        print(f"{args.app}: settled honestly via finalize")
    else:
        print(f"{args.app}: false submission overturned via dispute "
              f"({challenge.value.total_gas:,} gas)")
    outcome = protocol.outcome()
    print(f"outcome: {outcome.outcome!r} via {outcome.via}")
    print(f"gas by stage: {protocol.ledger.by_stage()}")
    return 0


def _print_span_tree(tracer) -> None:
    """Render finished spans as an indented tree with time and gas."""
    for depth, span in tracer.walk():
        labels = " ".join(
            f"{key}={value}"
            for key, value in sorted(span.labels.items()))
        gas = f"  gas={span.gas:,}" if span.gas else ""
        status = "" if span.status == "ok" else f"  [{span.status}]"
        print(f"  {'  ' * depth}{span.name}  "
              f"{span.duration * 1000:.2f}ms{gas}"
              f"{'  ' + labels if labels else ''}{status}")


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a scenario under full telemetry and print the trace."""
    from repro import obs
    from repro.obs.exporters import JsonlExporter

    exporters = []
    if args.emit_telemetry:
        exporters.append(JsonlExporter(args.emit_telemetry))
    with obs.telemetry(*exporters) as telemetry:
        with obs.span(obs.names.SPAN_SCENARIO, scenario=args.app,
                      dispute=args.dispute):
            protocol, challenge = _run_scenario(
                args.app, args.dispute,
                evm_jit=False if args.no_jit else None)

        print(f"trace: {args.app} "
              f"({'disputed' if challenge.disputed else 'honest'} path)")
        _print_span_tree(telemetry.tracer)

        profiler = telemetry.profiler
        print("top opcodes by gas:")
        for mnemonic, gas in profiler.top_opcodes(10):
            print(f"  {mnemonic:<14} {gas:>12,}")
        if args.top_slow:
            print("top opcodes by wall time:")
            for mnemonic, seconds in profiler.top_slow(10):
                print(f"  {mnemonic:<14} {seconds * 1000:>10.3f}ms")
            print("wall time by opcode category:")
            for category, seconds in profiler.time_by_category():
                print(f"  {category:<14} {seconds * 1000:>10.3f}ms")
        opcode_total = profiler.opcode_gas_total()
        ledger_total = protocol.ledger.total()
        print(f"opcode gas total : {opcode_total:,}")
        print(f"gas ledger total : {ledger_total:,}")
        if opcode_total != ledger_total:
            print("warning: opcode gas and ledger totals diverge")
    if args.emit_telemetry:
        print(f"telemetry written to {args.emit_telemetry}")
    return 0 if opcode_total == ledger_total else 1


def _parse_hostport(value: str, flag: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` CLI value; exits with a clear error."""
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"error: {flag} expects HOST:PORT, "
                         f"got {value!r}")
    return host or "127.0.0.1", int(port)


def _run_fleet(sessions: int, app: str, mining: str,
               dishonest: float, workers: int = 1,
               settlement: str = "direct", batch_size: int = 1,
               store: str | None = None, resume: bool = False,
               evm_jit: bool | None = None,
               peer: tuple[str, int] | None = None,
               remote_roles: tuple[str, ...] = (),
               pipeline: bool = False):
    from repro.chain import EthereumSimulator, SimulatorConfig
    from repro.core import SessionEngine, spawn_fleet

    config = SimulatorConfig(num_accounts=2, auto_mine=False,
                             workers=workers, settlement=settlement,
                             batch_size=batch_size, evm_jit=evm_jit)
    if peer is not None:
        # Net transport: the chain lives in a `repro node` process;
        # this process keeps only keys and protocol state, and every
        # driver shares one Whisper transport over the same channel.
        from repro.crypto.keys import PrivateKey
        from repro.net import (
            ChannelClient,
            RemoteSimulator,
            RemoteWhisperTransport,
        )

        client = ChannelClient(peer[0], peer[1],
                               PrivateKey.from_seed("engine-client"))
        sim = RemoteSimulator(client, config=config)
    else:
        sim = EthereumSimulator(config=config)
    drivers = spawn_fleet(sim, sessions, app=app,
                          dishonest_fraction=dishonest,
                          remote_roles=remote_roles)
    if peer is not None:
        bus = RemoteWhisperTransport(sim.client)
        for driver in drivers:
            driver.protocol.bus = bus
    run_store = None
    if store is not None:
        from repro.core.recovery import RunStore

        run_store = RunStore(store)
        # Fleet-shaping flags the engine cannot see are bound into the
        # store's config record, so a --resume with different flags is
        # rejected instead of silently diverging.
        run_store.extra_config["dishonest"] = str(dishonest)
    engine = SessionEngine(sim, drivers, mining=mining,
                           store=run_store, resume=resume,
                           pipeline=pipeline)
    try:
        metrics = engine.run()
    finally:
        if run_store is not None:
            run_store.close()
    return metrics, drivers, sim, engine


def _print_metrics(metrics) -> None:
    print(f"  mining mode      : {metrics.mining}")
    print(f"  sessions         : {metrics.sessions} "
          f"({metrics.disputes} disputed, "
          f"rate {metrics.dispute_rate:.0%})")
    print(f"  blocks mined     : {metrics.blocks_mined}")
    print(f"  transactions     : {metrics.transactions} "
          f"({metrics.txs_per_block:.1f} per block)")
    print(f"  total gas        : {metrics.total_gas:,} "
          f"({metrics.gas_per_session:,.0f} per session)")
    print(f"  wall clock       : {metrics.wall_clock_seconds:.2f}s")


def cmd_engine(args: argparse.Namespace) -> int:
    """Drive a fleet of sessions, optionally emitting telemetry."""
    from contextlib import nullcontext

    from repro import obs
    from repro.obs.exporters import JsonlExporter

    if args.sessions < 1:
        raise SystemExit("error: --sessions must be at least 1")
    if not 0.0 <= args.dishonest <= 1.0:
        raise SystemExit("error: --dishonest must be within [0, 1]")
    if args.batch_size is None:
        from repro.core.settlement import MAX_BATCH_SIZE

        args.batch_size = (min(args.sessions, MAX_BATCH_SIZE)
                           if args.settlement == "netted" else 1)
    elif args.settlement == "direct" and args.batch_size != 1:
        raise SystemExit(
            "error: --batch-size needs --settlement=netted")
    if args.resume and not args.store:
        raise SystemExit("error: --resume requires --store")
    if args.store and args.compare:
        raise SystemExit(
            "error: --compare runs two fleets; a store holds exactly "
            "one run — drop --store or --compare")
    peer = None
    if args.transport == "net":
        if not args.peer:
            raise SystemExit(
                "error: --transport=net requires --peer HOST:PORT "
                "(start one with `repro node`)")
        if args.store or args.resume:
            raise SystemExit(
                "error: --store/--resume are in-process features; the "
                "net transport's chain state lives in the node")
        peer = _parse_hostport(args.peer, "--peer")
    elif args.peer or args.remote_role:
        raise SystemExit(
            "error: --peer/--remote-role need --transport=net")
    scope = (obs.telemetry(JsonlExporter(args.emit_telemetry))
             if args.emit_telemetry else nullcontext())
    modes = (["batch", "per-tx"] if args.compare else [args.mining])
    results = []
    with scope:
        for mode in modes:
            print(f"{args.app} fleet, {args.sessions} sessions, "
                  f"{args.dishonest:.0%} dishonest:")
            metrics, drivers, sim, engine = _run_fleet(
                args.sessions, args.app, mode, args.dishonest,
                workers=args.workers, settlement=args.settlement,
                batch_size=args.batch_size, store=args.store,
                resume=args.resume,
                evm_jit=False if args.no_jit else None,
                peer=peer, remote_roles=tuple(args.remote_role),
                pipeline=args.pipeline)
            unsettled = [d.session_id for d in drivers if not d.settled]
            if unsettled:
                raise SystemExit(
                    f"error: sessions did not settle: {unsettled}")
            _print_metrics(metrics)
            from repro.core import fleet_fingerprint

            print(f"  fleet fingerprint: "
                  f"{fleet_fingerprint(drivers)}")
            if peer is not None:
                client = sim.client
                rtts = sorted(client.rtts)
                if rtts:
                    p50 = rtts[len(rtts) // 2]
                    p99 = rtts[min(len(rtts) - 1,
                                   (len(rtts) * 99) // 100)]
                    print(f"  net transport    : {client.requests} "
                          f"requests, {client.retries} retries, "
                          f"rtt p50 {p50 * 1000:.2f}ms / "
                          f"p99 {p99 * 1000:.2f}ms")
                client.close()
            if engine.batcher is not None:
                batcher = engine.batcher
                print(f"  netted batches   : {len(batcher.batches)} "
                      f"({batcher.sessions_settled} sessions, "
                      f"{batcher.amortized_gas_per_session():,.0f} "
                      f"batch gas per session)")
            if args.store:
                kv_stats = engine.store.kv.stats()
                print(f"  durable store    : {args.store} "
                      f"({kv_stats['wal_commits']} commits, "
                      f"{kv_stats['wal_records']} WAL records, "
                      f"{kv_stats['compactions']} compactions"
                      f"{', resumed' if args.resume else ''})")
            stats = sim.chain.parallel_stats
            if stats.lanes:
                print(f"  parallel lanes   : {stats.lanes} "
                      f"({stats.speculative_commits} speculative, "
                      f"{stats.reexecutions} re-executed, "
                      f"conflict rate {stats.conflict_rate:.0%})")
            results.append((metrics, drivers))
    if args.emit_telemetry:
        print(f"telemetry written to {args.emit_telemetry}")
    if args.compare:
        (batch, batch_drivers), (per_tx, per_tx_drivers) = results
        ratio = (per_tx.blocks_mined / batch.blocks_mined
                 if batch.blocks_mined else float("inf"))
        same_ledgers = all(
            a.protocol.ledger.fingerprint() ==
            b.protocol.ledger.fingerprint()
            for a, b in zip(batch_drivers, per_tx_drivers))
        print(f"batch mining used {ratio:.1f}x fewer blocks; "
              f"per-session gas ledgers "
              f"{'identical' if same_ledgers else 'DIVERGED'}")
    return 0


def cmd_node(args: argparse.Namespace) -> int:
    """Run the shared chain-plus-bus node process.

    Binds the asyncio channel server and serves ``chain.*`` and
    ``bus.*`` commands until a client sends ``node.shutdown`` (or the
    process is interrupted).  Port 0 asks the OS for a free port; the
    bound address is printed as the first output line so parent
    processes can scrape it.
    """
    from repro.net import run_node

    host, port = _parse_hostport(args.listen, "--listen")
    try:
        run_node(host=host, port=port)
    except KeyboardInterrupt:
        print("repro-node interrupted", flush=True)
    return 0


def cmd_participant(args: argparse.Namespace) -> int:
    """Run a remote signer process for one or more fleet roles.

    Connects to a ``repro node``, derives the deterministic keys for
    ``--role`` across ``--sessions`` sessions of ``--app``, and serves
    Deploy/Sign signature requests from the node's shared bus until
    every expected signature is posted (``--expect`` overrides the
    default of one per session per role).
    """
    from repro.crypto.keys import PrivateKey
    from repro.net import ChannelClient, ParticipantNode

    if args.sessions < 1:
        raise SystemExit("error: --sessions must be at least 1")
    host, port = _parse_hostport(args.peer, "--peer")
    client = ChannelClient(host, port,
                           PrivateKey.from_seed("participant-client"))
    node = ParticipantNode(client, app=args.app,
                           sessions=args.sessions, roles=args.role)
    expect = (args.expect if args.expect is not None
              else args.sessions * len(args.role))
    print(f"{node.name} serving {expect} signature(s) for "
          f"{args.app} x {args.sessions}", flush=True)
    try:
        signed = node.serve(expect, idle_timeout=args.idle_timeout)
    finally:
        client.close()
    print(f"{node.name} signed {signed} request(s)")
    return 0


def cmd_adversary(args: argparse.Namespace) -> int:
    """Stage Byzantine strategies and check the rational-adherence
    invariants; non-zero exit when any invariant is violated."""
    from repro.adversary import (
        PROFILES,
        ScenarioHarness,
        check_invariants,
    )

    strategies = (sorted(PROFILES) if args.strategy == "all"
                  else [args.strategy])
    apps = (["betting", "escrow", "tender"] if args.app == "all"
            else [args.app])
    if args.deposits and apps != ["betting"]:
        raise SystemExit(
            "error: --deposits is only rendered for --app betting")
    if args.deposits and args.settlement == "netted":
        raise SystemExit(
            "error: --deposits settles per session; drop "
            "--settlement=netted")

    failures = 0
    for app in apps:
        harness = ScenarioHarness(app=app, deposits=args.deposits,
                                  settlement=args.settlement)
        for name in strategies:
            result = harness.run(name)
            violations = check_invariants(result)
            stages = " -> ".join(stage.name for stage in result.stages)
            verdict = ("ok" if not violations
                       else f"{len(violations)} violation(s)")
            print(f"{app}/{name}: {verdict}")
            print(f"  stages   : {stages}")
            if result.outcome is not None:
                print(f"  outcome  : {result.outcome.outcome!r} "
                      f"via {result.outcome.via}")
            for rejection in result.rejected_actions:
                print(f"  rejected : {rejection}")
            if result.dispute_gas:
                gas = ", ".join(f"{label}={value:,}" for label, value
                                in sorted(result.dispute_gas.items()))
                print(f"  dispute  : {gas} gas")
            if result.forfeited:
                print("  forfeited: "
                      f"{', '.join(result.forfeited)} (§IV deposit)")
            for violation in violations:
                print(f"  VIOLATION: {violation}")
            failures += len(violations)

    # Explicitly selecting crash-restart also graduates the crash to
    # real process death: SIGKILL a child `repro engine --store` run
    # mid-Submit/Challenge and verify --resume recovers bit-identically
    # ("all" sticks to the fast in-protocol scenarios).
    if args.strategy == "crash-restart":
        import tempfile

        from repro.adversary import run_kill_restart

        with tempfile.TemporaryDirectory(prefix="repro-crash-") as tmp:
            report = run_kill_restart(
                tmp, settlement=args.settlement, kill_mode="torn")
        verdict = ("bit-identical to the uninterrupted run"
                   if report.identical else "DIVERGED")
        print(f"kill-restart: child SIGKILLed after "
              f"{report.kill_after_commits} commits (torn WAL tail); "
              f"recovery {verdict}")
        for mismatch in report.mismatches:
            print(f"  VIOLATION: {mismatch}")
        if not report.identical:
            failures += max(1, len(report.mismatches))

    if failures:
        print(f"{failures} invariant violation(s)")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On/off-chain smart contracts (Li et al., ICDE 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile Solis source")
    p_compile.add_argument("file")
    p_compile.add_argument("--contract")
    p_compile.add_argument("--bytecode", action="store_true",
                           help="print full init bytecode hex")
    p_compile.set_defaults(func=cmd_compile)

    p_classify = sub.add_parser(
        "classify", help="classify functions light/public vs heavy/private")
    p_classify.add_argument("file")
    p_classify.add_argument("--contract")
    p_classify.add_argument("--gas-threshold", type=int, default=100_000)
    p_classify.set_defaults(func=cmd_classify)

    p_split = sub.add_parser(
        "split", help="split a whole contract into the on/off-chain pair")
    p_split.add_argument("file")
    p_split.add_argument("--contract")
    p_split.add_argument("--participants", required=True,
                         help="address[N] state variable name")
    p_split.add_argument("--result", required=True,
                         help="heavy function computing the result")
    p_split.add_argument("--settle", required=True,
                         help="light function applying the result")
    p_split.add_argument("--challenge-period", type=int, default=3_600)
    p_split.add_argument("--security-deposit", type=int, default=0)
    p_split.add_argument("--out", help="output directory")
    p_split.set_defaults(func=cmd_split)

    p_demo = sub.add_parser("demo", help="run an end-to-end demo")
    p_demo.add_argument("app", choices=["betting", "tender", "escrow"])
    p_demo.add_argument("--dispute", action="store_true",
                        help="make the representative lie")
    p_demo.set_defaults(func=cmd_demo)

    p_trace = sub.add_parser(
        "trace",
        help="run a scenario under full telemetry and print the trace")
    p_trace.add_argument("app", choices=["betting", "tender", "escrow"])
    p_trace.add_argument("--dispute", action="store_true",
                         help="make the representative lie")
    p_trace.add_argument("--top-slow", action="store_true",
                         help="also report wall time per opcode and "
                              "per opcode category")
    p_trace.add_argument("--no-jit", action="store_true",
                         help="force the interpreter for every EVM "
                              "execution (the traced path itself "
                              "always interprets)")
    p_trace.add_argument("--emit-telemetry", metavar="PATH",
                         help="also stream spans + metrics snapshot "
                              "to PATH as JSONL")
    p_trace.set_defaults(func=cmd_trace)

    p_engine = sub.add_parser(
        "engine",
        help="drive a fleet of concurrent sessions with batched mining")
    p_engine.add_argument("--sessions", type=int, default=10)
    p_engine.add_argument("--app", default="betting",
                          choices=["betting", "tender", "escrow"])
    p_engine.add_argument("--mining", default="batch",
                          choices=["batch", "per-tx"])
    p_engine.add_argument("--dishonest", type=float, default=0.0,
                          help="fraction of sessions whose "
                               "representative lies (0..1)")
    p_engine.add_argument("--workers", type=int, default=1,
                          help="speculative execution lanes per mined "
                               "block (1 = sequential apply)")
    p_engine.add_argument(
        "--pipeline", action=argparse.BooleanOptionalAction,
        default=False,
        help="overlap round k+1's signing/recovery with round k's "
             "mining on background workers (--no-pipeline to force "
             "the serial rounds; fingerprints are identical either "
             "way)")
    p_engine.add_argument("--no-jit", action="store_true",
                          help="force the interpreter for every EVM "
                               "execution (disable the bytecode-to-"
                               "Python JIT)")
    p_engine.add_argument("--settlement", default="direct",
                          choices=["direct", "netted"],
                          help="settle per session (direct) or per "
                               "Merkle-committed batch (netted)")
    p_engine.add_argument("--batch-size", type=int, default=None,
                          help="sessions per netted batch "
                               "(default: the whole fleet, capped)")
    p_engine.add_argument("--store", metavar="PATH",
                          help="persist the run (WAL + snapshots) "
                               "under this directory; see "
                               "docs/persistence.md")
    p_engine.add_argument("--resume", action="store_true",
                          help="recover and finish the run held in "
                               "--store (flags must match the "
                               "original run)")
    p_engine.add_argument("--compare", action="store_true",
                          help="run both mining modes and compare")
    p_engine.add_argument("--transport", default="inproc",
                          choices=["inproc", "net"],
                          help="run the chain in-process or against a "
                               "`repro node` over the wire protocol")
    p_engine.add_argument("--peer", metavar="HOST:PORT",
                          help="the chain node to connect to "
                               "(requires --transport=net)")
    p_engine.add_argument("--remote-role", action="append",
                          default=[], metavar="ROLE",
                          help="fleet role whose Deploy/Sign "
                               "signature comes from a separate "
                               "`repro participant` process "
                               "(repeatable; requires --transport=net)")
    p_engine.add_argument("--emit-telemetry", metavar="PATH",
                          help="stream spans + metrics snapshot "
                               "to PATH as JSONL")
    p_engine.set_defaults(func=cmd_engine)

    p_node = sub.add_parser(
        "node",
        help="run the shared chain + Whisper-bus node process")
    p_node.add_argument("--listen", default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="bind address (port 0 picks a free port; "
                             "the bound address is printed first)")
    p_node.set_defaults(func=cmd_node)

    p_participant = sub.add_parser(
        "participant",
        help="run a remote Deploy/Sign signer for fleet roles")
    p_participant.add_argument("--peer", required=True,
                               metavar="HOST:PORT",
                               help="the `repro node` to connect to")
    p_participant.add_argument("--role", action="append", required=True,
                               metavar="ROLE",
                               help="fleet role to sign for "
                                    "(repeatable)")
    p_participant.add_argument("--app", default="betting",
                               choices=["betting", "tender", "escrow"])
    p_participant.add_argument("--sessions", type=int, default=10,
                               help="fleet size (must match the "
                                    "engine's --sessions)")
    p_participant.add_argument("--expect", type=int, default=None,
                               help="signatures to serve before "
                                    "exiting (default: sessions x "
                                    "roles)")
    p_participant.add_argument("--idle-timeout", type=float,
                               default=30.0,
                               help="seconds without progress before "
                                    "this process fails loudly")
    p_participant.set_defaults(func=cmd_participant)

    p_adversary = sub.add_parser(
        "adversary",
        help="stage Byzantine strategies and check rational-adherence "
             "invariants")
    p_adversary.add_argument(
        "strategy",
        choices=["all", "withhold-signature", "false-result",
                 "late-dispute", "replay-copy", "crash-restart",
                 "censor-mempool", "lossy-transport"])
    p_adversary.add_argument(
        "--app", default="betting",
        choices=["betting", "tender", "escrow", "all"])
    p_adversary.add_argument(
        "--deposits", action="store_true",
        help="render the §IV security-deposit variant (betting only)")
    p_adversary.add_argument(
        "--settlement", default="direct",
        choices=["direct", "netted"],
        help="stage the scenarios against per-session (direct) or "
             "batched Merkle (netted) settlement")
    p_adversary.set_defaults(func=cmd_adversary)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: parse arguments and dispatch."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
