"""Real process-death crash/recovery harness.

The in-protocol ``crash-restart`` scenario
(:meth:`~repro.adversary.harness.ScenarioHarness` — a participant
loses its signed copy and reassembles it from the Whisper backlog)
models an *application* crash.  This module graduates the strategy to
actual process death: it launches ``repro engine --store=PATH`` as a
child process, SIGKILLs it mid-Submit/Challenge (the engine's
``REPRO_STORE_KILL_AFTER_COMMITS`` knob dies right after the N-th WAL
commit, optionally flushing a torn uncommitted tail first), resumes
the run with ``repro engine --store=PATH --resume`` in a second child,
and then verifies — against an uninterrupted in-process reference run
with identical flags — that every session's gas ledger and final state
came out bit-identical.

Both children are real ``python -m repro`` processes, so the recovery
path exercised here is exactly the operator one: a store directory
written by one process, killed without any cleanup, reopened by
another.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import repro
from repro.adversary.strategies import AdversaryError

#: Default commit count after which the child is killed.  Commit 1 is
#: the spawn bootstrap; each subsequent commit seals one mined round,
#: so 3 lands mid-Submit/Challenge for every stock app.
DEFAULT_KILL_AFTER = 3

_CHILD_TIMEOUT = 300  # seconds per child process


@dataclass
class SessionSnapshot:
    """One session's comparable terminal state."""

    session_id: int
    stage: str
    aborted: bool
    missed_window: bool
    truth: Any
    fingerprint: tuple


@dataclass
class CrashRecoveryReport:
    """What the kill-and-restart harness observed."""

    kill_after_commits: int
    kill_mode: str
    crash_returncode: int
    resume_returncode: int
    reference: list[SessionSnapshot] = field(default_factory=list)
    recovered: list[SessionSnapshot] = field(default_factory=list)
    blocks_match: bool = False
    txs_match: bool = False
    mismatches: list[str] = field(default_factory=list)

    @property
    def killed(self) -> bool:
        """True when the child actually died by SIGKILL."""
        return self.crash_returncode == -signal.SIGKILL

    @property
    def identical(self) -> bool:
        """True when recovery reproduced the uninterrupted run."""
        return (self.killed and self.resume_returncode == 0
                and not self.mismatches
                and self.blocks_match and self.txs_match)


def _engine_args(sessions: int, app: str, mining: str, dishonest: float,
                 settlement: str, batch_size: int,
                 store: Path, resume: bool) -> list[str]:
    args = [
        sys.executable, "-m", "repro", "engine",
        "--sessions", str(sessions), "--app", app,
        "--mining", mining, "--dishonest", str(dishonest),
        "--settlement", settlement, "--batch-size", str(batch_size),
        "--store", str(store),
    ]
    if resume:
        args.append("--resume")
    return args


def _child_env(extra: Optional[dict[str, str]] = None) -> dict[str, str]:
    """Child environment with this repro source tree importable."""
    env = os.environ.copy()
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env.pop("REPRO_STORE_KILL_AFTER_COMMITS", None)
    env.pop("REPRO_STORE_KILL_MODE", None)
    env.update(extra or {})
    return env


def _snapshot_driver(driver) -> SessionSnapshot:
    return SessionSnapshot(
        session_id=driver.session_id,
        stage=driver.protocol.stage.value,
        aborted=driver.aborted,
        missed_window=driver.missed_window,
        truth=driver.truth,
        fingerprint=driver.protocol.ledger.fingerprint(),
    )


def _snapshot_summary(session_id: int, summary) -> SessionSnapshot:
    return SessionSnapshot(
        session_id=session_id,
        stage=summary.stage_value,
        aborted=summary.aborted,
        missed_window=summary.missed_window,
        truth=summary.truth,
        fingerprint=tuple((e.stage, e.label, e.gas, e.actor)
                          for e in summary.ledger),
    )


def run_kill_restart(workdir: str | Path, *, sessions: int = 3,
                     app: str = "betting", mining: str = "batch",
                     dishonest: float = 0.34,
                     settlement: str = "direct", batch_size: int = 1,
                     kill_after_commits: int = DEFAULT_KILL_AFTER,
                     kill_mode: str = "kill",
                     timeout: int = _CHILD_TIMEOUT
                     ) -> CrashRecoveryReport:
    """Kill a child engine mid-run, resume it, compare to a clean run.

    ``kill_mode="torn"`` additionally makes the dying child flush
    garbage WAL records without a commit marker, so recovery must also
    discard a torn tail.  Raises :class:`AdversaryError` when the
    child fails to die or the resume child fails; state mismatches are
    reported (not raised) via ``report.identical`` / ``mismatches``.
    """
    from repro.cli import _run_fleet
    from repro.core.recovery import RunStore

    workdir = Path(workdir)
    store_dir = workdir / "crash-store"
    if store_dir.exists() and any(store_dir.iterdir()):
        raise AdversaryError(
            f"refusing to reuse non-empty store directory {store_dir}")

    # Uninterrupted reference, same flags, in-process (no store).
    metrics, drivers, __, ___ = _run_fleet(
        sessions, app, mining, dishonest,
        settlement=settlement, batch_size=batch_size)
    reference = [_snapshot_driver(driver) for driver in drivers]

    args = _engine_args(sessions, app, mining, dishonest, settlement,
                        batch_size, store_dir, resume=False)
    crash = subprocess.run(
        args, env=_child_env({
            "REPRO_STORE_KILL_AFTER_COMMITS": str(kill_after_commits),
            "REPRO_STORE_KILL_MODE": kill_mode,
        }),
        capture_output=True, text=True, timeout=timeout)
    if crash.returncode != -signal.SIGKILL:
        raise AdversaryError(
            f"the child engine did not die by SIGKILL after "
            f"{kill_after_commits} commits (exit {crash.returncode}); "
            f"stderr: {crash.stderr.strip()[-500:]}")

    resume_args = _engine_args(sessions, app, mining, dishonest,
                               settlement, batch_size, store_dir,
                               resume=True)
    resumed = subprocess.run(
        resume_args, env=_child_env(),
        capture_output=True, text=True, timeout=timeout)
    if resumed.returncode != 0:
        raise AdversaryError(
            f"--resume failed (exit {resumed.returncode}); stderr: "
            f"{resumed.stderr.strip()[-500:]}")

    report = CrashRecoveryReport(
        kill_after_commits=kill_after_commits, kill_mode=kill_mode,
        crash_returncode=crash.returncode,
        resume_returncode=resumed.returncode,
        reference=reference)

    # Read the resumed run's terminal summaries and counters straight
    # from the store the children shared.
    store = RunStore(store_dir)
    try:
        if store.status.get() != b"complete":
            report.mismatches.append(
                f"store status is {store.status.get()!r}, expected "
                f"b'complete'")
        for snap in reference:
            summary = store.load_summary(snap.session_id)
            if summary is None:
                report.mismatches.append(
                    f"session {snap.session_id}: no terminal summary "
                    "after resume")
                continue
            report.recovered.append(
                _snapshot_summary(snap.session_id, summary))
        counters = dict(store.load_counters())
        from repro import obs
        report.blocks_match = (
            counters.get(obs.names.METRIC_ENGINE_BLOCKS)
            == metrics.blocks_mined)
        report.txs_match = (
            counters.get(obs.names.METRIC_ENGINE_TXS)
            == metrics.transactions)
        if not report.blocks_match:
            report.mismatches.append(
                f"blocks: recovered "
                f"{counters.get(obs.names.METRIC_ENGINE_BLOCKS)} vs "
                f"reference {metrics.blocks_mined}")
        if not report.txs_match:
            report.mismatches.append(
                f"transactions: recovered "
                f"{counters.get(obs.names.METRIC_ENGINE_TXS)} vs "
                f"reference {metrics.transactions}")
    finally:
        store.close()

    recovered = {snap.session_id: snap for snap in report.recovered}
    for ref in reference:
        got = recovered.get(ref.session_id)
        if got is None:
            continue
        for field_name in ("stage", "aborted", "missed_window",
                           "truth", "fingerprint"):
            want, have = getattr(ref, field_name), getattr(got, field_name)
            if want != have:
                report.mismatches.append(
                    f"session {ref.session_id} {field_name}: "
                    f"recovered {have!r} vs reference {want!r}")
    return report
