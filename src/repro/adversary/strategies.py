"""The Byzantine strategies the fault-injection harness can stage.

Each profile names one way a participant (or the transport under them)
can deviate from the paper's protocol, together with the terminal state
the protocol is *supposed* to reach despite the deviation.  Profiles
that map onto a per-participant behaviour carry the corresponding
:class:`~repro.core.participants.Strategy`; the transport-level attacks
(replay, crash, censorship) are staged by the harness itself and have
no single-participant strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.participants import Strategy
from repro.exceptions import ReproError


class AdversaryError(ReproError, RuntimeError):
    """A scenario could not be staged or reached the wrong outcome."""


@dataclass(frozen=True)
class AdversaryProfile:
    """One named deviation plus the outcome the protocol must force.

    ``aborts`` marks scenarios that must terminate before any money
    moves (rule 1 of Table I); ``disputes`` marks scenarios that must
    settle through Dispute/Resolve; neither set means the honest
    finalize path must win.
    """

    name: str
    strategy: Optional[Strategy]
    summary: str
    aborts: bool = False
    disputes: bool = False


WITHHOLD_SIGNATURE = AdversaryProfile(
    name="withhold-signature",
    strategy=Strategy.REFUSES_TO_SIGN,
    summary="the representative never signs the off-chain copy; the "
            "session must abort before any deposit moves",
    aborts=True,
)

FALSE_RESULT = AdversaryProfile(
    name="false-result",
    strategy=Strategy.LIES_ABOUT_RESULT,
    summary="the representative submits a falsified result; an honest "
            "challenger overturns it through Dispute/Resolve",
    disputes=True,
)

LATE_DISPUTE = AdversaryProfile(
    name="late-dispute",
    strategy=Strategy.DISPUTES_LATE,
    summary="a griefer disputes a truthful proposal only after "
            "challengeDeadline; both the protocol pre-check and the "
            "on-chain require must reject it",
)

REPLAY_COPY = AdversaryProfile(
    name="replay-copy",
    strategy=None,
    summary="the liar replays a signed copy from a sock-puppet session "
            "to hijack the dispute; the bytecode-hash binding rejects "
            "it and the honest copy wins",
    disputes=True,
)

CRASH_RESTART = AdversaryProfile(
    name="crash-restart",
    strategy=None,
    summary="an honest participant crashes after signing, loses its "
            "copy, recovers it from the Whisper backlog and still "
            "wins the dispute; `repro adversary crash-restart` "
            "additionally SIGKILLs a child engine mid-run and "
            "verifies --store/--resume recovery is bit-identical "
            "(repro.adversary.crash)",
    disputes=True,
)

CENSOR_MEMPOOL = AdversaryProfile(
    name="censor-mempool",
    strategy=None,
    summary="an adversarial miner censors and stalls the dispute "
            "transactions; resubmission and replace-by-fee land the "
            "dispute before the deadline anyway",
    disputes=True,
)

LOSSY_TRANSPORT = AdversaryProfile(
    name="lossy-transport",
    strategy=None,
    summary="the network under the Whisper bus drops, duplicates, "
            "delays and reorders deliveries (repro.net.faults.LOSSY); "
            "retransmission plus idempotent redelivery must keep the "
            "outcome and the gas ledger bit-identical to the clean "
            "false-result run",
    disputes=True,
)

PROFILES: dict[str, AdversaryProfile] = {
    p.name: p for p in (
        WITHHOLD_SIGNATURE, FALSE_RESULT, LATE_DISPUTE,
        REPLAY_COPY, CRASH_RESTART, CENSOR_MEMPOOL,
        LOSSY_TRANSPORT,
    )
}


def profile(name: str) -> AdversaryProfile:
    """Look a profile up by name (AdversaryError on unknown)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise AdversaryError(
            f"unknown adversary strategy {name!r}; "
            f"choose from {sorted(PROFILES)}"
        ) from None
