"""Stages each Byzantine strategy against a real protocol session.

The harness builds a fresh simulator, binds the app's participants to
the simulator's deterministic accounts (so signed-copy bytes — and
therefore dispute gas — are reproducible run to run), injects one
deviation, and drives the session to its terminal state while keeping
the books an invariant checker needs: per-participant balances and gas,
the stage trajectory, every rejected adversarial action, and the
dispute receipts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.adversary.strategies import (
    AdversaryError,
    AdversaryProfile,
    profile as get_profile,
)
from repro.chain.mempool import MempoolError
from repro.chain.simulator import ETHER, EthereumSimulator
from repro.chain.transaction import Transaction
from repro.core.exceptions import (
    ChallengeWindowClosed,
    DisputeError,
    SigningError,
)
from repro.core.participants import Participant, Strategy
from repro.core.protocol import (
    DisputeOutcome,
    OnOffChainProtocol,
    ProtocolOutcome,
    Stage,
    StageResult,
    results_equal,
)
from repro.core.settlement import (
    OPEN_GAS,
    SETTLEMENTS,
    SettlementBatcher,
)
from repro.crypto import rlp
from repro.crypto.ecdsa import Signature
from repro.crypto.keys import Address
from repro.offchain.signing import assemble_signed_copy

#: §IV deposit used by the ``deposits=True`` betting variant.
SECURITY_DEPOSIT = ETHER // 2

#: Gas limit for hand-rolled dispute transactions — must match
#: :meth:`OnOffChainProtocol.dispute` so gas_used stays bit-identical.
DISPUTE_GAS_LIMIT = 6_000_000

_ROLES = {
    "betting": ("alice", "bob"),
    "escrow": ("buyer", "seller"),
    "tender": ("buyer", "contractorA", "contractorB"),
}


@dataclass
class ScenarioResult:
    """Everything the invariant checker needs about one scenario run."""

    strategy: str
    app: str
    deposits: bool
    stages: tuple[Stage, ...]
    aborted: bool
    disputed: bool
    outcome: Optional[ProtocolOutcome]
    rejected_actions: tuple[str, ...]
    honest: tuple[str, ...]
    start_balances: dict[str, int] = field(default_factory=dict)
    end_balances: dict[str, int] = field(default_factory=dict)
    gas_paid: dict[str, int] = field(default_factory=dict)
    dispute_gas: dict[str, int] = field(default_factory=dict)
    forfeited: tuple[str, ...] = ()
    settlement: str = "direct"
    #: Ordered (stage, label, gas, actor) ledger fingerprint — what
    #: the lossy-transport scenario compares bit-for-bit.
    ledger_fingerprint: tuple = ()

    def net_modulo_gas(self, name: str) -> int:
        """Balance change with the participant's own gas added back.

        This is the quantity the paper's rational-adherence argument
        speaks about: what the protocol itself paid or took, with the
        cost of *participating* (gas) factored out.
        """
        return (self.end_balances[name] - self.start_balances[name]
                + self.gas_paid[name])


class ScenarioHarness:
    """Builds and runs one adversarial scenario per call.

    Every run uses a fresh :class:`EthereumSimulator` whose accounts
    are derived from fixed seeds, so two runs of the same scenario are
    bit-identical — including the dispute gas the invariant checker
    pins against the Table II reference.
    """

    def __init__(self, app: str = "betting",
                 deposits: bool = False,
                 settlement: str = "direct") -> None:
        if app not in _ROLES:
            raise AdversaryError(
                f"unknown app {app!r}; choose from {sorted(_ROLES)}")
        if deposits and app != "betting":
            raise AdversaryError(
                "the §IV security-deposit variant is rendered for the "
                "betting app only")
        if settlement not in SETTLEMENTS:
            raise AdversaryError(
                f"unknown settlement mode {settlement!r}; choose from "
                f"{SETTLEMENTS}")
        if deposits and settlement == "netted":
            raise AdversaryError(
                "the §IV deposit variant settles per session — run it "
                "under direct settlement")
        self.app = app
        self.deposits = deposits
        self.settlement = settlement
        # Per-run netted state (reset in _build).
        self._batcher: Optional[SettlementBatcher] = None
        self._batch = None
        self._truth = None

    # -- public entry points -------------------------------------------

    def run(self, strategy: str | AdversaryProfile) -> ScenarioResult:
        """Stage one strategy end to end and return its books."""
        prof = (strategy if isinstance(strategy, AdversaryProfile)
                else get_profile(strategy))
        runner = getattr(self, "_run_" + prof.name.replace("-", "_"))
        with obs.span(obs.names.SPAN_ADVERSARY_SCENARIO,
                      strategy=prof.name, app=self.app):
            if obs.enabled():
                obs.inc(obs.names.METRIC_ADVERSARY_SCENARIOS,
                        strategy=prof.name, app=self.app)
            result = runner(prof)
        self._check_expectations(prof, result)
        return result

    def baseline(self) -> ScenarioResult:
        """The all-honest run every scenario is judged against."""
        sim, participants, protocol = self._build({})
        books = _Books(sim, participants, protocol)
        self._deploy_and_sign(protocol, participants, books)
        self._fund_and_ready(protocol, participants)
        self._propose(protocol, participants[0])
        books.mark(protocol)
        challenge = self._police(protocol, books)
        if challenge.disputed:
            raise AdversaryError("the honest baseline disputed itself")
        self._close(protocol, participants[0])
        books.mark(protocol)
        forfeited = self._settle_deposits(protocol)
        return self._result(
            "honest-baseline", protocol, participants, books,
            adversaries=frozenset(), aborted=False, dispute=None,
            forfeited=forfeited)

    # -- the six scenarios ---------------------------------------------

    def _run_withhold_signature(self, prof) -> ScenarioResult:
        sim, participants, protocol = self._build(
            {0: Strategy.REFUSES_TO_SIGN})
        books = _Books(sim, participants, protocol)
        self._deploy(protocol, participants[0])
        books.mark(protocol)
        try:
            protocol.collect_signatures()
        except SigningError as exc:
            books.reject(f"signature withheld: {exc}")
        else:
            raise AdversaryError(
                "withhold-signature failed to abort the session")
        return self._result(
            prof.name, protocol, participants, books,
            adversaries={participants[0].name}, aborted=True,
            dispute=None)

    def _run_false_result(self, prof) -> ScenarioResult:
        sim, participants, protocol = self._build(
            {0: Strategy.LIES_ABOUT_RESULT})
        books = _Books(sim, participants, protocol)
        self._deploy_and_sign(protocol, participants, books)
        self._fund_and_ready(protocol, participants)
        self._propose(protocol, participants[0])  # falsified
        books.mark(protocol)
        challenge = self._police(protocol, books)
        books.mark(protocol)
        if not challenge.disputed:
            raise AdversaryError("the false result was not disputed")
        forfeited = self._settle_deposits(protocol)
        return self._result(
            prof.name, protocol, participants, books,
            adversaries={participants[0].name}, aborted=False,
            dispute=challenge.value, forfeited=forfeited)

    def _run_late_dispute(self, prof) -> ScenarioResult:
        sim, participants, protocol = self._build(
            {1: Strategy.DISPUTES_LATE})
        griefer = participants[1]
        books = _Books(sim, participants, protocol)
        self._deploy_and_sign(protocol, participants, books)
        self._fund_and_ready(protocol, participants)
        self._propose(protocol, participants[0])  # truthful
        books.mark(protocol)

        deadline = protocol.challenge_deadline()
        sim.advance_time_to(deadline + 1)
        if self.settlement == "direct":
            try:
                protocol.dispute(griefer)
            except ChallengeWindowClosed as exc:
                books.reject(f"late dispute refused off-chain: {exc}")
            else:
                raise AdversaryError(
                    "a dispute past challengeDeadline was accepted")
            # The contract enforces the same bound: a hand-crafted late
            # transaction reverts instead of hijacking the settlement.
            copy = protocol.signed_copies[griefer.name]
            receipt = protocol.onchain.transact(
                "deployVerifiedInstance", copy.bytecode,
                *copy.vrs_arguments(), sender=griefer.account,
                gas_limit=DISPUTE_GAS_LIMIT, require_success=False)
            if receipt.status:
                raise AdversaryError(
                    "the on-chain deadline guard accepted a late "
                    "dispute")
            books.reject(
                "late deployVerifiedInstance reverted on-chain "
                f"(block past deadline {deadline})")
            books.extra_gas[griefer.name] += receipt.gas_used
        else:
            # Netted: the batch window bounds openings the same way
            # the per-session window bounds disputes.
            try:
                protocol.open_leaf(griefer)
            except ChallengeWindowClosed as exc:
                books.reject(f"late opening refused off-chain: {exc}")
            else:
                raise AdversaryError(
                    "an opening past the batch deadline was accepted")
            # The rendered aggregator enforces the same bound.
            commitment = protocol.batch_commitment
            receipt = self._batch.aggregator.transact(
                "openLeaf", commitment.leaf, commitment.index,
                *commitment.proof, sender=griefer.account,
                gas_limit=OPEN_GAS, require_success=False)
            if receipt.status:
                raise AdversaryError(
                    "the aggregator accepted a late opening")
            books.reject(
                "late openLeaf reverted on-chain "
                f"(block past batch deadline {deadline})")
            books.extra_gas[griefer.name] += receipt.gas_used

        self._close(protocol, participants[0])
        books.mark(protocol)
        forfeited = self._settle_deposits(protocol)
        return self._result(
            prof.name, protocol, participants, books,
            adversaries={griefer.name}, aborted=False, dispute=None,
            forfeited=forfeited)

    def _run_replay_copy(self, prof) -> ScenarioResult:
        sim, participants, protocol = self._build(
            {0: Strategy.LIES_ABOUT_RESULT})
        liar = participants[0]
        books = _Books(sim, participants, protocol)

        # The liar controls a sock-puppet session whose participants
        # all sign — yielding a fully signed copy of *different*
        # bytecode (different addresses baked into the constructor).
        socks = [
            Participant(
                account=sim.create_account(
                    f"sock-{self.app}-{index}", name=f"sock{index}"),
                name=f"sock{index}")
            for index in range(len(participants))
        ]
        sock_protocol = self._make_protocol(sim, socks)
        self._deploy(sock_protocol, socks[0])
        sock_protocol.collect_signatures()
        foreign = sock_protocol.signed_copies[socks[0].name]

        self._deploy_and_sign(protocol, participants, books)
        self._fund_and_ready(protocol, participants)
        self._propose(protocol, liar)  # falsified
        books.mark(protocol)

        # Off-chain guard: the foreign copy fails participant-list
        # verification outright.
        try:
            foreign.require_valid(
                [p.address for p in protocol.participants])
        except SigningError as exc:
            books.reject(f"replayed copy failed verification: {exc}")
        else:
            raise AdversaryError(
                "a foreign signed copy verified against this session")
        # On-chain guard: keccak256(bytecode) does not match the hash
        # the honest participants signed, so the replay reverts.
        receipt = protocol.onchain.transact(
            "deployVerifiedInstance", foreign.bytecode,
            *foreign.vrs_arguments(), sender=liar.account,
            gas_limit=DISPUTE_GAS_LIMIT, require_success=False)
        if receipt.status:
            raise AdversaryError(
                "the contract accepted a replayed signed copy")
        books.reject("replayed deployVerifiedInstance reverted "
                     "(bytecode hash mismatch)")
        books.extra_gas[liar.name] += receipt.gas_used

        challenge = self._police(protocol, books)
        books.mark(protocol)
        if not challenge.disputed:
            raise AdversaryError("the honest dispute never happened")
        forfeited = self._settle_deposits(protocol)
        return self._result(
            prof.name, protocol, participants, books,
            adversaries={liar.name}, aborted=False,
            dispute=challenge.value, forfeited=forfeited)

    def _run_crash_restart(self, prof) -> ScenarioResult:
        sim, participants, protocol = self._build(
            {0: Strategy.LIES_ABOUT_RESULT})
        victim = participants[1]
        books = _Books(sim, participants, protocol)
        self._deploy_and_sign(protocol, participants, books)

        # Crash: the victim loses its local signed copy mid-stage.
        protocol.signed_copies.pop(victim.name)
        try:
            protocol.dispute(victim)
        except DisputeError as exc:
            books.reject(f"dispute without a signed copy refused: {exc}")
        else:
            raise AdversaryError(
                "a dispute without a signed copy was accepted")

        # Restart: the signature envelopes are still on the Whisper
        # backlog (within TTL), so the victim reassembles its copy.
        collected: dict[Address, Signature] = {}
        for envelope in protocol.bus.peek_all(protocol._signing_topic):
            address_raw, sig_raw = rlp.decode(envelope.payload)
            collected[Address(address_raw)] = Signature.from_bytes(sig_raw)
        recovered = assemble_signed_copy(
            protocol.offchain_bytecode, collected,
            [p.address for p in protocol.participants])
        protocol.signed_copies[victim.name] = recovered

        self._fund_and_ready(protocol, participants)
        self._propose(protocol, participants[0])  # falsified
        books.mark(protocol)
        challenge = self._police(protocol, books)
        books.mark(protocol)
        if not challenge.disputed:
            raise AdversaryError(
                "the recovered participant failed to dispute")
        forfeited = self._settle_deposits(protocol)
        return self._result(
            prof.name, protocol, participants, books,
            adversaries={participants[0].name}, aborted=False,
            dispute=challenge.value, forfeited=forfeited)

    def _run_censor_mempool(self, prof) -> ScenarioResult:
        sim, participants, protocol = self._build(
            {0: Strategy.LIES_ABOUT_RESULT})
        challenger = participants[1]
        books = _Books(sim, participants, protocol)
        self._deploy_and_sign(protocol, participants, books)
        self._fund_and_ready(protocol, participants)
        self._propose(protocol, participants[0])  # falsified
        books.mark(protocol)

        if self.settlement == "netted":
            # The challenger opens the contested leaf normally (the
            # censor targets the dispute pair, not the opening), then
            # the hand-rolled censored escalation proceeds unchanged.
            protocol.open_leaf(challenger)
            books.mark(protocol)

        copy = protocol.signed_copies[challenger.name]
        copy.require_valid([p.address for p in protocol.participants])
        onchain = protocol.onchain

        def signed(to: Address, data: bytes,
                   gas_price: int) -> Transaction:
            """Hand-roll a challenger transaction at the state nonce."""
            return Transaction.create_signed(
                private_key=challenger.key,
                nonce=sim.get_nonce(challenger.account),
                to=to, value=0, data=data,
                gas_limit=DISPUTE_GAS_LIMIT, gas_price=gas_price)

        # Leg 1: the censoring miner pulls the dispute out of the pool
        # and mines an empty block without it.
        deploy_data = onchain.abi.function(
            "deployVerifiedInstance").encode_call(
                [copy.bytecode, *copy.vrs_arguments()])
        first = signed(onchain.address, deploy_data, gas_price=1)
        sim.chain.send_transaction(first)
        censored = sim.chain.mempool.pop_batch(sim.chain.block_gas_limit)
        sim.mine()
        books.reject(
            f"miner censored {len(censored)} dispute transaction(s) "
            "out of its block")
        # The challenger sees no receipt and resubmits; a miner that
        # is not in on the censorship includes it.
        resent = signed(onchain.address, deploy_data, gas_price=1)
        sim.chain.send_transaction(resent)
        sim.mine()
        deploy_receipt = sim.get_receipt(resent.hash)
        if not deploy_receipt.status:
            raise AdversaryError("the resubmitted dispute reverted")
        protocol.ledger.record(Stage.DISPUTED.value,
                               "deployVerifiedInstance",
                               deploy_receipt, challenger.name)

        # Leg 2: the miner stalls the resolution instead of dropping
        # it; the challenger bumps the fee (replace-by-gas-price) and
        # the greedy miner defects from the censorship.
        instance_address = Address(onchain.call("deployedAddr"))
        resolve_data = protocol.compiled_offchain.abi.function(
            "returnDisputeResolution").encode_call([onchain.address])
        stalled = signed(instance_address, resolve_data, gas_price=1)
        sim.chain.send_transaction(stalled)
        sim.increase_time(300)  # blocks pass; the tx never lands
        replacement = signed(instance_address, resolve_data, gas_price=2)
        sim.chain.send_transaction(replacement)  # same-nonce RBF
        try:
            sim.chain.send_transaction(stalled)  # censor re-injects
        except MempoolError as exc:
            books.reject(f"stale original refused re-entry: {exc}")
        else:
            raise AdversaryError(
                "the mempool re-admitted an underpriced duplicate")
        sim.mine()
        resolve_receipt = sim.get_receipt(replacement.hash)
        if not resolve_receipt.status:
            raise AdversaryError("the fee-bumped resolution reverted")
        protocol.ledger.record(Stage.DISPUTED.value,
                               "returnDisputeResolution",
                               resolve_receipt, challenger.name)
        # The RBF leg paid gas_price=2: one extra gas_used of cost on
        # top of what the ledger (which assumes price 1) accounts.
        books.extra_gas[challenger.name] += resolve_receipt.gas_used

        dispute = protocol.record_dispute(
            instance_address, deploy_receipt, resolve_receipt)
        books.mark(protocol)
        forfeited = self._settle_deposits(protocol)
        return self._result(
            prof.name, protocol, participants, books,
            adversaries={participants[0].name}, aborted=False,
            dispute=dispute, forfeited=forfeited)

    def _run_lossy_transport(self, prof) -> ScenarioResult:
        """False-result over a faulty wire: the deviation is *under*
        the protocol.  Every Whisper exchange crosses a channel that
        drops, duplicates, delays and reorders frames (the ``LOSSY``
        schedule); the client's retransmission and the server's
        idempotent dedup window must absorb all of it, leaving the
        dispute outcome and the gas ledger bit-identical to the clean
        false-result run of the same app."""
        from repro.crypto.keys import PrivateKey
        from repro.net import (
            ChannelClient,
            ChannelServer,
            FaultPolicy,
            NodeService,
            RemoteWhisperTransport,
        )
        from repro.net.faults import LOSSY

        clean = self._run_false_result(get_profile("false-result"))

        service = NodeService()  # only its bus is used here
        handle = ChannelServer(service.dispatch).start_in_thread()
        client = ChannelClient(
            "127.0.0.1", handle.port,
            PrivateKey.from_seed("adversary-lossy-client"),
            timeout=0.25, faults=FaultPolicy(**LOSSY))
        try:
            sim, participants, protocol = self._build(
                {0: Strategy.LIES_ABOUT_RESULT})
            # The chain stays local; only the off-chain bus crosses
            # the faulty wire (swapped in before any bus traffic).
            protocol.bus = RemoteWhisperTransport(client)
            books = _Books(sim, participants, protocol)
            self._deploy_and_sign(protocol, participants, books)
            self._fund_and_ready(protocol, participants)
            self._propose(protocol, participants[0])  # falsified
            books.mark(protocol)
            challenge = self._police(protocol, books)
            books.mark(protocol)
            if not challenge.disputed:
                raise AdversaryError(
                    "the false result went undisputed over the lossy "
                    "transport")
            faults_absorbed = client.retries
            if not faults_absorbed:
                raise AdversaryError(
                    "the lossy schedule never fired — the scenario "
                    "exercised a clean wire")
            forfeited = self._settle_deposits(protocol)
            if protocol.ledger.fingerprint() != clean.ledger_fingerprint:
                raise AdversaryError(
                    "drop/duplicate/reorder faults changed the gas "
                    "ledger relative to the clean run")
            books.reject(
                f"transport faults absorbed by {faults_absorbed} "
                "retransmission(s) + idempotent redelivery; gas "
                "ledger bit-identical to the clean run")
        finally:
            client.close()
            handle.stop()
        return self._result(
            prof.name, protocol, participants, books,
            adversaries={participants[0].name}, aborted=False,
            dispute=challenge.value, forfeited=forfeited)

    # -- shared plumbing -----------------------------------------------

    def _build(self, strategies: dict[int, Strategy]):
        sim = EthereumSimulator()
        participants = [
            Participant(account=sim.accounts[index], name=role,
                        strategy=strategies.get(index, Strategy.HONEST))
            for index, role in enumerate(_ROLES[self.app])
        ]
        protocol = self._make_protocol(sim, participants)
        self._batcher = (SettlementBatcher(sim)
                         if self.settlement == "netted" else None)
        self._batch = None
        self._truth = None
        return sim, participants, protocol

    # -- the settlement seam -------------------------------------------

    def _propose(self, protocol, proposer) -> None:
        """Stage-3 entry under either mode: per-session submit
        (direct) or enlist the signed state and commit a one-session
        batch (netted)."""
        if self.settlement == "direct":
            protocol.submit_result(proposer)
            return
        self._truth = protocol.reach_unanimous_agreement()
        claim = proposer.claimed_result(self._truth)
        self._batcher.enlist(protocol, claim, signer=proposer)
        self._batch = self._batcher.commit()

    def _police(self, protocol, books=None) -> StageResult:
        """Honest parties police the proposal or the batch leaf.

        Under netting a bad leaf (wrong claim, or a signature that
        does not recover to the representative) is *opened* on the
        aggregator first, then escalated through the unchanged
        Dispute/Resolve machinery on the session contract.
        """
        if self.settlement == "direct":
            return protocol.run_challenge_window()
        commitment = protocol.batch_commitment
        entry = self._batch.entries[commitment.index]
        clean = (commitment.state.verify(entry.signer.address)
                 and results_equal(commitment.claim, self._truth))
        if clean:
            return StageResult(stage=protocol.stage, value=None)
        challenger = next(
            (p for p in protocol.participants if p.will_challenge),
            None)
        if challenger is None:
            raise DisputeError(
                "a false leaf was committed but no honest participant "
                "challenged — all parties silent or dishonest")
        protocol.open_leaf(challenger)
        if books is not None:
            books.mark(protocol)
        return protocol.dispute(challenger)

    def _close(self, protocol, closer) -> None:
        """Close out: finalize the proposal or the whole batch."""
        if self.settlement == "direct":
            protocol.finalize(closer)
        else:
            self._batcher.finalize(self._batch)

    def _make_protocol(self, sim, participants) -> OnOffChainProtocol:
        if self.app == "betting":
            from repro.apps.betting import make_betting_protocol

            return make_betting_protocol(
                sim, participants[0], participants[1],
                security_deposit=(SECURITY_DEPOSIT if self.deposits
                                  else 0))
        if self.app == "escrow":
            from repro.apps.escrow import make_escrow_protocol

            return make_escrow_protocol(
                sim, participants[0], participants[1])
        from repro.apps.tender import make_tender_protocol

        return make_tender_protocol(sim, *participants)

    def _deploy(self, protocol, deployer) -> None:
        if self.app == "betting":
            from repro.apps.betting import deploy_betting

            deploy_betting(protocol, deployer)
        elif self.app == "escrow":
            from repro.apps.escrow import deploy_escrow

            deploy_escrow(protocol, deployer)
        else:
            from repro.apps.tender import deploy_tender

            deploy_tender(protocol, deployer)

    def _deploy_and_sign(self, protocol, participants, books) -> None:
        self._deploy(protocol, participants[0])
        books.mark(protocol)
        protocol.collect_signatures()
        books.mark(protocol)
        if self.deposits:
            protocol.pay_security_deposits()

    def _fund_and_ready(self, protocol, participants) -> None:
        """App-specific escrow plus any timeline wait before submit."""
        if self.app == "betting":
            plan = protocol.betting_plan
            for participant in participants:
                protocol.call_onchain(participant, "deposit",
                                      value=plan["stake"])
            protocol.simulator.advance_time_to(plan["timeline"].t2 + 1)
        elif self.app == "escrow":
            protocol.call_onchain(participants[0], "fund",
                                  value=protocol.escrow_plan["price"])
        else:
            protocol.call_onchain(participants[0], "fund",
                                  value=protocol.tender_plan["budget"])

    def _settle_deposits(self, protocol) -> tuple[str, ...]:
        """Withdraw §IV deposits; report (and count) forfeitures."""
        if not self.deposits:
            return ()
        withdrawals = protocol.withdraw_security_deposits()
        forfeited = tuple(sorted(
            name for name, withdrew in withdrawals.items()
            if not withdrew))
        if forfeited and obs.enabled():
            obs.inc(obs.names.METRIC_ADVERSARY_FORFEITS,
                    len(forfeited), app=self.app)
        return forfeited

    def _result(self, strategy: str, protocol, participants,
                books: "_Books", adversaries, aborted: bool,
                dispute: Optional[DisputeOutcome],
                forfeited: tuple[str, ...] = ()) -> ScenarioResult:
        sim = protocol.simulator
        gas_paid = {p.name: books.extra_gas.get(p.name, 0)
                    for p in participants}
        for entry in protocol.ledger.entries:
            if entry.actor in gas_paid:
                gas_paid[entry.actor] += entry.gas
        dispute_gas: dict[str, int] = {}
        if dispute is not None:
            dispute_gas = {
                "deployVerifiedInstance":
                    dispute.deploy_receipt.gas_used,
                "returnDisputeResolution":
                    dispute.resolve_receipt.gas_used,
            }
        if books.rejections and obs.enabled():
            obs.inc(obs.names.METRIC_ADVERSARY_REJECTED,
                    len(books.rejections), strategy=strategy,
                    app=self.app)
        return ScenarioResult(
            strategy=strategy,
            app=self.app,
            deposits=self.deposits,
            settlement=self.settlement,
            stages=tuple(books.stages),
            aborted=aborted,
            disputed=dispute is not None,
            outcome=None if aborted else protocol.outcome(),
            rejected_actions=tuple(books.rejections),
            honest=tuple(p.name for p in participants
                         if p.name not in adversaries),
            start_balances=books.start,
            end_balances={p.name: sim.get_balance(p.account)
                          for p in participants},
            gas_paid=gas_paid,
            dispute_gas=dispute_gas,
            forfeited=forfeited,
            ledger_fingerprint=protocol.ledger.fingerprint(),
        )

    @staticmethod
    def _check_expectations(prof: AdversaryProfile,
                            result: ScenarioResult) -> None:
        if prof.aborts != result.aborted:
            raise AdversaryError(
                f"{prof.name}: expected aborted={prof.aborts}, "
                f"got {result.aborted}")
        if prof.disputes != result.disputed:
            raise AdversaryError(
                f"{prof.name}: expected disputed={prof.disputes}, "
                f"got {result.disputed}")


class _Books:
    """Per-run bookkeeping: stages, balances, rejections, extra gas."""

    def __init__(self, sim, participants, protocol=None) -> None:
        self.start = {p.name: sim.get_balance(p.account)
                      for p in participants}
        self.stages: list[Stage] = []
        self.rejections: list[str] = []
        self.extra_gas: dict[str, int] = {p.name: 0 for p in participants}
        if protocol is not None:
            self.mark(protocol)

    def mark(self, protocol) -> None:
        """Record the protocol's stage if it moved."""
        if not self.stages or self.stages[-1] is not protocol.stage:
            self.stages.append(protocol.stage)

    def reject(self, detail: str) -> None:
        """Record one adversarial action the protocol turned away."""
        self.rejections.append(detail)


def run_scenario(strategy: str, app: str = "betting",
                 deposits: bool = False,
                 settlement: str = "direct") -> ScenarioResult:
    """One-call convenience: stage a strategy against an app."""
    return ScenarioHarness(app=app, deposits=deposits,
                           settlement=settlement).run(strategy)
