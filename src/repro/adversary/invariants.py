"""Rational-adherence invariants checked after every scenario.

The paper's incentive argument (§III-C, §IV) only holds if deviating
never improves the deviator's position and never damages anyone
honest.  After the harness stages a Byzantine strategy, these checks
assert the three facts that argument rests on:

1. *Honest participants end no worse off than the honest path* —
   modulo the gas they spent participating.  A protocol where honesty
   costs money is one rational players leave.
2. *The stage trajectory follows Table I* — no scenario may teleport
   the session between lifecycle stages.
3. *Dispute gas is bit-identical to the reference run* — the cost of
   policing a lie is fixed and known in advance (Table II pins the
   challenge-period-free figures at 225,082 + reveal and 37,745), so
   a cheater cannot grief a challenger with unbounded dispute cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.adversary.harness import ScenarioHarness, ScenarioResult
from repro.core.protocol import Stage

#: Table II reference figures for the dispute path (challenge-period
#: 0 rendering of the betting contract; asserted by
#: ``benchmarks/bench_table2_dispute_gas.py`` and the bench-runner's
#: adversarial dispute scenario).
PAPER_DEPLOY_VERIFIED_INSTANCE = 225_082
PAPER_RETURN_DISPUTE_RESOLUTION = 37_745

#: Legal stage transitions (Table I, extended by the netted lane).
#: ``SIGNED -> RESOLVED`` covers a dispute raised straight from
#: Deploy/Sign (no proposal on record); ``PROPOSED -> RESOLVED`` is
#: the Submit/Challenge escalation.  ``SIGNED -> COMMITTED ->
#: {SETTLED, OPENED}`` and ``OPENED -> RESOLVED`` are the netted
#: batch lane: bind into a batch, then settle with it or be opened
#: and escalate through the unchanged dispute machinery.
_TABLE_I_EDGES: dict[Stage, frozenset[Stage]] = {
    Stage.CREATED: frozenset({Stage.GENERATED}),
    Stage.GENERATED: frozenset({Stage.DEPLOYED}),
    Stage.DEPLOYED: frozenset({Stage.SIGNED}),
    Stage.SIGNED: frozenset({Stage.PROPOSED, Stage.RESOLVED,
                             Stage.COMMITTED}),
    Stage.PROPOSED: frozenset({Stage.SETTLED, Stage.RESOLVED}),
    Stage.COMMITTED: frozenset({Stage.SETTLED, Stage.OPENED}),
    Stage.OPENED: frozenset({Stage.RESOLVED}),
    Stage.SETTLED: frozenset(),
    Stage.DISPUTED: frozenset({Stage.RESOLVED}),
    Stage.RESOLVED: frozenset(),
}

#: Stages a run may legitimately stop in.
_TERMINAL_STAGES = frozenset({Stage.SETTLED, Stage.RESOLVED})


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, human-readable."""

    scenario: str
    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.scenario}] {self.invariant}: {self.detail}"


def honest_no_worse_off(result: ScenarioResult,
                        baseline: ScenarioResult
                        ) -> list[InvariantViolation]:
    """Every honest participant nets at least the honest-path figure.

    ``>=`` rather than ``==``: the §IV deposit variant *compensates*
    the challenger out of the liar's forfeited deposit, so an honest
    challenger may end strictly better off than under all-honest play.
    Aborted sessions compare against ``min(0, baseline)``: when the
    session dies before any value moves, an honest would-be winner
    legitimately keeps its stake instead of winning the pot.
    """
    violations = []
    for name in result.honest:
        actual = result.net_modulo_gas(name)
        base = baseline.net_modulo_gas(name)
        floor = min(0, base) if result.aborted else base
        if actual < floor:
            violations.append(InvariantViolation(
                scenario=result.strategy,
                invariant="honest-no-worse-off",
                detail=(
                    f"{name} nets {actual} wei (modulo gas) but the "
                    f"honest path guarantees at least {floor}"
                ),
            ))
    return violations


def stage_transitions_valid(result: ScenarioResult
                            ) -> list[InvariantViolation]:
    """The observed stage trajectory walks Table I edges only."""
    violations = []
    stages = result.stages
    if not stages:
        return [InvariantViolation(
            scenario=result.strategy,
            invariant="stage-transitions",
            detail="no stages were recorded",
        )]
    for prev, nxt in zip(stages, stages[1:]):
        if nxt not in _TABLE_I_EDGES[prev]:
            violations.append(InvariantViolation(
                scenario=result.strategy,
                invariant="stage-transitions",
                detail=(
                    f"illegal transition {prev.name} -> {nxt.name} "
                    f"(Table I allows "
                    f"{sorted(s.name for s in _TABLE_I_EDGES[prev])})"
                ),
            ))
    last = stages[-1]
    if result.aborted:
        if last in _TERMINAL_STAGES:
            violations.append(InvariantViolation(
                scenario=result.strategy,
                invariant="stage-transitions",
                detail=(
                    f"an aborted session still reached {last.name}"
                ),
            ))
    elif last not in _TERMINAL_STAGES:
        violations.append(InvariantViolation(
            scenario=result.strategy,
            invariant="stage-transitions",
            detail=(
                f"session stopped in non-terminal stage {last.name}"
            ),
        ))
    return violations


def dispute_gas_matches(result: ScenarioResult,
                        reference: dict[str, int]
                        ) -> list[InvariantViolation]:
    """Disputes burn exactly the reference gas — bit-identical.

    The harness binds participants to deterministic accounts, so a
    dispute raised under *any* adversarial condition (censorship,
    crash recovery, replay noise) must cost precisely what the clean
    dispute of the same app costs.  A single-gas-unit drift means the
    adversary found a way to change what the challenger pays.
    """
    if not result.disputed:
        return []
    violations = []
    for label, expected in reference.items():
        actual = result.dispute_gas.get(label)
        if actual != expected:
            violations.append(InvariantViolation(
                scenario=result.strategy,
                invariant="dispute-gas",
                detail=(
                    f"{label} burned {actual} gas; the reference run "
                    f"burned {expected}"
                ),
            ))
    return violations


@lru_cache(maxsize=None)
def reference_baseline(app: str, deposits: bool = False,
                       settlement: str = "direct") -> ScenarioResult:
    """The all-honest run for one app (memoised per process).

    Parametrised by settlement mode: under netting the honest path
    commits a batch instead of submitting per session, so both
    balances and gas differ from the direct baseline.
    """
    return ScenarioHarness(app=app, deposits=deposits,
                           settlement=settlement).baseline()


@lru_cache(maxsize=None)
def reference_dispute_gas(app: str, deposits: bool = False,
                          settlement: str = "direct"
                          ) -> tuple[tuple[str, int], ...]:
    """Dispute gas of the clean false-result run (memoised).

    Returned as a tuple of items so ``lru_cache`` can hold it; use
    ``dict(...)`` at the call site.  Settlement mode matters:
    ``deployVerifiedInstance`` costs differently when no per-session
    proposal is on record (the netted case short-circuits the
    window guard), so each mode pins its own reference figure.
    """
    result = ScenarioHarness(app=app, deposits=deposits,
                             settlement=settlement).run("false-result")
    return tuple(sorted(result.dispute_gas.items()))


def check_invariants(result: ScenarioResult,
                     baseline: ScenarioResult | None = None,
                     reference: dict[str, int] | None = None
                     ) -> list[InvariantViolation]:
    """Run every invariant against one scenario result.

    ``baseline`` and ``reference`` default to memoised clean runs of
    the same app/deposit/settlement configuration.
    """
    if baseline is None:
        baseline = reference_baseline(result.app, result.deposits,
                                      result.settlement)
    if reference is None:
        reference = dict(reference_dispute_gas(
            result.app, result.deposits, result.settlement))
    return (
        honest_no_worse_off(result, baseline)
        + stage_transitions_valid(result)
        + dispute_gas_matches(result, reference)
    )
