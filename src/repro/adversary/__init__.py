"""Byzantine fault injection for the on/off-chain protocol.

Strategy-driven adversarial participants (signature withholding,
false results, late disputes, cross-session replay, crash-and-restart,
mempool censorship) staged against real protocol sessions, plus the
rational-adherence invariant checker that makes every scenario a
falsifiable claim about the paper's incentive design.
"""

from repro.adversary.crash import (
    CrashRecoveryReport,
    SessionSnapshot,
    run_kill_restart,
)
from repro.adversary.harness import (
    DISPUTE_GAS_LIMIT,
    SECURITY_DEPOSIT,
    ScenarioHarness,
    ScenarioResult,
    run_scenario,
)
from repro.adversary.invariants import (
    InvariantViolation,
    check_invariants,
    dispute_gas_matches,
    honest_no_worse_off,
    reference_baseline,
    reference_dispute_gas,
    stage_transitions_valid,
)
from repro.adversary.strategies import (
    PROFILES,
    AdversaryError,
    AdversaryProfile,
    profile,
)

__all__ = [
    "AdversaryError",
    "AdversaryProfile",
    "CrashRecoveryReport",
    "DISPUTE_GAS_LIMIT",
    "InvariantViolation",
    "PROFILES",
    "SECURITY_DEPOSIT",
    "ScenarioHarness",
    "ScenarioResult",
    "check_invariants",
    "dispute_gas_matches",
    "honest_no_worse_off",
    "profile",
    "reference_baseline",
    "reference_dispute_gas",
    "run_kill_restart",
    "run_scenario",
    "SessionSnapshot",
    "stage_transitions_valid",
]
