"""Key management and Ethereum address derivation.

An Ethereum address is the last 20 bytes of the Keccak-256 hash of the
uncompressed public key (without the ``04`` SEC1 prefix).  These classes
wrap the raw secp256k1 scalars/points with the conveniences the rest of
the library needs: deterministic key generation for tests, message
signing and EIP-55 checksum formatting.
"""

from __future__ import annotations

import secrets
from collections import namedtuple
from dataclasses import dataclass, field

from repro.crypto import ecdsa, secp256k1
from repro.crypto.ecdsa import Signature
from repro.crypto.keccak import keccak256


@dataclass(frozen=True)
class Address:
    """A 20-byte Ethereum account address."""

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != 20:
            raise ValueError("an address is exactly 20 bytes")

    @classmethod
    def from_hex(cls, text: str) -> "Address":
        """Parse a hex address, with or without the ``0x`` prefix."""
        text = text.lower().removeprefix("0x")
        if len(text) != 40:
            raise ValueError(f"address hex must be 40 chars, got {len(text)}")
        return cls(bytes.fromhex(text))

    @classmethod
    def zero(cls) -> "Address":
        """The zero address (contract-creation target, burn address)."""
        return cls(b"\x00" * 20)

    @classmethod
    def from_int(cls, value: int) -> "Address":
        """Build an address from an integer (e.g. precompile numbers)."""
        return cls(value.to_bytes(20, "big"))

    def to_int(self) -> int:
        """The address as an unsigned integer (how the EVM stacks it)."""
        return int.from_bytes(self.value, "big")

    @property
    def hex(self) -> str:
        """Lower-case ``0x``-prefixed hex form."""
        return "0x" + self.value.hex()

    @property
    def checksum(self) -> str:
        """EIP-55 mixed-case checksum form."""
        plain = self.value.hex()
        digest = keccak256(plain.encode("ascii")).hex()
        chars = [
            ch.upper() if ch.isalpha() and int(digest[i], 16) >= 8 else ch
            for i, ch in enumerate(plain)
        ]
        return "0x" + "".join(chars)

    def __str__(self) -> str:
        return self.checksum

    def __bool__(self) -> bool:
        return self.value != b"\x00" * 20


@dataclass(frozen=True)
class PublicKey:
    """An affine secp256k1 public key."""

    point: tuple[int, int]

    def __post_init__(self) -> None:
        if not secp256k1.is_on_curve(self.point) or self.point is None:
            raise ValueError("public key is not on secp256k1")

    def to_bytes(self) -> bytes:
        """Uncompressed 64-byte X ‖ Y encoding (no SEC1 prefix)."""
        x, y = self.point
        return x.to_bytes(32, "big") + y.to_bytes(32, "big")

    @property
    def address(self) -> Address:
        """The Ethereum address: keccak256(pubkey)[12:]."""
        return Address(keccak256(self.to_bytes())[12:])

    def verify(self, message_hash: bytes, signature: Signature) -> bool:
        """Check ``signature`` over ``message_hash`` against this key."""
        return ecdsa.verify(message_hash, signature, self.point)


@dataclass(frozen=True)
class PrivateKey:
    """A secp256k1 private key with lazy public-key derivation."""

    secret: int
    _public: PublicKey = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0 < self.secret < secp256k1.N:
            raise ValueError("private key scalar out of range")
        point = secp256k1.scalar_mult(self.secret)
        object.__setattr__(self, "_public", PublicKey(point))

    @classmethod
    def generate(cls) -> "PrivateKey":
        """Generate a cryptographically random key."""
        while True:
            secret = secrets.randbelow(secp256k1.N)
            if secret != 0:
                return cls(secret)

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "PrivateKey":
        """Deterministically derive a key from a seed (for tests/demos)."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        secret = int.from_bytes(keccak256(seed), "big") % secp256k1.N
        if secret == 0:
            secret = 1
        return cls(secret)

    @classmethod
    def from_hex(cls, text: str) -> "PrivateKey":
        """Parse a 32-byte hex scalar (as in the paper's Algorithm 4)."""
        return cls(int(text.removeprefix("0x"), 16))

    @property
    def public_key(self) -> PublicKey:
        """The public key derived from this private key."""
        return self._public

    @property
    def address(self) -> Address:
        """The address derived from this private key."""
        return self._public.address

    def sign(self, message_hash: bytes) -> Signature:
        """Produce an Ethereum ``(v, r, s)`` signature over a 32-byte hash."""
        return ecdsa.sign(message_hash, self.secret)

    def to_bytes(self) -> bytes:
        """The 32-byte big-endian scalar."""
        return self.secret.to_bytes(32, "big")


# Memoised ecrecover results, keyed by ``(digest, v, r, s)``.  The
# same signed transaction is recovered at least twice per life cycle —
# mempool admission and block processing — so a bounded LRU collapses
# every recovery after the first into a dict lookup.  A hand-rolled
# LRU (dict preserves insertion order; move-to-end on hit) instead of
# ``functools.lru_cache`` so :func:`recover_address_batch` can consult
# AND prime the same memo the single-shot path uses.
_RECOVER_MEMO_MAX = 1024
_recover_memo: dict = {}
_recover_hits = 0
_recover_misses = 0

CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])


def _memo_get(key):
    global _recover_hits, _recover_misses
    memo = _recover_memo
    cached = memo.get(key)
    if cached is not None:
        _recover_hits += 1
        del memo[key]  # move-to-end: re-insert as most recent
        memo[key] = cached
        return cached
    _recover_misses += 1
    return None


def _memo_put(key, address: Address) -> None:
    memo = _recover_memo
    if key not in memo and len(memo) >= _RECOVER_MEMO_MAX:
        del memo[next(iter(memo))]  # evict least-recently used
    memo[key] = address


def recover_address(message_hash: bytes, signature: Signature) -> Address:
    """Recover the signer's address — the behaviour of ``ecrecover``."""
    key = (message_hash, signature.v, signature.r, signature.s)
    cached = _memo_get(key)
    if cached is not None:
        return cached
    point = ecdsa.recover_public_key(message_hash, signature)
    address = PublicKey(point).address
    _memo_put(key, address)
    return address


def recover_address_batch(items) -> list:
    """Recover addresses for many ``(digest, Signature)`` pairs at once.

    Memo hits are served without touching the curve; all misses share
    one :func:`repro.crypto.ecdsa.recover_batch` pass (batched modular
    inversions), and their results prime the memo for later single-shot
    lookups.  Unrecoverable items yield ``None`` in their slot — the
    caller decides whether (and how) that is an error.
    """
    results: list = [None] * len(items)
    miss_indices = []
    miss_items = []
    for index, (message_hash, signature) in enumerate(items):
        key = (message_hash, signature.v, signature.r, signature.s)
        cached = _memo_get(key)
        if cached is not None:
            results[index] = cached
        else:
            miss_indices.append(index)
            miss_items.append((message_hash, signature))
    if miss_items:
        points = ecdsa.recover_batch(miss_items)
        for index, item, point in zip(miss_indices, miss_items, points):
            if point is None:
                continue
            address = PublicKey(point).address
            message_hash, signature = item
            _memo_put((message_hash, signature.v, signature.r, signature.s),
                      address)
            results[index] = address
    return results


def recover_cache_info() -> CacheInfo:
    """LRU statistics of the ecrecover memo (``evm.cache.*``)."""
    return CacheInfo(_recover_hits, _recover_misses,
                     _RECOVER_MEMO_MAX, len(_recover_memo))


def clear_recover_cache() -> None:
    """Drop the ``recover_address`` memo (benchmarks measure cold paths)."""
    global _recover_hits, _recover_misses
    _recover_memo.clear()
    _recover_hits = 0
    _recover_misses = 0
