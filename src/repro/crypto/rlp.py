"""Recursive Length Prefix (RLP) encoding and decoding.

RLP is Ethereum's canonical serialisation for transactions and for the
``keccak256(rlp([sender, nonce]))`` contract-address derivation.  The
item domain is: ``bytes`` (a string item) or a list of items
(recursively).  Integers are encoded big-endian with no leading zeros,
as the Ethereum yellow paper specifies.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.exceptions import ReproError

RlpItem = Union[bytes, int, "RlpList"]
RlpList = Sequence["RlpItem"]


class RlpError(ReproError, ValueError):
    """Raised on malformed RLP input."""


def encode_int(value: int) -> bytes:
    """Big-endian minimal encoding of a non-negative integer."""
    if value < 0:
        raise RlpError("RLP cannot encode negative integers")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def _encode_length(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    length_bytes = encode_int(length)
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def encode(item: RlpItem) -> bytes:
    """RLP-encode bytes, an int, or a (possibly nested) sequence of items."""
    if isinstance(item, bool):
        raise RlpError("RLP does not define booleans; encode an int instead")
    if isinstance(item, int):
        item = encode_int(item)
    if isinstance(item, (bytes, bytearray, memoryview)):
        data = bytes(item)
        if len(data) == 1 and data[0] < 0x80:
            return data
        return _encode_length(len(data), 0x80) + data
    if isinstance(item, (list, tuple)):
        payload = b"".join(encode(sub) for sub in item)
        return _encode_length(len(payload), 0xC0) + payload
    raise RlpError(f"cannot RLP-encode {type(item).__name__}")


def decode(data: bytes):
    """Decode a single RLP item, raising on trailing bytes.

    Byte-strings come back as ``bytes``; lists as Python lists.
    """
    item, consumed = _decode_at(bytes(data), 0)
    if consumed != len(data):
        raise RlpError(f"trailing bytes after RLP item ({len(data) - consumed})")
    return item


def _read_length(data: bytes, offset: int, length_of_length: int) -> tuple[int, int]:
    end = offset + length_of_length
    if end > len(data):
        raise RlpError("truncated RLP length prefix")
    raw = data[offset:end]
    if raw and raw[0] == 0:
        raise RlpError("RLP length has leading zero bytes")
    length = int.from_bytes(raw, "big")
    if length < 56:
        raise RlpError("non-canonical RLP long-form length")
    return length, end


def _decode_at(data: bytes, offset: int):
    if offset >= len(data):
        raise RlpError("unexpected end of RLP input")
    prefix = data[offset]
    if prefix < 0x80:  # single byte literal
        return bytes([prefix]), offset + 1
    if prefix <= 0xB7:  # short string
        length = prefix - 0x80
        end = offset + 1 + length
        if end > len(data):
            raise RlpError("truncated RLP string")
        payload = data[offset + 1:end]
        if length == 1 and payload[0] < 0x80:
            raise RlpError("non-canonical single-byte RLP string")
        return payload, end
    if prefix <= 0xBF:  # long string
        length, start = _read_length(data, offset + 1, prefix - 0xB7)
        end = start + length
        if end > len(data):
            raise RlpError("truncated RLP string")
        return data[start:end], end
    if prefix <= 0xF7:  # short list
        length = prefix - 0xC0
        end = offset + 1 + length
    else:  # long list
        length, start = _read_length(data, offset + 1, prefix - 0xF7)
        end = start + length
        offset = start - 1  # so payload starts at start below
    payload_start = offset + 1
    if end > len(data):
        raise RlpError("truncated RLP list")
    items = []
    cursor = payload_start
    while cursor < end:
        item, cursor = _decode_at(data, cursor)
        items.append(item)
    if cursor != end:
        raise RlpError("RLP list payload length mismatch")
    return items, end


def decode_int(data: bytes) -> int:
    """Interpret an RLP byte-string payload as a canonical integer."""
    if data.startswith(b"\x00"):
        raise RlpError("integer has leading zero bytes")
    return int.from_bytes(data, "big")
