"""secp256k1 elliptic-curve arithmetic.

Implements the curve y^2 = x^3 + 7 over the prime field used by Bitcoin
and Ethereum.  Points are represented as affine ``(x, y)`` tuples with
``None`` denoting the point at infinity; scalar multiplication uses
Jacobian coordinates internally for speed.
"""

from __future__ import annotations

from typing import Optional, Tuple

# Curve parameters (SEC 2, "Recommended Elliptic Curve Domain Parameters").
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8
G = (GX, GY)

AffinePoint = Optional[Tuple[int, int]]
_JacobianPoint = Tuple[int, int, int]

_INFINITY_J: _JacobianPoint = (0, 1, 0)


def is_on_curve(point: AffinePoint) -> bool:
    """Return True if ``point`` lies on secp256k1 (infinity counts)."""
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - B) % P == 0


def _to_jacobian(point: AffinePoint) -> _JacobianPoint:
    if point is None:
        return _INFINITY_J
    return (point[0], point[1], 1)


def _from_jacobian(point: _JacobianPoint) -> AffinePoint:
    x, y, z = point
    if z == 0:
        return None
    z_inv = pow(z, P - 2, P)
    z_inv2 = z_inv * z_inv % P
    return (x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _jacobian_double(point: _JacobianPoint) -> _JacobianPoint:
    x, y, z = point
    if y == 0 or z == 0:
        return _INFINITY_J
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = 3 * x * x % P  # a == 0 so no a*z^4 term
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jacobian_add(p: _JacobianPoint, q: _JacobianPoint) -> _JacobianPoint:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2z2 * z2 % P
    s2 = y2 * z1z1 * z1 % P
    if u1 == u2:
        if s1 != s2:
            return _INFINITY_J
        return _jacobian_double(p)
    h = (u2 - u1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = 2 * h * z1 * z2 % P
    return (nx, ny, nz)


def point_add(p: AffinePoint, q: AffinePoint) -> AffinePoint:
    """Add two affine points on the curve."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p), _to_jacobian(q)))


def point_double(p: AffinePoint) -> AffinePoint:
    """Double an affine point on the curve."""
    return _from_jacobian(_jacobian_double(_to_jacobian(p)))


def point_neg(p: AffinePoint) -> AffinePoint:
    """Return the additive inverse of ``p``."""
    if p is None:
        return None
    x, y = p
    return (x, (-y) % P)


def scalar_mult(k: int, point: AffinePoint = G) -> AffinePoint:
    """Return ``k * point`` using double-and-add in Jacobian coordinates."""
    k %= N
    if k == 0 or point is None:
        return None
    result = _INFINITY_J
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        k >>= 1
    return _from_jacobian(result)


def lift_x(x: int, y_parity: int) -> AffinePoint:
    """Recover the affine point with the given x-coordinate and y parity.

    Returns None when ``x`` is not the abscissa of a curve point.
    """
    if not 0 <= x < P:
        return None
    y_sq = (pow(x, 3, P) + B) % P
    # p % 4 == 3 so a square root (if any) is y_sq^((p+1)/4).
    y = pow(y_sq, (P + 1) // 4, P)
    if y * y % P != y_sq:
        return None
    if y % 2 != y_parity % 2:
        y = P - y
    return (x, y)


def serialize_point(point: AffinePoint, compressed: bool = False) -> bytes:
    """Serialise a point in SEC1 format (04 ‖ X ‖ Y, or 02/03 ‖ X)."""
    if point is None:
        raise ValueError("cannot serialise the point at infinity")
    x, y = point
    if compressed:
        prefix = b"\x03" if y & 1 else b"\x02"
        return prefix + x.to_bytes(32, "big")
    return b"\x04" + x.to_bytes(32, "big") + y.to_bytes(32, "big")


def deserialize_point(data: bytes) -> AffinePoint:
    """Parse a SEC1-encoded point (compressed or uncompressed)."""
    if len(data) == 65 and data[0] == 0x04:
        point = (int.from_bytes(data[1:33], "big"), int.from_bytes(data[33:], "big"))
        if not is_on_curve(point):
            raise ValueError("point is not on secp256k1")
        return point
    if len(data) == 33 and data[0] in (0x02, 0x03):
        point = lift_x(int.from_bytes(data[1:], "big"), data[0] & 1)
        if point is None:
            raise ValueError("x-coordinate is not on secp256k1")
        return point
    raise ValueError("malformed SEC1 point encoding")
