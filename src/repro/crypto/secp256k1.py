"""secp256k1 elliptic-curve arithmetic.

Implements the curve y^2 = x^3 + 7 over the prime field used by Bitcoin
and Ethereum.  Points are represented as affine ``(x, y)`` tuples with
``None`` denoting the point at infinity; scalar multiplication uses
Jacobian coordinates internally for speed.

Three scalar-multiplication strategies coexist:

* :func:`scalar_mult_naive` — the reference binary double-and-add
  ladder, kept as the oracle for the fast-path property tests;
* the pre-GLV fast path — a windowed fixed-base comb for the generator
  plus a width-4 windowed ladder for arbitrary points, retained as
  :func:`_double_scalar_mult_base_reference` (the in-process speedup
  baseline for ``bench_hotpath`` and the fallback for off-curve
  inputs, where the endomorphism identity does not hold);
* the production path — GLV endomorphism decomposition.  secp256k1
  has an efficiently computable endomorphism ``φ(x, y) = (β·x, y)``
  with ``φ(Q) = λ·Q``, so any scalar ``k`` splits into
  ``k ≡ k1 + k2·λ (mod N)`` with ``|k1|, |k2| ≈ √N``.  ``k·Q`` then
  runs a Straus/Shamir ladder over the two ~128-bit halves (sharing
  doublings) with width-4 wNAF digit recoding over a shared
  odd-multiple table — the φ half's table is the base table with each
  x-coordinate scaled by β, eight field multiplications total.  The
  generator half of ``u1*G + u2*Q`` (the ECDSA verify/recover shape)
  still rides the fixed-base comb for additions only, and
  :func:`batch_inverse` / :func:`batch_normalize` expose Montgomery's
  shared-inversion trick so batch callers (``recover_batch``) pay one
  field inversion per *batch* instead of per point.

Field inversions use ``pow(x, -1, P)`` (extended-gcd under the hood),
which is markedly faster than the Fermat ``pow(x, P - 2, P)`` ladder.
"""

from __future__ import annotations

from typing import Optional, Tuple

# Curve parameters (SEC 2, "Recommended Elliptic Curve Domain Parameters").
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8
G = (GX, GY)

AffinePoint = Optional[Tuple[int, int]]
_JacobianPoint = Tuple[int, int, int]

_INFINITY_J: _JacobianPoint = (0, 1, 0)


def is_on_curve(point: AffinePoint) -> bool:
    """Return True if ``point`` lies on secp256k1 (infinity counts)."""
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - B) % P == 0


def _to_jacobian(point: AffinePoint) -> _JacobianPoint:
    if point is None:
        return _INFINITY_J
    return (point[0], point[1], 1)


def _from_jacobian(point: _JacobianPoint) -> AffinePoint:
    x, y, z = point
    if z == 0:
        return None
    z_inv = pow(z, -1, P)
    z_inv2 = z_inv * z_inv % P
    return (x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _jacobian_double(point: _JacobianPoint) -> _JacobianPoint:
    x, y, z = point
    if y == 0 or z == 0:
        return _INFINITY_J
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = 3 * x * x % P  # a == 0 so no a*z^4 term
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jacobian_add(p: _JacobianPoint, q: _JacobianPoint) -> _JacobianPoint:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2z2 * z2 % P
    s2 = y2 * z1z1 * z1 % P
    if u1 == u2:
        if s1 != s2:
            return _INFINITY_J
        return _jacobian_double(p)
    h = (u2 - u1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = 2 * h * z1 * z2 % P
    return (nx, ny, nz)


def point_add(p: AffinePoint, q: AffinePoint) -> AffinePoint:
    """Add two affine points on the curve."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p), _to_jacobian(q)))


def point_double(p: AffinePoint) -> AffinePoint:
    """Double an affine point on the curve."""
    return _from_jacobian(_jacobian_double(_to_jacobian(p)))


def point_neg(p: AffinePoint) -> AffinePoint:
    """Return the additive inverse of ``p``."""
    if p is None:
        return None
    x, y = p
    return (x, (-y) % P)


def scalar_mult_naive(k: int, point: AffinePoint = G) -> AffinePoint:
    """Return ``k * point`` using binary double-and-add (reference).

    This is the original unoptimised ladder, kept as the oracle the
    property tests cross-check the windowed fast paths against.
    """
    k %= N
    if k == 0 or point is None:
        return None
    result = _INFINITY_J
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        k >>= 1
    return _from_jacobian(result)


# ---------------------------------------------------------------------------
# Windowed fast paths
# ---------------------------------------------------------------------------

_WINDOW_BITS = 4
_WINDOW_MASK = (1 << _WINDOW_BITS) - 1
_BASE_WINDOWS = 256 // _WINDOW_BITS  # 64 nibbles cover any scalar < 2^256

#: Lazily built fixed-base table: ``_BASE_TABLE[i][j-1] == j * 16^i * G``
#: in affine coordinates, for ``i`` in [0, 64) and ``j`` in [1, 15].
_BASE_TABLE: Optional[list] = None


def _jacobian_add_affine(p: _JacobianPoint,
                         q: Tuple[int, int]) -> _JacobianPoint:
    """Mixed addition: Jacobian ``p`` plus affine ``q`` (z2 == 1)."""
    x1, y1, z1 = p
    if z1 == 0:
        return (q[0], q[1], 1)
    x2, y2 = q
    z1z1 = z1 * z1 % P
    u2 = x2 * z1z1 % P
    s2 = y2 * z1z1 * z1 % P
    if x1 == u2:
        if y1 != s2:
            return _INFINITY_J
        return _jacobian_double(p)
    h = (u2 - x1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - y1) % P
    v = x1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * y1 * j) % P
    nz = 2 * h * z1 % P
    return (nx, ny, nz)


def _batch_normalize(points: list) -> list:
    """Jacobian -> affine for many points with ONE field inversion.

    Montgomery's trick: multiply all z-coordinates together, invert the
    product once, then peel per-point inverses off with multiplications.
    Raises ``ValueError`` if any point is at infinity (z == 0).
    """
    count = len(points)
    prefix = [1] * count
    running = 1
    for index in range(count):
        prefix[index] = running
        running = running * points[index][2] % P
    inv_running = pow(running, -1, P)  # ValueError when any z == 0
    affine = [None] * count
    for index in range(count - 1, -1, -1):
        x, y, z = points[index]
        z_inv = inv_running * prefix[index] % P
        inv_running = inv_running * z % P
        z_inv2 = z_inv * z_inv % P
        affine[index] = (x * z_inv2 % P, y * z_inv2 * z_inv % P)
    return affine


def _build_base_table() -> list:
    """Precompute the 64x15 fixed-base window table for G."""
    jacobian_rows = []
    window_base: _JacobianPoint = (GX, GY, 1)
    for __ in range(_BASE_WINDOWS):
        row = []
        current = window_base
        for __ in range(_WINDOW_MASK):
            row.append(current)
            current = _jacobian_add(current, window_base)
        jacobian_rows.append(row)
        window_base = current  # == 16 * previous window base
    flat = [entry for row in jacobian_rows for entry in row]
    affine = _batch_normalize(flat)
    return [affine[index * _WINDOW_MASK:(index + 1) * _WINDOW_MASK]
            for index in range(_BASE_WINDOWS)]


def _base_table() -> list:
    global _BASE_TABLE
    if _BASE_TABLE is None:
        _BASE_TABLE = _build_base_table()
    return _BASE_TABLE


def _base_mult_j(k: int) -> _JacobianPoint:
    """``k * G`` in Jacobian form via the 4-bit fixed-base comb.

    The pre-GLV comb, retained for the reference path; production code
    uses the wider :func:`_base_mult8_j`.
    """
    table = _base_table()
    accumulator = _INFINITY_J
    window = 0
    while k:
        digit = k & _WINDOW_MASK
        if digit:
            accumulator = _jacobian_add_affine(
                accumulator, table[window][digit - 1])
        k >>= _WINDOW_BITS
        window += 1
    return accumulator


# 8-bit fixed-base comb: ``_BASE_TABLE8[i][j-1] == j * 256^i * G``, so
# ``k*G`` costs at most 32 mixed additions (half the 4-bit comb's 64).
# 32 windows x 255 entries = 8160 affine points, built lazily in ~tens
# of milliseconds with one shared inversion and ~0.6 MB retained.
_BASE8_WINDOWS = 256 // 8
_BASE8_MASK = 255
_BASE_TABLE8: Optional[list] = None


def _build_base_table8() -> list:
    jacobian_rows = []
    window_base: _JacobianPoint = (GX, GY, 1)
    for __ in range(_BASE8_WINDOWS):
        row = []
        current = window_base
        for __ in range(_BASE8_MASK):
            row.append(current)
            current = _jacobian_add(current, window_base)
        jacobian_rows.append(row)
        window_base = current  # == 256 * previous window base
    flat = [entry for row in jacobian_rows for entry in row]
    affine = _batch_normalize(flat)
    return [affine[index * _BASE8_MASK:(index + 1) * _BASE8_MASK]
            for index in range(_BASE8_WINDOWS)]


def _base_table8() -> list:
    global _BASE_TABLE8
    if _BASE_TABLE8 is None:
        _BASE_TABLE8 = _build_base_table8()
    return _BASE_TABLE8


def _base_mult8_j(k: int) -> _JacobianPoint:
    """``k * G`` in Jacobian form via the 8-bit fixed-base comb."""
    table = _base_table8()
    accumulator = _INFINITY_J
    window = 0
    add_affine = _jacobian_add_affine
    while k:
        digit = k & _BASE8_MASK
        if digit:
            accumulator = add_affine(accumulator, table[window][digit - 1])
        k >>= 8
        window += 1
    return accumulator


def _windowed_mult_j(k: int, point: Tuple[int, int]) -> _JacobianPoint:
    """``k * point`` in Jacobian form, width-4 window (k in [1, N))."""
    base_j: _JacobianPoint = (point[0], point[1], 1)
    multiples = [base_j]
    for __ in range(_WINDOW_MASK - 1):
        multiples.append(_jacobian_add(multiples[-1], base_j))
    affine = _batch_normalize(multiples)

    nibbles = []
    while k:
        nibbles.append(k & _WINDOW_MASK)
        k >>= _WINDOW_BITS
    accumulator = _INFINITY_J
    double = _jacobian_double
    for digit in reversed(nibbles):
        if accumulator[2]:
            accumulator = double(double(double(double(accumulator))))
        if digit:
            accumulator = _jacobian_add_affine(
                accumulator, affine[digit - 1])
    return accumulator


# ---------------------------------------------------------------------------
# GLV endomorphism decomposition
# ---------------------------------------------------------------------------

#: λ: the eigenvalue of the secp256k1 endomorphism — λ³ ≡ 1 (mod N) and
#: λ·(x, y) == (β·x, y) for every curve point.
GLV_LAMBDA = 0x5363AD4CC05C30E0A5261C028812645A122E22EA20816678DF02967C1B23BD72
#: β: the matching cube root of unity in the base field (β³ ≡ 1 mod P).
GLV_BETA = 0x7AE96A2B657C07106E64479EAC3434E99CF0497512F58995C1396C28719501EE

# Lattice basis for the scalar split (libsecp256k1's constants):
# k ≡ k1 + k2·λ (mod N) with |k1|, |k2| ≈ √N ≈ 2^128.
_GLV_A1 = 0x3086D221A7D46BCDE86C90E49284EB15
_GLV_B1 = 0xE4437ED6010E88286F547FA90ABFE4C3  # == -b1 of the basis
_GLV_A2 = 0x114CA50F7A8E2F3F657C1108D9D44CFD8
_GLV_B2 = _GLV_A1
_N_HALF = N // 2

#: Process-wide count of GLV decompositions, exported by the telemetry
#: layer as ``crypto.glv.splits`` (this module stays obs-free to avoid
#: an import cycle — obs pulls the counter, crypto never pushes).
_GLV_SPLITS = 0


def glv_split_count() -> int:
    """Cumulative GLV scalar decompositions in this process."""
    return _GLV_SPLITS


def glv_decompose(k: int) -> Tuple[int, int]:
    """Split ``k`` (mod N) into ``(k1, k2)`` with ``k ≡ k1 + k2·λ``.

    Both halves are signed and roughly 128 bits, so a double-scalar
    ladder over them shares half the doublings a 256-bit ladder pays.
    """
    global _GLV_SPLITS
    _GLV_SPLITS += 1
    k %= N
    c1 = (_GLV_B2 * k + _N_HALF) // N
    c2 = (_GLV_B1 * k + _N_HALF) // N
    k1 = k - c1 * _GLV_A1 - c2 * _GLV_A2
    k2 = c1 * _GLV_B1 - c2 * _GLV_B2
    return k1, k2


def _wnaf(k: int, width: int = 4) -> list:
    """Width-``w`` non-adjacent form of ``k >= 0``, least significant first.

    Digits are zero or odd in ``(-2^w, 2^w)``; at most one of any
    ``width`` consecutive digits is non-zero, so ~k.bit_length()/(w+1)
    additions are paid during the ladder.
    """
    digits = []
    window = 1 << width
    half = window >> 1
    mask = window - 1
    while k:
        if k & 1:
            digit = k & mask
            if digit >= half:
                digit -= window
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits


def _glv_mult_j(k: int, point: Tuple[int, int]) -> _JacobianPoint:
    """``k * point`` in Jacobian form via GLV + interleaved wNAF.

    ``point`` must be an on-curve affine point and ``k`` in [1, N).
    Builds one shared odd-multiple table {1P, 3P, .., 15P} (normalised
    to affine with a single inversion), derives the φ-half's table by
    scaling x-coordinates with β, then runs the two ~128-bit wNAF
    ladders interleaved so doublings are shared.
    """
    k1, k2 = glv_decompose(k)

    base: _JacobianPoint = (point[0], point[1], 1)
    twice = _jacobian_double(base)
    multiples = [base]
    for __ in range(7):
        multiples.append(_jacobian_add(multiples[-1], twice))
    table1 = _batch_normalize(multiples)  # ValueError on degenerate input
    beta = GLV_BETA
    table2 = [(x * beta % P, y) for x, y in table1]
    if k1 < 0:
        k1 = -k1
        table1 = [(x, P - y) for x, y in table1]
    if k2 < 0:
        k2 = -k2
        table2 = [(x, P - y) for x, y in table2]

    naf1 = _wnaf(k1)
    naf2 = _wnaf(k2)
    length = max(len(naf1), len(naf2))
    if len(naf1) < length:
        naf1 += [0] * (length - len(naf1))
    if len(naf2) < length:
        naf2 += [0] * (length - len(naf2))

    # Flat interleaved ladder: accumulator kept in locals, the doubling
    # inlined (no tuple churn on the ~130 shared doublings).
    x = y = 0
    z = 0
    add_affine = _jacobian_add_affine
    modulus = P
    for index in range(length - 1, -1, -1):
        if z:
            if y == 0:
                x, y, z = 0, 1, 0
            else:
                ysq = y * y % modulus
                s = 4 * x * ysq % modulus
                m = 3 * x * x % modulus
                nx = (m * m - 2 * s) % modulus
                nz = 2 * y * z % modulus
                y = (m * (s - nx) - 8 * ysq * ysq) % modulus
                x = nx
                z = nz
        digit = naf1[index]
        if digit:
            if digit > 0:
                x, y, z = add_affine((x, y, z), table1[digit >> 1])
            else:
                px, py = table1[(-digit) >> 1]
                x, y, z = add_affine((x, y, z), (px, modulus - py))
        digit = naf2[index]
        if digit:
            if digit > 0:
                x, y, z = add_affine((x, y, z), table2[digit >> 1])
            else:
                px, py = table2[(-digit) >> 1]
                x, y, z = add_affine((x, y, z), (px, modulus - py))
    return (x, y, z)


def scalar_mult(k: int, point: AffinePoint = G) -> AffinePoint:
    """Return ``k * point``.

    Dispatches to the fixed-base comb when ``point`` is the generator,
    the GLV/wNAF ladder for on-curve points, and the width-4 windowed
    ladder for off-curve inputs (the endomorphism identity only holds
    on the curve); all agree with :func:`scalar_mult_naive` on every
    input (property-tested).
    """
    k %= N
    if k == 0 or point is None:
        return None
    if point is G or point == G:
        return _from_jacobian(_base_mult8_j(k))
    if is_on_curve(point):
        return _from_jacobian(_glv_mult_j(k, point))
    try:
        return _from_jacobian(_windowed_mult_j(k, point))
    except ValueError:
        # Degenerate off-curve input produced a non-invertible z during
        # table normalisation; the reference ladder handles it bit-for-
        # bit like the historical implementation did.
        return scalar_mult_naive(k, point)


def double_scalar_mult_base_j(u1: int, u2: int,
                              point: AffinePoint) -> _JacobianPoint:
    """``u1*G + u2*point`` in Jacobian form (no affine conversion).

    Batch callers (:func:`repro.crypto.ecdsa.recover_batch`) use this
    to defer the affine conversion into one shared
    :func:`batch_normalize` inversion across the whole batch.
    ``point`` must be on-curve or None.
    """
    u1 %= N
    u2 %= N
    accumulator = _base_mult8_j(u1) if u1 else _INFINITY_J
    if u2 and point is not None:
        variable = _glv_mult_j(u2, point)
        accumulator = _jacobian_add(accumulator, variable)
    return accumulator


def double_scalar_mult_base(u1: int, u2: int,
                            point: AffinePoint) -> AffinePoint:
    """Return ``u1*G + u2*point`` (the ECDSA verify/recover shape).

    The generator half comes from the fixed-base comb (additions only),
    the variable half from the GLV/wNAF ladder; one Jacobian addition
    joins them, and only the final result pays an affine conversion.
    Off-curve points fall back to the retained pre-GLV reference path.
    """
    if point is not None and not is_on_curve(point):
        return _double_scalar_mult_base_reference(u1, u2, point)
    return _from_jacobian(double_scalar_mult_base_j(u1, u2, point))


def _double_scalar_mult_base_reference(u1: int, u2: int,
                                       point: AffinePoint) -> AffinePoint:
    """The pre-GLV comb + width-4 window path, retained verbatim.

    Serves three roles: the differential-test oracle for the GLV path,
    the in-process speedup baseline for ``bench_hotpath``'s
    ``ecdsa_recover`` gate, and the dispatch target for off-curve
    points where the endomorphism does not apply.
    """
    u1 %= N
    u2 %= N
    accumulator = _base_mult_j(u1) if u1 else _INFINITY_J
    if u2 and point is not None:
        try:
            variable = _windowed_mult_j(u2, point)
        except ValueError:
            variable = _to_jacobian(scalar_mult_naive(u2, point))
        accumulator = _jacobian_add(accumulator, variable)
    return _from_jacobian(accumulator)


def batch_inverse(values: list, modulus: int = P) -> list:
    """Invert every element of ``values`` with ONE modular inversion.

    Montgomery's trick over an arbitrary modulus; raises ``ValueError``
    if any value is zero (mirroring ``pow(0, -1, m)``).
    """
    count = len(values)
    prefix = [1] * count
    running = 1
    for index in range(count):
        prefix[index] = running
        running = running * values[index] % modulus
    inv_running = pow(running, -1, modulus)
    inverses = [0] * count
    for index in range(count - 1, -1, -1):
        inverses[index] = inv_running * prefix[index] % modulus
        inv_running = inv_running * values[index] % modulus
    return inverses


def batch_normalize(points: list) -> list:
    """Jacobian → affine for many points, one shared field inversion.

    Unlike the internal :func:`_batch_normalize`, points at infinity
    are tolerated and map to ``None`` (batch recovery uses this for
    invalid-signature slots).
    """
    finite = [(index, point) for index, point in enumerate(points)
              if point[2] != 0]
    affine: list = [None] * len(points)
    if finite:
        normalized = _batch_normalize([point for __, point in finite])
        for (index, __), result in zip(finite, normalized):
            affine[index] = result
    return affine


def lift_x(x: int, y_parity: int) -> AffinePoint:
    """Recover the affine point with the given x-coordinate and y parity.

    Returns None when ``x`` is not the abscissa of a curve point.
    """
    if not 0 <= x < P:
        return None
    y_sq = (pow(x, 3, P) + B) % P
    # p % 4 == 3 so a square root (if any) is y_sq^((p+1)/4).
    y = pow(y_sq, (P + 1) // 4, P)
    if y * y % P != y_sq:
        return None
    if y % 2 != y_parity % 2:
        y = P - y
    return (x, y)


def serialize_point(point: AffinePoint, compressed: bool = False) -> bytes:
    """Serialise a point in SEC1 format (04 ‖ X ‖ Y, or 02/03 ‖ X)."""
    if point is None:
        raise ValueError("cannot serialise the point at infinity")
    x, y = point
    if compressed:
        prefix = b"\x03" if y & 1 else b"\x02"
        return prefix + x.to_bytes(32, "big")
    return b"\x04" + x.to_bytes(32, "big") + y.to_bytes(32, "big")


def deserialize_point(data: bytes) -> AffinePoint:
    """Parse a SEC1-encoded point (compressed or uncompressed)."""
    if len(data) == 65 and data[0] == 0x04:
        point = (int.from_bytes(data[1:33], "big"), int.from_bytes(data[33:], "big"))
        if not is_on_curve(point):
            raise ValueError("point is not on secp256k1")
        return point
    if len(data) == 33 and data[0] in (0x02, 0x03):
        point = lift_x(int.from_bytes(data[1:], "big"), data[0] & 1)
        if point is None:
            raise ValueError("x-coordinate is not on secp256k1")
        return point
    raise ValueError("malformed SEC1 point encoding")
