"""A contract ABI codec compatible with the Ethereum ABI specification.

Covers the type subset the Solis language (and the paper's contracts)
use: ``uintN``, ``intN``, ``address``, ``bool``, ``bytes32``/fixed
bytes, and dynamic ``bytes``/``string``.  Function selectors are the
first four bytes of the Keccak-256 hash of the canonical signature,
exactly as Solidity computes them — so ``deployVerifiedInstance(bytes,
uint8,bytes32,bytes32,uint8,bytes32,bytes32)`` dispatches identically
here and on Ethereum.
"""

from __future__ import annotations

import re
from typing import Any, Sequence

from repro.crypto.keccak import keccak256
from repro.exceptions import ReproError

_WORD = 32
_UINT_RE = re.compile(r"^uint(\d+)?$")
_INT_RE = re.compile(r"^int(\d+)?$")
_BYTES_N_RE = re.compile(r"^bytes(\d+)$")


class AbiError(ReproError, ValueError):
    """Raised on un-encodable values or malformed calldata."""


def canonical_type(type_name: str) -> str:
    """Normalise a type name to its canonical ABI spelling."""
    if type_name == "uint":
        return "uint256"
    if type_name == "int":
        return "int256"
    return type_name


def is_dynamic(type_name: str) -> bool:
    """True for types encoded in the dynamic 'tail' section."""
    return canonical_type(type_name) in ("bytes", "string")


def function_signature(name: str, arg_types: Sequence[str]) -> str:
    """The canonical signature string, e.g. ``transfer(address,uint256)``."""
    return f"{name}({','.join(canonical_type(t) for t in arg_types)})"


def function_selector(name: str, arg_types: Sequence[str]) -> bytes:
    """First 4 bytes of keccak256 of the canonical signature."""
    return keccak256(function_signature(name, arg_types).encode("ascii"))[:4]


def event_topic(name: str, arg_types: Sequence[str]) -> bytes:
    """The 32-byte topic hash identifying an event."""
    return keccak256(function_signature(name, arg_types).encode("ascii"))


def _to_word(value: int) -> bytes:
    return value.to_bytes(_WORD, "big")


def _encode_head(type_name: str, value: Any) -> bytes:
    """Encode one static value into its 32-byte head word."""
    ctype = canonical_type(type_name)

    match = _UINT_RE.match(ctype)
    if match:
        bits = int(match.group(1) or 256)
        if not isinstance(value, int) or isinstance(value, bool):
            raise AbiError(f"{ctype} expects int, got {type(value).__name__}")
        if not 0 <= value < (1 << bits):
            raise AbiError(f"value {value} out of range for {ctype}")
        return _to_word(value)

    match = _INT_RE.match(ctype)
    if match:
        bits = int(match.group(1) or 256)
        if not isinstance(value, int) or isinstance(value, bool):
            raise AbiError(f"{ctype} expects int, got {type(value).__name__}")
        if not -(1 << (bits - 1)) <= value < (1 << (bits - 1)):
            raise AbiError(f"value {value} out of range for {ctype}")
        return _to_word(value & ((1 << 256) - 1))

    if ctype == "address":
        raw = _address_bytes(value)
        return b"\x00" * 12 + raw

    if ctype == "bool":
        if not isinstance(value, bool):
            raise AbiError(f"bool expects bool, got {type(value).__name__}")
        return _to_word(1 if value else 0)

    match = _BYTES_N_RE.match(ctype)
    if match:
        n = int(match.group(1))
        if not 1 <= n <= 32:
            raise AbiError(f"invalid fixed-bytes width {n}")
        if isinstance(value, int):
            value = value.to_bytes(n, "big")
        if not isinstance(value, (bytes, bytearray)) or len(value) != n:
            raise AbiError(f"{ctype} expects exactly {n} bytes")
        return bytes(value) + b"\x00" * (_WORD - n)

    raise AbiError(f"unsupported static ABI type {type_name!r}")


def _address_bytes(value: Any) -> bytes:
    """Accept Address-like objects, bytes20, hex strings or ints."""
    if hasattr(value, "value") and isinstance(getattr(value, "value"), bytes):
        raw = value.value
    elif isinstance(value, (bytes, bytearray)):
        raw = bytes(value)
    elif isinstance(value, str):
        raw = bytes.fromhex(value.removeprefix("0x"))
    elif isinstance(value, int) and not isinstance(value, bool):
        raw = value.to_bytes(20, "big")
    else:
        raise AbiError(f"cannot interpret {type(value).__name__} as address")
    if len(raw) != 20:
        raise AbiError(f"address must be 20 bytes, got {len(raw)}")
    return raw


def _encode_dynamic(type_name: str, value: Any) -> bytes:
    ctype = canonical_type(type_name)
    if ctype == "string":
        if not isinstance(value, str):
            raise AbiError("string expects str")
        value = value.encode("utf-8")
        ctype = "bytes"
    if ctype == "bytes":
        if not isinstance(value, (bytes, bytearray)):
            raise AbiError("bytes expects bytes")
        data = bytes(value)
        padded_len = (len(data) + _WORD - 1) // _WORD * _WORD
        return _to_word(len(data)) + data + b"\x00" * (padded_len - len(data))
    raise AbiError(f"unsupported dynamic ABI type {type_name!r}")


def encode_arguments(arg_types: Sequence[str], values: Sequence[Any]) -> bytes:
    """ABI-encode a tuple of values (head/tail layout)."""
    if len(arg_types) != len(values):
        raise AbiError(
            f"arity mismatch: {len(arg_types)} types vs {len(values)} values"
        )
    heads: list[bytes] = []
    tails: list[bytes] = []
    head_size = _WORD * len(arg_types)
    for type_name, value in zip(arg_types, values):
        if is_dynamic(type_name):
            tail = _encode_dynamic(type_name, value)
            offset = head_size + sum(len(t) for t in tails)
            heads.append(_to_word(offset))
            tails.append(tail)
        else:
            heads.append(_encode_head(type_name, value))
    return b"".join(heads) + b"".join(tails)


def encode_call(name: str, arg_types: Sequence[str], values: Sequence[Any]) -> bytes:
    """Selector ‖ encoded arguments — ready-to-send calldata."""
    return function_selector(name, arg_types) + encode_arguments(arg_types, values)


def decode_arguments(arg_types: Sequence[str], data: bytes) -> list[Any]:
    """Decode ABI-encoded values (the inverse of :func:`encode_arguments`)."""
    values: list[Any] = []
    for index, type_name in enumerate(arg_types):
        head = data[index * _WORD:(index + 1) * _WORD]
        if len(head) != _WORD:
            raise AbiError("calldata too short for declared argument list")
        if is_dynamic(type_name):
            offset = int.from_bytes(head, "big")
            length_word = data[offset:offset + _WORD]
            if len(length_word) != _WORD:
                raise AbiError("dynamic argument offset out of bounds")
            length = int.from_bytes(length_word, "big")
            payload = data[offset + _WORD:offset + _WORD + length]
            if len(payload) != length:
                raise AbiError("dynamic argument truncated")
            if canonical_type(type_name) == "string":
                values.append(payload.decode("utf-8"))
            else:
                values.append(payload)
        else:
            values.append(_decode_head(type_name, head))
    return values


def _decode_head(type_name: str, word: bytes) -> Any:
    ctype = canonical_type(type_name)
    if _UINT_RE.match(ctype):
        return int.from_bytes(word, "big")
    if _INT_RE.match(ctype):
        raw = int.from_bytes(word, "big")
        if raw >= 1 << 255:
            raw -= 1 << 256
        return raw
    if ctype == "address":
        return word[12:]
    if ctype == "bool":
        return int.from_bytes(word, "big") != 0
    match = _BYTES_N_RE.match(ctype)
    if match:
        return word[:int(match.group(1))]
    raise AbiError(f"unsupported static ABI type {type_name!r}")
