"""Ethereum-style ECDSA over secp256k1.

Provides deterministic (RFC 6979) signing producing ``(v, r, s)``
tuples with low-s normalisation (EIP-2), signature verification and —
crucially for this paper — public-key *recovery*, the primitive behind
Solidity's ``ecrecover`` that `deployVerifiedInstance()` uses to verify
the signed copy of the off-chain contract.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto import secp256k1
from repro.exceptions import ReproError
from repro.crypto.secp256k1 import G, N, P

#: EIP-2 boundary: a signature with ``s > HALF_N`` has a distinct but
#: equally valid "high-s twin", the classic malleability vector.
HALF_N = N // 2
_HALF_N = HALF_N


class SignatureError(ReproError, ValueError):
    """Raised for malformed or unrecoverable signatures."""


@dataclass(frozen=True)
class Signature:
    """An Ethereum recoverable signature.

    ``v`` is the recovery id in Ethereum convention (27 or 28); ``r``
    and ``s`` are the usual ECDSA scalars.
    """

    v: int
    r: int
    s: int

    def __post_init__(self) -> None:
        if self.v not in (27, 28):
            raise SignatureError(f"v must be 27 or 28, got {self.v}")
        if not 0 < self.r < N:
            raise SignatureError("r out of range")
        if not 0 < self.s < N:
            raise SignatureError("s out of range")

    @property
    def recovery_id(self) -> int:
        """The raw recovery id (0 or 1)."""
        return self.v - 27

    @property
    def is_low_s(self) -> bool:
        """True when ``s`` is EIP-2 canonical (``s <= N/2``).

        ``__post_init__`` deliberately accepts the high-s twin so this
        type can model what mainnet's ``ecrecover`` precompile
        tolerates; admission layers that require canonical signatures
        (transaction senders, signed-copy wire decoding) must check
        this flag and reject the malleated form.
        """
        return self.s <= HALF_N

    def to_bytes(self) -> bytes:
        """Serialise as the 65-byte r ‖ s ‖ v layout used by Ethereum."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big") + bytes([self.v])

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        """Parse the 65-byte r ‖ s ‖ v layout."""
        if len(data) != 65:
            raise SignatureError(f"expected 65 bytes, got {len(data)}")
        return cls(
            v=data[64],
            r=int.from_bytes(data[:32], "big"),
            s=int.from_bytes(data[32:64], "big"),
        )

    def to_vrs(self) -> tuple[int, int, int]:
        """Return the ``(v, r, s)`` tuple (the paper's Algorithm 4 output)."""
        return (self.v, self.r, self.s)


def _rfc6979_nonce(message_hash: bytes, private_key: int) -> int:
    """Derive the deterministic ECDSA nonce per RFC 6979 (HMAC-SHA256)."""
    key_bytes = private_key.to_bytes(32, "big")
    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac.new(k, v + b"\x00" + key_bytes + message_hash, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + key_bytes + message_hash, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def sign(message_hash: bytes, private_key: int) -> Signature:
    """Sign a 32-byte hash, returning an Ethereum ``(v, r, s)`` signature.

    This mirrors ``ethereumjs-util.ecsign`` from the paper's Algorithm 4.
    """
    if len(message_hash) != 32:
        raise SignatureError("message hash must be exactly 32 bytes")
    if not 0 < private_key < N:
        raise SignatureError("private key out of range")

    z = int.from_bytes(message_hash, "big")
    attempt_hash = message_hash
    while True:
        k = _rfc6979_nonce(attempt_hash, private_key)
        point = secp256k1.scalar_mult(k, G)
        assert point is not None
        x, y = point
        r = x % N
        if r == 0:
            attempt_hash = hashlib.sha256(attempt_hash).digest()
            continue
        k_inv = pow(k, -1, N)
        s = k_inv * (z + r * private_key) % N
        if s == 0:
            attempt_hash = hashlib.sha256(attempt_hash).digest()
            continue
        recovery_id = (y & 1) ^ (1 if x >= N else 0)
        # Enforce low-s (EIP-2); flipping s flips the parity of the
        # recovered point, hence the recovery id.
        if s > _HALF_N:
            s = N - s
            recovery_id ^= 1
        if x >= N:
            # Astronomically unlikely; keep the encoding unambiguous.
            attempt_hash = hashlib.sha256(attempt_hash).digest()
            continue
        return Signature(v=recovery_id + 27, r=r, s=s)


def verify(message_hash: bytes, signature: Signature, public_key) -> bool:
    """Verify ``signature`` over ``message_hash`` against an affine pubkey."""
    if len(message_hash) != 32:
        raise SignatureError("message hash must be exactly 32 bytes")
    if public_key is None or not secp256k1.is_on_curve(public_key):
        return False
    z = int.from_bytes(message_hash, "big")
    w = pow(signature.s, -1, N)
    u1 = z * w % N
    u2 = signature.r * w % N
    point = secp256k1.double_scalar_mult_base(u1, u2, public_key)
    if point is None:
        return False
    return point[0] % N == signature.r


def recover_public_key(message_hash: bytes, signature: Signature):
    """Recover the affine public key that produced ``signature``.

    Raises SignatureError when no point can be recovered — the same
    situation in which the EVM ``ecrecover`` precompile returns zero.
    """
    if len(message_hash) != 32:
        raise SignatureError("message hash must be exactly 32 bytes")
    r, s = signature.r, signature.s
    recovery_id = signature.recovery_id

    # With low-s signatures r + N >= P always, so x == r.
    x = r
    if x >= P:
        raise SignatureError("signature r does not correspond to a curve point")
    point_r = secp256k1.lift_x(x, recovery_id)
    if point_r is None:
        raise SignatureError("signature r does not correspond to a curve point")

    z = int.from_bytes(message_hash, "big")
    r_inv = pow(r, -1, N)
    # Q = r^-1 (s*R - z*G) = (-z * r^-1)*G + (s * r^-1)*R, which is the
    # u1*G + u2*Q shape Straus/Shamir combination handles in one pass.
    u1 = (-z * r_inv) % N
    u2 = s * r_inv % N
    candidate = secp256k1.double_scalar_mult_base(u1, u2, point_r)
    if candidate is None:
        raise SignatureError("recovered the point at infinity")
    return candidate


def recover_batch(items):
    """Recover public keys for many ``(message_hash, signature)`` pairs.

    Semantically identical to calling :func:`recover_public_key` per
    item, but amortised: the ``r``-scalar inversions mod N are shared
    through one Montgomery batch-inversion pass, and every recovered
    point stays in Jacobian form until a single shared field inversion
    normalises the whole batch to affine.  Items whose signature cannot
    be recovered yield ``None`` in their slot instead of raising (the
    batch must keep positional alignment for the admission layer).
    """
    count = len(items)
    results = [None] * count
    # (index, z, s, point_r) for items that survive the cheap checks.
    live = []
    for index, (message_hash, signature) in enumerate(items):
        if len(message_hash) != 32:
            continue
        r = signature.r
        if r >= P:
            continue
        point_r = secp256k1.lift_x(r, signature.recovery_id)
        if point_r is None:
            continue
        live.append((index, int.from_bytes(message_hash, "big"),
                     signature.s, r, point_r))
    if not live:
        return results

    r_inverses = secp256k1.batch_inverse([entry[3] for entry in live], N)
    jacobians = []
    for (index, z, s, __, point_r), r_inv in zip(live, r_inverses):
        u1 = (-z * r_inv) % N
        u2 = s * r_inv % N
        jacobians.append(secp256k1.double_scalar_mult_base_j(u1, u2, point_r))
    normalized = secp256k1.batch_normalize(jacobians)
    for (index, *__), candidate in zip(live, normalized):
        results[index] = candidate  # None slot == point at infinity
    return results
