"""Pure-Python Keccak-256 as used by Ethereum.

Ethereum uses the *original* Keccak submission padding (a single ``0x01``
domain byte) rather than the NIST SHA-3 padding (``0x06``), so
``hashlib.sha3_256`` cannot be used.  This module implements the full
Keccak-f[1600] permutation and the sponge construction from scratch.

Two permutations coexist (the same pattern the EVM keeps its
interpreter next to the JIT):

* :func:`_keccak_f1600_reference` — the original loop-based
  θ/ρ/π/χ/ι rounds, retained verbatim as the differential-test oracle;
* the production permutation — a **generated** function (built as
  Python source and ``exec``-compiled once at import, exactly like the
  EVM bytecode JIT builds block closures) with all 24 rounds unrolled,
  every lane a local variable, rotation offsets and round constants
  inlined as literals, and χ's complement folded into a mask XOR.
  No per-round list allocation, no inner loops, no function calls.

The sponge absorbs full-rate blocks through ``struct.unpack`` (17
lanes at a time) instead of per-lane ``int.from_bytes``.

The implementation is verified against the canonical Ethereum test
vectors, e.g.::

    >>> keccak256(b"").hex()
    'c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470'
"""

from __future__ import annotations

import struct
from functools import lru_cache

_RATE_BYTES = 136  # 1088-bit rate for Keccak-256
_RATE_LANES = _RATE_BYTES // 8
_MEMO_MAX_LEN = 128  # memoise digests of inputs up to this many bytes
_LANES = 25
_MASK64 = (1 << 64) - 1

# Round constants for Keccak-f[1600] (24 rounds).
_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets, indexed by lane position x + 5*y.
_ROTATIONS = (
    0, 1, 62, 28, 27,
    36, 44, 6, 55, 20,
    3, 10, 43, 25, 39,
    41, 45, 15, 21, 8,
    18, 2, 61, 56, 14,
)


def _rotl64(value: int, shift: int) -> int:
    """Rotate a 64-bit integer left by ``shift`` bits."""
    if shift == 0:
        return value
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def _keccak_f1600_reference(state: list[int]) -> None:
    """Apply the 24-round Keccak-f[1600] permutation in place.

    The loop-based reference implementation, kept as the oracle the
    property tests (and ``bench_hotpath``'s speedup gate) compare the
    generated permutation against.
    """
    for round_constant in _ROUND_CONSTANTS:
        # theta
        c = [
            state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20]
            for x in range(5)
        ]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(0, 25, 5):
                state[x + y] ^= d[x]

        # rho and pi
        b = [0] * 25
        for x in range(5):
            for y in range(5):
                # Lane (x, y) moves to (y, 2x + 3y), rotated.
                b[y + 5 * ((2 * x + 3 * y) % 5)] = _rotl64(
                    state[x + 5 * y], _ROTATIONS[x + 5 * y]
                )

        # chi
        for y in range(0, 25, 5):
            row = b[y:y + 5]
            for x in range(5):
                state[x + y] = row[x] ^ ((~row[(x + 1) % 5]) & row[(x + 2) % 5])

        # iota
        state[0] ^= round_constant


# Backwards-compatible alias: external callers and old tests referred
# to the permutation by this name before the generated fast path.
_keccak_f1600 = _keccak_f1600_reference


# ---------------------------------------------------------------------------
# Generated permutation (exec-compiled, fully unrolled)
# ---------------------------------------------------------------------------

def _rot_expr(value: str, shift: int) -> str:
    """Source for ``rotl64(value, shift)`` with the shift inlined."""
    if shift == 0:
        return value
    return (f"(({value} << {shift}) & 0x{_MASK64:X}"
            f" | {value} >> {64 - shift})")


def _generate_permutation_source(name: str, absorb: bool) -> str:
    """Build the unrolled 24-round permutation as Python source.

    One function, 25 lane parameters ``a0..a24``, all rounds unrolled:
    θ's column parities become five locals, ρ/π lane moves and χ's
    non-linear mix are emitted as straight-line assignments with the
    rotation offsets baked in, and ι XORs the literal round constant.
    ``~b & c`` is emitted as ``(b ^ MASK) & c`` so every intermediate
    stays an unsigned 64-bit int (no Python negative-int detour).

    With ``absorb=True`` the function takes 17 extra rate-lane
    parameters ``l0..l16`` and XORs them into the state up front — the
    sponge's absorb step fused into the permutation call, so absorbing
    a block costs zero Python-level loop iterations.
    """
    params = [f"a{i}" for i in range(25)]
    if absorb:
        params += [f"l{i}" for i in range(_RATE_LANES)]
    lines = [f"def {name}(" + ", ".join(params) + "):"]
    emit = lines.append
    if absorb:
        for i in range(_RATE_LANES):
            emit(f"    a{i} ^= l{i}")
    for round_constant in _ROUND_CONSTANTS:
        # theta: column parities and the d-mask per column.
        for x in range(5):
            emit(f"    c{x} = a{x} ^ a{x + 5} ^ a{x + 10}"
                 f" ^ a{x + 15} ^ a{x + 20}")
        for x in range(5):
            rot = _rot_expr(f"c{(x + 1) % 5}", 1)
            emit(f"    d{x} = c{(x - 1) % 5} ^ {rot}")
        # rho + pi fused with the theta column xor: lane (x, y) lands
        # at (y, 2x + 3y), rotated by its offset.
        for x in range(5):
            for y in range(5):
                source = x + 5 * y
                target = y + 5 * ((2 * x + 3 * y) % 5)
                rot = _rot_expr(f"(a{source} ^ d{x})", _ROTATIONS[source])
                emit(f"    b{target} = {rot}")
        # chi: a[x] = b[x] ^ (~b[x+1] & b[x+2]) per row; iota folds the
        # round constant into lane 0 in the same assignment.
        for y in range(0, 25, 5):
            for x in range(5):
                b0 = f"b{y + x}"
                b1 = f"b{y + (x + 1) % 5}"
                b2 = f"b{y + (x + 2) % 5}"
                expr = f"{b0} ^ (({b1} ^ 0x{_MASK64:X}) & {b2})"
                if y == 0 and x == 0:
                    expr = f"({expr}) ^ 0x{round_constant:X}"
                emit(f"    a{y + x} = {expr}")
    emit("    return (" + ", ".join(f"a{i}" for i in range(25)) + ")")
    return "\n".join(lines)


def _compile_permutation(name: str, absorb: bool):
    namespace: dict = {}
    exec(compile(_generate_permutation_source(name, absorb),  # noqa: S102
                 f"<keccak-f1600:{name}>", "exec"), namespace)
    return namespace[name]


_permute = _compile_permutation("_permute", absorb=False)
_permute_absorb = _compile_permutation("_permute_absorb", absorb=True)

_UNPACK_RATE = struct.Struct(f"<{_RATE_LANES}Q").unpack_from
_PACK_DIGEST = struct.Struct("<4Q").pack


def keccak256(data: bytes) -> bytes:
    """Return the 32-byte Keccak-256 digest of ``data``.

    This is the hash function Ethereum calls ``keccak256`` in Solidity
    and ``SHA3`` at the EVM opcode level.  Small inputs (ABI selectors,
    public keys for address derivation, storage slots) recur constantly,
    so digests of inputs up to 128 bytes are served from a bounded memo.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"keccak256 expects bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) <= _MEMO_MAX_LEN:
        return _keccak256_small(data)
    return _keccak256_raw(data)


@lru_cache(maxsize=8192)
def _keccak256_small(data: bytes) -> bytes:
    """Memoised digest path for small, frequently repeated inputs."""
    return _keccak256_raw(data)


def keccak_cache_info():
    """LRU statistics of the small-input memo (``evm.cache.*``)."""
    return _keccak256_small.cache_info()


def _keccak256_raw(data: bytes) -> bytes:
    """The actual sponge computation, uncached (generated permutation)."""
    state = (0,) * _LANES
    permute_absorb = _permute_absorb
    unpack_rate = _UNPACK_RATE

    # Absorb full rate-sized blocks: 17 lanes per unpack, one
    # fully-unrolled permutation call per block with the rate-lane XOR
    # fused in (no Python-level per-lane loop).
    offset = 0
    length = len(data)
    while length - offset >= _RATE_BYTES:
        state = permute_absorb(*state, *unpack_rate(data, offset))
        offset += _RATE_BYTES

    # Pad the final block: Keccak pad10*1 with the 0x01 domain byte.
    final = bytearray(data[offset:])
    final.append(0x01)
    final.extend(b"\x00" * (_RATE_BYTES - len(final)))
    final[-1] |= 0x80
    state = permute_absorb(*state, *unpack_rate(final, 0))

    # Squeeze: 32 bytes fit in the first four lanes.
    return _PACK_DIGEST(state[0], state[1], state[2], state[3])


def _keccak256_reference(data: bytes) -> bytes:
    """Reference sponge over the loop-based permutation (oracle only).

    Byte-identical to :func:`keccak256` on every input by construction;
    the property tests and the ``bench_hotpath`` keccak speedup gate
    hold the production path to that.
    """
    state = [0] * _LANES
    offset = 0
    length = len(data)
    data = bytes(data)
    while length - offset >= _RATE_BYTES:
        block = data[offset:offset + _RATE_BYTES]
        for lane in range(_RATE_LANES):
            state[lane] ^= int.from_bytes(block[lane * 8:lane * 8 + 8], "little")
        _keccak_f1600_reference(state)
        offset += _RATE_BYTES
    final = bytearray(data[offset:])
    final.append(0x01)
    final.extend(b"\x00" * (_RATE_BYTES - len(final)))
    final[-1] |= 0x80
    for lane in range(_RATE_LANES):
        state[lane] ^= int.from_bytes(final[lane * 8:lane * 8 + 8], "little")
    _keccak_f1600_reference(state)
    return b"".join(state[lane].to_bytes(8, "little") for lane in range(4))


def keccak256_hex(data: bytes) -> str:
    """Return the Keccak-256 digest of ``data`` as a ``0x``-prefixed string."""
    return "0x" + keccak256(data).hex()
