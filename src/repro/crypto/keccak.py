"""Pure-Python Keccak-256 as used by Ethereum.

Ethereum uses the *original* Keccak submission padding (a single ``0x01``
domain byte) rather than the NIST SHA-3 padding (``0x06``), so
``hashlib.sha3_256`` cannot be used.  This module implements the full
Keccak-f[1600] permutation and the sponge construction from scratch.

The implementation is verified against the canonical Ethereum test
vectors, e.g.::

    >>> keccak256(b"").hex()
    'c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470'
"""

from __future__ import annotations

from functools import lru_cache

_RATE_BYTES = 136  # 1088-bit rate for Keccak-256
_MEMO_MAX_LEN = 128  # memoise digests of inputs up to this many bytes
_LANES = 25
_MASK64 = (1 << 64) - 1

# Round constants for Keccak-f[1600] (24 rounds).
_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets, indexed by lane position x + 5*y.
_ROTATIONS = (
    0, 1, 62, 28, 27,
    36, 44, 6, 55, 20,
    3, 10, 43, 25, 39,
    41, 45, 15, 21, 8,
    18, 2, 61, 56, 14,
)


def _rotl64(value: int, shift: int) -> int:
    """Rotate a 64-bit integer left by ``shift`` bits."""
    if shift == 0:
        return value
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def _keccak_f1600(state: list[int]) -> None:
    """Apply the 24-round Keccak-f[1600] permutation in place."""
    for round_constant in _ROUND_CONSTANTS:
        # theta
        c = [
            state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20]
            for x in range(5)
        ]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(0, 25, 5):
                state[x + y] ^= d[x]

        # rho and pi
        b = [0] * 25
        for x in range(5):
            for y in range(5):
                # Lane (x, y) moves to (y, 2x + 3y), rotated.
                b[y + 5 * ((2 * x + 3 * y) % 5)] = _rotl64(
                    state[x + 5 * y], _ROTATIONS[x + 5 * y]
                )

        # chi
        for y in range(0, 25, 5):
            row = b[y:y + 5]
            for x in range(5):
                state[x + y] = row[x] ^ ((~row[(x + 1) % 5]) & row[(x + 2) % 5])

        # iota
        state[0] ^= round_constant


def keccak256(data: bytes) -> bytes:
    """Return the 32-byte Keccak-256 digest of ``data``.

    This is the hash function Ethereum calls ``keccak256`` in Solidity
    and ``SHA3`` at the EVM opcode level.  Small inputs (ABI selectors,
    public keys for address derivation, storage slots) recur constantly,
    so digests of inputs up to 128 bytes are served from a bounded memo.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"keccak256 expects bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) <= _MEMO_MAX_LEN:
        return _keccak256_small(data)
    return _keccak256_raw(data)


@lru_cache(maxsize=8192)
def _keccak256_small(data: bytes) -> bytes:
    """Memoised digest path for small, frequently repeated inputs."""
    return _keccak256_raw(data)


def keccak_cache_info():
    """LRU statistics of the small-input memo (``evm.cache.*``)."""
    return _keccak256_small.cache_info()


def _keccak256_raw(data: bytes) -> bytes:
    """The actual sponge computation, uncached."""
    state = [0] * _LANES

    # Absorb full rate-sized blocks.
    offset = 0
    length = len(data)
    while length - offset >= _RATE_BYTES:
        block = data[offset:offset + _RATE_BYTES]
        for lane in range(_RATE_BYTES // 8):
            state[lane] ^= int.from_bytes(block[lane * 8:lane * 8 + 8], "little")
        _keccak_f1600(state)
        offset += _RATE_BYTES

    # Pad the final block: Keccak pad10*1 with the 0x01 domain byte.
    final = bytearray(data[offset:])
    final.append(0x01)
    final.extend(b"\x00" * (_RATE_BYTES - len(final)))
    final[-1] |= 0x80
    for lane in range(_RATE_BYTES // 8):
        state[lane] ^= int.from_bytes(final[lane * 8:lane * 8 + 8], "little")
    _keccak_f1600(state)

    # Squeeze: 32 bytes fit in the first four lanes.
    return b"".join(state[lane].to_bytes(8, "little") for lane in range(4))


def keccak256_hex(data: bytes) -> str:
    """Return the Keccak-256 digest of ``data`` as a ``0x``-prefixed string."""
    return "0x" + keccak256(data).hex()
