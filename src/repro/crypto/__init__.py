"""Cryptographic substrate: Keccak-256, secp256k1 ECDSA, RLP, ABI.

Everything Ethereum-compatible and implemented from scratch — the paper
relies on ``keccak256``/``ecrecover`` agreeing between the off-chain
signing step (Algorithm 4) and the on-chain verification step
(Algorithm 5), which these modules guarantee byte-for-byte.
"""

from repro.crypto.keccak import keccak256, keccak256_hex
from repro.crypto.ecdsa import Signature, SignatureError, sign, verify
from repro.crypto.keys import Address, PrivateKey, PublicKey, recover_address

__all__ = [
    "keccak256",
    "keccak256_hex",
    "Signature",
    "SignatureError",
    "sign",
    "verify",
    "Address",
    "PrivateKey",
    "PublicKey",
    "recover_address",
]
